//! Vendored, registry-free stand-in for the `rand` crate (0.8 API subset).
//!
//! The workspace only needs seeded, deterministic generation —
//! `StdRng::seed_from_u64`, `gen_range` over ranges, and `gen_bool` — so
//! this shim implements exactly that on top of SplitMix64. Determinism
//! per seed is the only distribution guarantee the corpus generator
//! relies on.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample. `p` must be in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds (only the `seed_from_u64` entry point).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// `u64` → uniform `f64` in `[0, 1)` using the top 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    /// Same generator under the `SmallRng` name.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100).filter(|_| a.gen_range(0..1000usize) == c.gen_range(0..1000usize));
        assert!(same.count() < 50, "different seeds should diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(2..=4usize);
            assert!((2..=4).contains(&x));
            let y = rng.gen_range(0..30usize);
            assert!(y < 30);
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let n = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
