//! Vendored, registry-free stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships a minimal serde data model (see `vendor/serde`) and this crate
//! provides the matching `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! implementations plus the `json!` constructor re-exported by
//! `vendor/serde_json`. Only the shapes the workspace actually uses are
//! supported: non-generic structs (named, tuple, unit) and enums with
//! unit, tuple, and struct variants, externally tagged exactly like real
//! serde's default representation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

fn is_punct(tt: &TokenTree, ch: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == ch)
}

fn is_ident(tt: &TokenTree, s: &str) -> bool {
    matches!(tt, TokenTree::Ident(i) if i.to_string() == s)
}

/// Skip `#[...]` attributes (including doc comments) starting at `i`.
fn skip_attrs(tts: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tts.len()
        && is_punct(&tts[i], '#')
        && matches!(&tts[i + 1], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
    {
        i += 2;
    }
    i
}

/// Skip `pub` / `pub(crate)` style visibility starting at `i`.
fn skip_vis(tts: &[TokenTree], mut i: usize) -> usize {
    if i < tts.len() && is_ident(&tts[i], "pub") {
        i += 1;
        if i < tts.len()
            && matches!(&tts[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Split a token slice on top-level commas. Groups are atomic tokens, so
/// `{}`/`()`/`[]` nesting takes care of itself, but generic arguments
/// (`BTreeMap<K, V>`) need explicit angle-bracket depth tracking; `->`
/// never appears at angle depth 0 in a position that matters because the
/// `-` does not increment the depth.
fn split_commas(tts: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth: usize = 0;
    for tt in tts {
        if is_punct(tt, '<') {
            angle_depth += 1;
        } else if is_punct(tt, '>') {
            angle_depth = angle_depth.saturating_sub(1);
        }
        if angle_depth == 0 && is_punct(tt, ',') {
            out.push(std::mem::take(&mut cur));
        } else {
            cur.push(tt.clone());
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out.retain(|seg| !seg.is_empty());
    out
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tts: Vec<TokenTree> = stream.into_iter().collect();
    split_commas(&tts)
        .into_iter()
        .map(|seg| {
            let i = skip_vis(&seg, skip_attrs(&seg, 0));
            match &seg[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde shim derive: expected field name, found {other}"),
            }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let tts: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tts, skip_attrs(&tts, 0));
    let is_enum = if is_ident(&tts[i], "struct") {
        false
    } else if is_ident(&tts[i], "enum") {
        true
    } else {
        panic!(
            "serde shim derive: expected struct or enum, found {}",
            tts[i]
        );
    };
    i += 1;
    let name = match &tts[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected type name, found {other}"),
    };
    i += 1;
    if i < tts.len() && is_punct(&tts[i], '<') {
        panic!("serde shim derive: generic types are not supported (type {name})");
    }
    if is_enum {
        let body = match &tts[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!("serde shim derive: expected enum body, found {other}"),
        };
        let body_tts: Vec<TokenTree> = body.into_iter().collect();
        let variants = split_commas(&body_tts)
            .into_iter()
            .map(|seg| {
                let j = skip_attrs(&seg, 0);
                let vname = match &seg[j] {
                    TokenTree::Ident(id) => id.to_string(),
                    other => panic!("serde shim derive: expected variant name, found {other}"),
                };
                let fields = match seg.get(j + 1) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        Fields::Tuple(split_commas(&inner).len())
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Fields::Named(parse_named_fields(g.stream()))
                    }
                    _ => Fields::Unit,
                };
                (vname, fields)
            })
            .collect();
        Item::Enum { name, variants }
    } else {
        let fields = match tts.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Fields::Tuple(split_commas(&inner).len())
            }
            _ => Fields::Unit,
        };
        Item::Struct { name, fields }
    }
}

fn named_to_object(fields: &[String], access: &str) -> String {
    let mut s = String::from("{ let mut __m = ::serde::Map::new();\n");
    for f in fields {
        s.push_str(&format!(
            "__m.insert(\"{f}\".to_string(), ::serde::Serialize::to_value({access}{f}));\n"
        ));
    }
    s.push_str("::serde::Value::Object(__m) }");
    s
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let (name, body) = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => named_to_object(fs, "&self."),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            (name.clone(), body)
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::String(\"{vname}\".to_string()),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => ::serde::variant_value(\"{vname}\", \
                         ::serde::Serialize::to_value(__f0)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let pats: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let elems: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Serialize::to_value(__f{k})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::variant_value(\"{vname}\", \
                             ::serde::Value::Array(vec![{}])),\n",
                            pats.join(", "),
                            elems.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let pats = fs.join(", ");
                        let obj = named_to_object(fs, "");
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {pats} }} => ::serde::variant_value(\"{vname}\", {obj}),\n"
                        ));
                    }
                }
            }
            (name.clone(), format!("match self {{\n{arms}}}"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n}}"
    )
    .parse()
    .expect("serde shim derive: generated Serialize impl parses")
}

fn named_from_object(ctor: &str, fields: &[String], map: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::de_field({map}.get(\"{f}\"), \"{f}\")?"))
        .collect();
    format!("{ctor} {{ {} }}", inits.join(", "))
}

fn tuple_from_array(ctor: &str, n: usize, payload: &str, what: &str) -> String {
    let elems: Vec<String> = (0..n)
        .map(|k| format!("::serde::Deserialize::from_value(&__a[{k}])?"))
        .collect();
    format!(
        "{{ let __a = {payload}.as_array().ok_or_else(|| ::serde::Error::new(\
         \"{what}: expected array\"))?;\n\
         if __a.len() != {n} {{ return Err(::serde::Error::new(\"{what}: expected {n} elements\")); }}\n\
         {ctor}({}) }}",
        elems.join(", ")
    )
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let (name, body) = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => format!(
                    "let __m = __v.as_object().ok_or_else(|| ::serde::Error::new(\
                     \"{name}: expected object\"))?;\nOk({})",
                    named_from_object(name, fs, "__m")
                ),
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
                }
                Fields::Tuple(n) => {
                    format!("Ok({})", tuple_from_array(name, *n, "__v", name))
                }
                Fields::Unit => format!("Ok({name})"),
            };
            (name.clone(), body)
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"))
                    }
                    Fields::Tuple(1) => payload_arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(__p)?)),\n"
                    )),
                    Fields::Tuple(n) => payload_arms.push_str(&format!(
                        "\"{vname}\" => Ok({}),\n",
                        tuple_from_array(&format!("{name}::{vname}"), *n, "__p", vname)
                    )),
                    Fields::Named(fs) => payload_arms.push_str(&format!(
                        "\"{vname}\" => {{ let __m2 = __p.as_object().ok_or_else(|| \
                         ::serde::Error::new(\"{name}::{vname}: expected object\"))?;\n\
                         Ok({}) }}\n",
                        named_from_object(&format!("{name}::{vname}"), fs, "__m2")
                    )),
                }
            }
            let body = format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => Err(::serde::Error::new(format!(\"{name}: unknown variant {{__other}}\"))),\n}},\n\
                 ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__k, __p) = __m.iter().next().expect(\"len checked\");\n\
                 match __k.as_str() {{\n{payload_arms}\
                 __other => Err(::serde::Error::new(format!(\"{name}: unknown variant {{__other}}\"))),\n}}\n}},\n\
                 _ => Err(::serde::Error::new(\"{name}: expected string or single-key object\")),\n}}"
            );
            (name.clone(), body)
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}"
    )
    .parse()
    .expect("serde shim derive: generated Deserialize impl parses")
}

/// `json!` value constructor, re-exported by the `serde_json` shim.
///
/// Objects and arrays written literally become `Value` constructors;
/// anything else is treated as a Rust expression serialized through
/// `::serde_json::to_value`.
#[proc_macro]
pub fn json(input: TokenStream) -> TokenStream {
    let tts: Vec<TokenTree> = input.into_iter().collect();
    json_value_expr(&tts)
        .parse()
        .expect("json! shim: generated expression parses")
}

fn json_value_expr(tts: &[TokenTree]) -> String {
    if tts.len() == 1 {
        match &tts[0] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                return json_object_expr(&inner);
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let elems: Vec<String> = split_commas(&inner)
                    .iter()
                    .map(|seg| json_value_expr(seg))
                    .collect();
                return format!("::serde_json::Value::Array(vec![{}])", elems.join(", "));
            }
            TokenTree::Ident(id) if id.to_string() == "null" => {
                return "::serde_json::Value::Null".to_string();
            }
            TokenTree::Ident(id) if id.to_string() == "true" => {
                return "::serde_json::Value::Bool(true)".to_string();
            }
            TokenTree::Ident(id) if id.to_string() == "false" => {
                return "::serde_json::Value::Bool(false)".to_string();
            }
            _ => {}
        }
    }
    let expr: TokenStream = tts.iter().cloned().collect();
    format!("::serde_json::to_value(&({expr}))")
}

fn json_object_expr(tts: &[TokenTree]) -> String {
    let mut s = String::from("{ let mut __m = ::serde_json::Map::new();\n");
    for entry in split_commas(tts) {
        // Each entry is `"key" : value-tokens...`.
        let key = match &entry[0] {
            TokenTree::Literal(l) => l.to_string(),
            other => panic!("json! shim: object keys must be string literals, found {other}"),
        };
        if entry.len() < 3 || !is_punct(&entry[1], ':') {
            panic!("json! shim: expected `\"key\": value`");
        }
        let value = json_value_expr(&entry[2..]);
        s.push_str(&format!("__m.insert({key}.to_string(), {value});\n"));
    }
    s.push_str("::serde_json::Value::Object(__m) }");
    s
}
