//! Vendored, registry-free stand-in for `proptest`.
//!
//! Implements the API subset this workspace's property tests use:
//! `proptest!`, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`,
//! `prop_oneof!`, `Just`, `any::<T>()`, numeric range strategies, tuple
//! strategies, `.prop_map`, `proptest::collection::vec`, and `&str`
//! regex-like string strategies (character classes with `{m,n}`
//! repetition only). Cases are generated deterministically from the test
//! name, so failures reproduce; there is no shrinking.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Failure raised by `prop_assert!`-family macros.
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }

    /// Compatibility alias: explicit rejection reads like a failure here.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TestCaseError({:?})", self.0)
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn seed_from_u64(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Seed derived from the test name (FNV-1a), so each test gets a
    /// stable, distinct stream.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::seed_from_u64(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values. Unlike real proptest there is no shrinking:
/// `generate` produces one value per case.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        MapStrategy { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed alternative strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.arms.len());
        self.arms[k].generate(rng)
    }
}

/// Full-domain values for `any::<T>()`.
pub trait ArbitraryValue {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

pub struct Any<T>(PhantomData<T>);

pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J, 10 K)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J, 10 K, 11 L)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(strategy, len_range)`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end.saturating_sub(self.len.start).max(1);
            let n = self.len.start + rng.below(span);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

// --- regex-like string strategies -----------------------------------------

/// One atom of the pattern subset: a set of candidate chars plus a
/// repetition count range.
struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Parse the tiny regex subset the workspace uses: literal characters,
/// `\n`/`\t`/`\\` escapes, `[...]` classes with ranges, and `{m}` /
/// `{m,n}` repetition.
fn parse_pattern(pat: &str) -> Vec<Atom> {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        unescape(chars[i])
                    } else {
                        chars[i]
                    };
                    // Range `a-z` (a `-` at the class edge is literal).
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let hi = if chars[i + 2] == '\\' {
                            i += 1;
                            unescape(chars[i + 2])
                        } else {
                            chars[i + 2]
                        };
                        for x in c as u32..=hi as u32 {
                            if let Some(ch) = char::from_u32(x) {
                                set.push(ch);
                            }
                        }
                        i += 3;
                    } else {
                        set.push(c);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "pattern shim: unterminated class in {pat}");
                i += 1; // consume ']'
                set
            }
            '\\' => {
                i += 1;
                let c = unescape(chars[i]);
                i += 1;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional repetition.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("pattern shim: unterminated repetition")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("pattern shim: bad repetition"),
                    hi.trim().parse().expect("pattern shim: bad repetition"),
                ),
                None => {
                    let n = body.trim().parse().expect("pattern shim: bad repetition");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!set.is_empty(), "pattern shim: empty class in {pat}");
        atoms.push(Atom {
            chars: set,
            min,
            max,
        });
    }
    atoms
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min + rng.below(atom.max - atom.min + 1);
            for _ in 0..n {
                out.push(atom.chars[rng.below(atom.chars.len())]);
            }
        }
        out
    }
}

// --- macros ----------------------------------------------------------------

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            // No rejection bookkeeping: an assumed-away case just passes.
            return ::std::result::Result::Ok(());
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!("proptest {} failed at case {}: {}", stringify!($name), __case, e);
                }
            }
        }
        $crate::__proptest_tests! { @cfg ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_strategies_match_their_own_shape() {
        let mut rng = TestRng::from_name("pattern");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let t = Strategy::generate(&"[ -~\n\t]{0,20}", &mut rng);
            assert!(t.chars().count() <= 20);
            assert!(t
                .chars()
                .all(|c| (' '..='~').contains(&c) || c == '\n' || c == '\t'));
        }
    }

    #[test]
    fn union_and_map_compose() {
        let strat = prop_oneof![Just("a".to_string()), "[0-9]{1,2}"].prop_map(|s| format!("<{s}>"));
        let mut rng = TestRng::from_name("compose");
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(v.starts_with('<') && v.ends_with('>'));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let strat = crate::collection::vec(0usize..5, 2..7);
        let mut rng = TestRng::from_name("vec");
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_asserts(x in 0usize..10, y in any::<u64>()) {
            prop_assert!(x < 10, "x={x}");
            prop_assume!(y != 0);
            prop_assert_eq!(x + 1, 1 + x);
        }
    }
}
