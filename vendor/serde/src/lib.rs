//! Vendored, registry-free stand-in for the `serde` crate.
//!
//! The build environment has no network access and no crates.io mirror,
//! so the workspace ships this minimal replacement. Instead of real
//! serde's visitor-based architecture, everything funnels through a JSON
//! [`Value`] tree: `Serialize` renders a value, `Deserialize` rebuilds a
//! type from one. The companion `serde_json` shim adds text parsing and
//! printing on top, and `serde_derive` generates impls for plain structs
//! and externally tagged enums — exactly the data-model subset this
//! workspace uses.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Deserialization error (also used by the `serde_json` parser).
pub struct Error(String);

impl Error {
    pub fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({:?})", self.0)
    }
}

impl std::error::Error for Error {}

/// JSON number: unsigned, signed, or floating point.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(n) => u64::try_from(n).ok(),
            Number::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::Float(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(f)
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 =>
            {
                Some(f as i64)
            }
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => match (self.as_u64(), other.as_u64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_f64() == other.as_f64(),
            },
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            Number::Float(x) if x.is_finite() => write!(f, "{x}"),
            // JSON has no NaN/Infinity; mirror serde_json's `null`.
            Number::Float(_) => f.write_str("null"),
        }
    }
}

/// Insertion-ordered string-keyed map (the shape `serde_json::Map` has
/// with its default `preserve_order`-less config is close enough for the
/// workspace: we additionally keep insertion order for readable output).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl<K: PartialEq, V> Map<K, V> {
    pub fn new() -> Map<K, V> {
        Map {
            entries: Vec::new(),
        }
    }

    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> std::slice::Iter<'_, (K, V)> {
        self.entries.iter()
    }
}

impl<V> Map<String, V> {
    pub fn get(&self, key: &str) -> Option<&V> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }
}

impl<K, V> IntoIterator for Map<K, V> {
    type Item = (K, V);
    type IntoIter = std::vec::IntoIter<(K, V)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<K: PartialEq, V> FromIterator<(K, V)> for Map<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A JSON value tree — the single interchange format of this shim.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

impl Value {
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object member lookup: `Some(&value)` when `self` is an object
    /// with the key, `None` otherwise (upstream serde_json's `get`).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }
}

pub(crate) fn escape_json_str(s: &str, out: &mut String) {
    out.push('"');
    let bytes = s.as_bytes();
    let mut clean = 0; // start of the current run needing no escapes
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'"' || b == b'\\' || b < 0x20 {
            out.push_str(&s[clean..i]);
            clean = i + 1;
            match b {
                b'"' => out.push_str("\\\""),
                b'\\' => out.push_str("\\\\"),
                b'\n' => out.push_str("\\n"),
                b'\t' => out.push_str("\\t"),
                b'\r' => out.push_str("\\r"),
                _ => {
                    out.push_str("\\u");
                    for shift in [12u32, 8, 4, 0] {
                        let d = (b as u32 >> shift) & 0xf;
                        out.push(char::from_digit(d, 16).unwrap());
                    }
                }
            }
        }
    }
    out.push_str(&s[clean..]);
    out.push('"');
}

impl Value {
    /// Append this value's compact JSON text to `out`. This is the
    /// workhorse behind `Display`/`to_string`: a direct recursion into
    /// one growing buffer, with none of the `fmt::Formatter` per-node
    /// overhead (which dominates when serializing multi-megabyte
    /// documents like the on-disk analysis cache).
    pub fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => {
                use fmt::Write as _;
                write!(out, "{n}").expect("write to String");
            }
            Value::String(s) => escape_json_str(s, out),
            Value::Array(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_json(out);
                }
                out.push(']');
            }
            Value::Object(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_json_str(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    /// Compact JSON text.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut buf = String::with_capacity(128);
        self.write_json(&mut buf);
        f.write_str(&buf)
    }
}

static NULL_VALUE: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.as_object()
            .and_then(|m| m.get(key))
            .unwrap_or(&NULL_VALUE)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array()
            .and_then(|a| a.get(idx))
            .unwrap_or(&NULL_VALUE)
    }
}

// Comparisons with plain literals, as in `assert_eq!(v["pairings"], 1)`.
macro_rules! impl_value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => *n == Number::NegInt(*other as i64),
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
impl_value_eq_int!(i8, i16, i32, i64, isize);

macro_rules! impl_value_eq_uint {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => *n == Number::PosInt(*other as u64),
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
impl_value_eq_uint!(u8, u16, u32, u64, usize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

// Conversions used by hand-built JSON (`map.insert("k".into(), n.into())`).
impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Number(Number::Float(f))
    }
}
impl From<Vec<Value>> for Value {
    fn from(a: Vec<Value>) -> Value {
        Value::Array(a)
    }
}
impl From<Map<String, Value>> for Value {
    fn from(m: Map<String, Value>) -> Value {
        Value::Object(m)
    }
}
macro_rules! impl_value_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value { Value::Number(Number::PosInt(n as u64)) }
        }
    )*};
}
impl_value_from_uint!(u8, u16, u32, u64, usize);
macro_rules! impl_value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                if n >= 0 { Value::Number(Number::PosInt(n as u64)) }
                else { Value::Number(Number::NegInt(n as i64)) }
            }
        }
    )*};
}
impl_value_from_int!(i8, i16, i32, i64, isize);

/// Render `self` as a JSON [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a JSON [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Hook for absent object fields: `Option<T>` becomes `None`,
    /// everything else is an error. Used by the derive.
    fn from_missing() -> Result<Self, Error> {
        Err(Error::new("missing field"))
    }
}

/// Derive-support: deserialize an object field that may be absent.
pub fn de_field<T: Deserialize>(v: Option<&Value>, name: &str) -> Result<T, Error> {
    match v {
        Some(v) => T::from_value(v).map_err(|e| Error::new(format!("field {name}: {e}"))),
        None => T::from_missing().map_err(|_| Error::new(format!("missing field {name}"))),
    }
}

/// Derive-support: externally tagged enum payload `{ "Variant": value }`.
pub fn variant_value(name: &str, payload: Value) -> Value {
    let mut m = Map::new();
    m.insert(name.to_string(), payload);
    Value::Object(m)
}

// --- Serialize impls for std types ---

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! impl_ser_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::from(*self) }
        }
    )*};
}
impl_ser_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

/// Map keys: anything that serializes to a JSON string keeps that string;
/// other keys use their compact JSON text (mirrors serde_json's behaviour
/// closely enough for this workspace, which only uses string keys).
fn key_string<K: Serialize>(k: &K) -> String {
    match k.to_value() {
        Value::String(s) => s,
        other => other.to_string(),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(key_string(k), v.to_value());
        }
        Value::Object(m)
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(key_string(k), v.to_value());
        }
        Value::Object(m)
    }
}

impl<K: PartialEq + Serialize, V: Serialize> Serialize for Map<K, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self.iter() {
            m.insert(key_string(k), v.to_value());
        }
        Value::Object(m)
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// --- Deserialize impls for std types ---

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        v.as_bool().ok_or_else(|| Error::new("expected bool"))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::new("expected string"))
    }
}

macro_rules! impl_de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                v.as_u64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| Error::new(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
impl_de_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                v.as_i64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| Error::new(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, Error> {
        v.as_f64().ok_or_else(|| Error::new("expected number"))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::new("expected number"))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing() -> Result<Option<T>, Error> {
        Ok(None)
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<std::sync::Arc<T>, Error> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl Deserialize for std::sync::Arc<str> {
    fn from_value(v: &Value) -> Result<std::sync::Arc<str>, Error> {
        match v {
            Value::String(s) => Ok(std::sync::Arc::from(s.as_str())),
            other => Err(Error::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        v.as_array()
            .ok_or_else(|| Error::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<BTreeMap<String, V>, Error> {
        let obj = v.as_object().ok_or_else(|| Error::new("expected object"))?;
        let mut out = BTreeMap::new();
        for (k, v) in obj.iter() {
            out.insert(k.clone(), V::from_value(v)?);
        }
        Ok(out)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<HashMap<String, V>, Error> {
        let obj = v.as_object().ok_or_else(|| Error::new("expected object"))?;
        let mut out = HashMap::new();
        for (k, v) in obj.iter() {
            out.insert(k.clone(), V::from_value(v)?);
        }
        Ok(out)
    }
}

macro_rules! impl_de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<($($t,)+), Error> {
                let a = v.as_array().ok_or_else(|| Error::new("expected array"))?;
                if a.len() != $len {
                    return Err(Error::new("tuple length mismatch"));
                }
                Ok(($($t::from_value(&a[$n])?,)+))
            }
        }
    )*};
}
impl_de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
    (5; 0 A, 1 B, 2 C, 3 D, 4 E)
    (6; 0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_insert_replaces_and_preserves_order() {
        let mut m: Map<String, Value> = Map::new();
        m.insert("b".into(), Value::from(1u64));
        m.insert("a".into(), Value::from(2u64));
        assert_eq!(
            m.insert("b".into(), Value::from(3u64)),
            Some(Value::from(1u64))
        );
        let keys: Vec<&str> = m.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(m.get("b"), Some(&Value::from(3u64)));
    }

    #[test]
    fn display_is_compact_json() {
        let mut m = Map::new();
        m.insert("s".to_string(), Value::from("a\"b"));
        m.insert("n".to_string(), Value::from(-3i64));
        let v = Value::Array(vec![Value::Object(m), Value::Null, Value::Bool(true)]);
        assert_eq!(v.to_string(), r#"[{"s":"a\"b","n":-3},null,true]"#);
    }

    #[test]
    fn number_equality_crosses_representations() {
        assert_eq!(Number::PosInt(5), Number::Float(5.0));
        assert_eq!(Number::NegInt(-2), Number::Float(-2.0));
        assert_ne!(Number::PosInt(5), Number::Float(5.5));
    }

    #[test]
    fn option_handles_missing_fields() {
        assert_eq!(<Option<u32>>::from_missing().unwrap(), None);
        assert!(u32::from_missing().is_err());
    }
}
