//! Vendored, registry-free stand-in for `criterion`.
//!
//! A deliberately small harness: each benchmark runs its routine a fixed
//! handful of times and prints the best observed wall-clock time. Under
//! `cargo test` (which executes `harness = false` bench targets in test
//! mode) every routine runs exactly once, so benches double as smoke
//! tests without slowing the suite down. No statistics, plots, or
//! baseline comparisons — the workspace only needs relative numbers and
//! the assertions inside the bench bodies.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How many times to invoke each routine per measurement.
fn measurement_iters() -> u64 {
    // `cargo test` passes `--test`; plain `cargo bench` passes `--bench`.
    // Anything other than explicit bench mode gets the quick path.
    if std::env::args().any(|a| a == "--bench") {
        3
    } else {
        1
    }
}

pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            iters: measurement_iters(),
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.iters, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration count is
    /// fixed by the run mode instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, self.criterion.iters, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, self.criterion.iters, &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, iters: u64, f: &mut F) {
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed < best {
            best = b.elapsed;
        }
    }
    println!("bench {label:<48} {best:>12.2?}");
}

pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed = start.elapsed();
    }
}

#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    BytesDecimal(u64),
    Elements(u64),
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut ran = 0u32;
        let mut c = Criterion { iters: 1 };
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion { iters: 1 };
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Bytes(8));
        let data = vec![1u64, 2, 3];
        let mut sum = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(3), &data, |b, d| {
            b.iter(|| sum = d.iter().sum());
        });
        group.finish();
        assert_eq!(sum, 6);
    }
}
