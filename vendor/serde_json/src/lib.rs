//! Vendored, registry-free stand-in for `serde_json`.
//!
//! Provides the JSON text layer over the in-tree `serde` shim's [`Value`]
//! model: a recursive-descent parser, compact and pretty printers, and
//! the `json!` constructor (a proc macro re-exported from the
//! `serde_derive` shim). Covers the API surface this workspace uses:
//! `to_string`, `to_string_pretty`, `to_value`, `from_str`, `from_slice`,
//! `Value`, `Map`, and `json!`.

// Let the `json!` proc macro's `::serde_json::...` expansion resolve when
// used inside this crate (e.g. in its own tests).
extern crate self as serde_json;

pub use serde::{Error, Map, Number, Value};
pub use serde_derive::json;

use serde::{Deserialize, Serialize};

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::with_capacity(128);
    value.to_value().write_json(&mut out);
    Ok(out)
}

/// Serialize to human-readable JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

/// Parse JSON bytes (must be UTF-8) into any deserializable type.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

fn pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, item) in a.iter().enumerate() {
                out.push_str(&pad_in);
                pretty(item, indent + 1, out);
                if i + 1 < a.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in m.iter().enumerate() {
                out.push_str(&pad_in);
                out.push_str(&Value::String(k.clone()).to_string());
                out.push_str(": ");
                pretty(item, indent + 1, out);
                if i + 1 < m.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!(
                "unexpected input at offset {}",
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            m.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut a = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(a));
        }
        loop {
            a.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(a));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        // Fast path: scan ahead for the closing quote. When the string
        // has no escapes and no non-ASCII bytes (the overwhelmingly
        // common case for keys and identifiers), copy it with exactly
        // one right-sized allocation instead of growing a String
        // byte-run by byte-run — parsing multi-megabyte documents is
        // allocator-bound, and this roughly halves its allocation count.
        {
            let mut i = self.pos;
            while let Some(&b) = self.bytes.get(i) {
                if b == b'"' || b == b'\\' || b >= 0x80 {
                    break;
                }
                i += 1;
            }
            if self.bytes.get(i) == Some(&b'"') {
                let out = std::str::from_utf8(&self.bytes[self.pos..i])
                    .expect("ascii run")
                    .to_owned();
                self.pos = i + 1;
                return Ok(out);
            }
        }
        let mut out = String::new();
        loop {
            // Fast path: copy the maximal run of plain ASCII bytes in one
            // shot instead of re-validating the rest of the input per
            // character (which made parsing quadratic on large documents).
            let run = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b >= 0x80 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > run {
                out.push_str(std::str::from_utf8(&self.bytes[run..self.pos]).expect("ascii run"));
            }
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one multi-byte UTF-8 code point (at most
                    // four bytes — no need to validate the whole tail).
                    let end = self.bytes.len().min(self.pos + 4);
                    let rest = &self.bytes[self.pos..end];
                    let valid = match std::str::from_utf8(rest) {
                        Ok(s) => s,
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&rest[..e.valid_up_to()]).expect("validated")
                        }
                        Err(_) => return Err(Error::new("invalid utf-8 in string")),
                    };
                    let c = valid.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(n)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| Error::new(format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value_tree() {
        let text = r#"{"a": [1, -2, 3.5], "b": {"nested": true}, "c": null, "s": "x\n\"y\""}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"][0], 1);
        assert_eq!(v["a"][1], -2);
        assert_eq!(v["a"][2].as_f64(), Some(3.5));
        assert_eq!(v["b"]["nested"], true);
        assert_eq!(v["c"], Value::Null);
        assert_eq!(v["s"], "x\n\"y\"");
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
        let back2: Value = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }

    #[test]
    fn json_macro_builds_nested_values() {
        let n = 7u32;
        let v = json!({
            "lit": 3,
            "expr": n,
            "arr": [1, "two", null],
            "nested": { "ok": true },
            "call": (2 + 3) * 2,
        });
        assert_eq!(v["lit"], 3);
        assert_eq!(v["expr"], 7u32);
        assert_eq!(v["arr"][1], "two");
        assert_eq!(v["nested"]["ok"], true);
        assert_eq!(v["call"], 10);
    }

    #[test]
    fn large_u64_survives() {
        let big = u64::MAX;
        let text = to_string(&big).unwrap();
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, big);
    }
}
