//! Live-telemetry integration tests: the NDJSON event stream and the
//! `/metrics` + `/health` endpoint under concurrent load.
//!
//! Two invariants matter here:
//!
//! * the event stream is a totally ordered, well-formed NDJSON log —
//!   every line parses, and every `span_open` is matched by exactly one
//!   `span_close` with the same id (events are emitted under the
//!   recorder's lock, so no interleaving can break this);
//! * a scrape racing an active re-analysis never observes a torn
//!   snapshot — `/metrics` is always a complete, valid Prometheus text
//!   document, because the text is pre-rendered at publish time.

use ofence::obs::serve::serve;
use ofence::obs::{Event, Live, NdjsonSink, RingSink};
use ofence::{AnalysisConfig, Engine, SourceFile};
use ofence_corpus::{generate, CorpusSpec};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

fn corpus_sources(seed: u64, files: usize) -> Vec<SourceFile> {
    let spec = CorpusSpec {
        files,
        ..CorpusSpec::small(seed)
    };
    generate(&spec)
        .files
        .iter()
        .map(|f| SourceFile::new(f.name.clone(), f.content.clone()))
        .collect()
}

/// Shared writer that collects the NDJSON stream into a buffer the test
/// can read back after the run.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").expect("head/body split");
    (head.to_string(), body.to_string())
}

/// Check one NDJSON stream: every line parses as a flat JSON object with
/// an `ev` discriminator, and span opens/closes pair up exactly by id.
fn check_event_stream(text: &str) {
    let mut open: BTreeMap<u64, String> = BTreeMap::new();
    let mut events = 0usize;
    for line in text.lines() {
        let v: serde_json::Value =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("bad NDJSON line `{line}`: {e}"));
        assert!(v.as_object().is_some(), "not an object: {line}");
        events += 1;
        match v["ev"].as_str().expect("ev discriminator") {
            "span_open" => {
                let id = v["id"].as_u64().expect("span id");
                let name = v["name"].as_str().expect("span name").to_string();
                let prev = open.insert(id, name);
                assert!(prev.is_none(), "span id {id} opened twice");
            }
            "span_close" => {
                let id = v["id"].as_u64().expect("span id");
                let name = v["name"].as_str().expect("span name");
                let opened = open
                    .remove(&id)
                    .unwrap_or_else(|| panic!("close without open for span id {id}"));
                assert_eq!(opened, name, "span id {id} closed under a different name");
                assert!(
                    v["dur_us"].as_u64().is_some(),
                    "close missing dur_us: {line}"
                );
            }
            "counter" => {
                assert!(
                    v["delta"].as_u64().is_some(),
                    "counter missing delta: {line}"
                );
            }
            "observe" => {
                assert!(
                    v["value"].as_u64().is_some(),
                    "observe missing value: {line}"
                );
            }
            other => panic!("unknown event kind `{other}`"),
        }
    }
    assert!(events > 0, "stream is empty");
    assert!(
        open.is_empty(),
        "spans left open at end of stream: {open:?}"
    );
}

#[test]
fn ndjson_stream_is_well_formed_and_balanced() {
    let buf = SharedBuf::default();
    let engine_buf = buf.clone();
    let mut engine = Engine::new(AnalysisConfig::default());
    engine
        .recorder()
        .add_sink(Arc::new(NdjsonSink::new(engine_buf)));
    let sources = corpus_sources(7, 6);
    let result = engine.analyze(&sources);
    engine.recorder().flush_sinks();
    assert!(result.stats.files_total > 0);
    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    check_event_stream(&text);
    // The stream must cover the whole pipeline, not just the root span.
    for phase in ["analyze", "parse", "pair", "check"] {
        assert!(
            text.contains(&format!("\"name\":\"{phase}\"")),
            "no {phase} span in stream"
        );
    }
}

#[test]
fn ring_sink_sees_the_same_open_close_balance() {
    let ring = Arc::new(RingSink::new(100_000));
    let mut engine = Engine::new(AnalysisConfig::default());
    engine.recorder().add_sink(ring.clone());
    engine.analyze(&corpus_sources(11, 4));
    let mut balance = 0i64;
    let mut closes_before_opens = false;
    for ev in ring.events() {
        match ev {
            Event::SpanOpen { .. } => balance += 1,
            Event::SpanClose { .. } => {
                balance -= 1;
                if balance < 0 {
                    closes_before_opens = true;
                }
            }
            _ => {}
        }
    }
    assert_eq!(balance, 0, "unbalanced span events");
    assert!(!closes_before_opens, "a close preceded its open");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any corpus shape and seed yields a well-formed, balanced stream.
    #[test]
    fn event_stream_well_formed_for_any_corpus(seed in any::<u64>(), files in 1usize..5) {
        let buf = SharedBuf::default();
        let mut engine = Engine::new(AnalysisConfig::default());
        engine.recorder().add_sink(Arc::new(NdjsonSink::new(buf.clone())));
        engine.analyze(&corpus_sources(seed, files));
        engine.recorder().flush_sinks();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        check_event_stream(&text);
    }
}

/// Scrape `/metrics` and `/health` in a tight loop while another thread
/// republishes fresh snapshots from live re-analysis. Every response
/// must be complete and internally consistent — the pre-rendered text
/// swap means a scrape can never see half an update.
#[test]
fn concurrent_scrape_during_reanalysis_never_tears() {
    let live = Arc::new(Live::new());
    let server = serve("127.0.0.1:0", live.clone()).unwrap();
    let addr = server.addr();
    let stop = Arc::new(AtomicBool::new(false));

    let publisher = {
        let live = live.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut engine = Engine::new(AnalysisConfig::default());
            let sources = corpus_sources(23, 5);
            let mut iterations = 0u64;
            while !stop.load(Ordering::Relaxed) {
                iterations += 1;
                engine.queue_count("watch_iterations", iterations);
                let result = engine.analyze_incremental(&sources);
                live.publish(&result.obs, result.deviations.len() as u64, 1000);
            }
            iterations
        })
    };

    // Wait for the first publish, then hammer both endpoints.
    while live.runs() == 0 {
        std::thread::yield_now();
    }
    for i in 0..50 {
        let (head, body) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "scrape {i}: {head}");
        // Valid Prometheus text: every exposition line is `name value`
        // with a parseable number, and the iteration counter is present.
        assert!(
            body.contains("ofence_watch_iterations_total"),
            "scrape {i} missing counter: {body}"
        );
        for line in body
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
        {
            let (_, value) = line.rsplit_once(' ').expect("name value");
            assert!(
                value.parse::<f64>().is_ok(),
                "scrape {i}: bad line `{line}`"
            );
        }
        // A complete body ends in a newline — a torn write would not.
        assert!(body.ends_with('\n'), "scrape {i}: truncated body");

        let (head, body) = http_get(addr, "/health");
        assert!(head.starts_with("HTTP/1.1 200"), "scrape {i}: {head}");
        let v: serde_json::Value = serde_json::from_str(&body)
            .unwrap_or_else(|e| panic!("scrape {i}: /health not JSON ({e}): {body}"));
        assert_eq!(v["status"], "ok", "scrape {i}: {body}");
        assert!(v["runs"].as_u64().unwrap() >= 1, "scrape {i}: {body}");
    }

    stop.store(true, Ordering::Relaxed);
    let iterations = publisher.join().unwrap();
    assert!(iterations >= 1);
    assert_eq!(live.runs(), iterations);
    server.shutdown();
}

// ---------------------------------------------------------------------------
// PR 10 satellites: RingSink overflow accounting under concurrent load,
// and span trees of interleaved daemon requests staying balanced and
// correctly attributed.
// ---------------------------------------------------------------------------

#[test]
fn ring_sink_overflow_accounting_is_exact_under_concurrency() {
    use ofence::obs::EventSink;

    const CAPACITY: usize = 64;
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 100;
    let ring = Arc::new(RingSink::new(CAPACITY));
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let ring = ring.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    ring.emit(&Event::Counter {
                        name: format!("t{t}-{i}"),
                        delta: 1,
                        ts_us: t * PER_THREAD + i,
                    });
                }
            });
        }
    });
    // Nothing lost from the books even though most events were evicted:
    // total emitted, buffered, and dropped always reconcile.
    assert_eq!(ring.total(), THREADS * PER_THREAD);
    assert_eq!(ring.len(), CAPACITY);
    assert_eq!(ring.dropped(), THREADS * PER_THREAD - CAPACITY as u64);

    // Sequential overflow past a full ring keeps the newest events, in
    // emission order.
    for i in 0..10u64 {
        ring.emit(&Event::Counter {
            name: format!("tail-{i}"),
            delta: 1,
            ts_us: 10_000 + i,
        });
    }
    assert_eq!(ring.len(), CAPACITY);
    let names: Vec<String> = ring
        .events()
        .iter()
        .map(|e| match e {
            Event::Counter { name, .. } => name.clone(),
            other => panic!("unexpected event {other:?}"),
        })
        .collect();
    let tail: Vec<String> = (0..10).map(|i| format!("tail-{i}")).collect();
    assert_eq!(&names[CAPACITY - 10..], &tail[..], "newest events survive");
}

/// Nodes in a `/debug/trace` span tree, counted recursively.
fn count_trace_nodes(nodes: &[serde_json::Value]) -> u64 {
    nodes
        .iter()
        .map(|n| 1 + count_trace_nodes(n["children"].as_array().unwrap_or(&[])))
        .sum()
}

/// Every `request_id` attribute anywhere in the tree (root span plus any
/// coalesce spans must name the owning request, never the other one).
fn collect_request_id_attrs(nodes: &[serde_json::Value], into: &mut Vec<String>) {
    for n in nodes {
        if let Some(id) = n["attrs"]["request_id"].as_str() {
            into.push(id.to_string());
        }
        if let Some(children) = n["children"].as_array() {
            collect_request_id_attrs(children, into);
        }
    }
}

#[test]
fn interleaved_requests_keep_their_span_trees_balanced_and_attributed() {
    let dir = std::env::temp_dir().join(format!(
        "ofence-telemetry-interleave-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for f in &generate(&CorpusSpec::small(41)).files {
        let path = dir.join(&f.name);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).unwrap();
        }
        std::fs::write(path, &f.content).unwrap();
    }

    let session = Arc::new(ofence::Session::new(ofence::SessionOptions {
        config: AnalysisConfig::default(),
        paths: vec![dir.display().to_string()],
        cache_dir: None,
        history_dir: None,
    }));

    // Two requests in flight at once, spans recorded concurrently.
    const REQUESTS: usize = 2;
    let barrier = std::sync::Barrier::new(REQUESTS);
    std::thread::scope(|scope| {
        for t in 0..REQUESTS {
            let session = session.clone();
            let barrier = &barrier;
            scope.spawn(move || {
                let ctx = session.begin_request("analyze", Some(format!("interleaved-{t}")));
                barrier.wait();
                session.analyze_document(&ctx).unwrap();
            });
        }
    });

    let live = session.live();
    for t in 0..REQUESTS {
        let id = format!("interleaved-{t}");
        let tree: serde_json::Value =
            serde_json::from_str(&live.trace_json(&id).expect("trace captured")).unwrap();
        assert_eq!(tree["request_id"].as_str(), Some(id.as_str()));
        assert_eq!(tree["method"], "analyze");
        assert_eq!(tree["outcome"], "ok");
        // Balanced: the reconstructed tree holds every recorded span.
        let roots = tree["spans"].as_array().unwrap();
        let counted = count_trace_nodes(roots);
        assert_eq!(counted, tree["span_count"].as_u64().unwrap());
        assert!(counted >= 2, "request plus the run/coalesce span: {tree}");
        assert_eq!(roots[0]["name"], "request");
        // Attributed: no span in this request's tree names the other
        // request, however the two runs interleaved.
        let mut ids = Vec::new();
        collect_request_id_attrs(roots, &mut ids);
        assert!(!ids.is_empty());
        for seen in ids {
            assert_eq!(seen, id, "foreign span attributed to {id}");
        }
    }
}
