//! End-to-end corpus evaluation: the analyzer graded against generator
//! ground truth at several scales and seeds. These tests pin the
//! reproduction's quality bar (the §6 numbers).

use ofence::{AnalysisConfig, Engine, SourceFile};
use ofence_corpus::{evaluate, generate, BugKind, BugPlan, Corpus, CorpusSpec};

fn sources(corpus: &Corpus) -> Vec<SourceFile> {
    corpus
        .files
        .iter()
        .map(|f| SourceFile::new(f.name.clone(), f.content.clone()))
        .collect()
}

fn grade(corpus: &Corpus) -> (ofence::AnalysisResult, ofence_corpus::EvalSummary) {
    grade_with(corpus, AnalysisConfig::default())
}

fn grade_with(
    corpus: &Corpus,
    config: AnalysisConfig,
) -> (ofence::AnalysisResult, ofence_corpus::EvalSummary) {
    let result = Engine::new(config).analyze(&sources(corpus));
    let bugs: Vec<ofence_corpus::FoundBug> = result
        .deviations
        .iter()
        .filter_map(|d| {
            let kind = match &d.kind {
                ofence::DeviationKind::Misplaced { .. } => BugKind::Misplaced,
                ofence::DeviationKind::RepeatedRead { .. } => BugKind::RepeatedRead,
                ofence::DeviationKind::WrongBarrierType { .. } => BugKind::WrongBarrierType,
                ofence::DeviationKind::UnneededBarrier { .. } => BugKind::UnneededBarrier,
                ofence::DeviationKind::MissingBarrier { .. } => BugKind::MissingBarrier,
                ofence::DeviationKind::MissingOnce { .. } => return None,
            };
            Some(ofence_corpus::FoundBug {
                function: d.site.function.clone(),
                kind,
                strukt: d
                    .object
                    .as_ref()
                    .map(|o| o.strukt.clone())
                    .unwrap_or_default(),
                field: d
                    .object
                    .as_ref()
                    .map(|o| o.field.clone())
                    .unwrap_or_default(),
            })
        })
        .collect();
    let pairings: Vec<ofence_corpus::FoundPairing> = result
        .pairing
        .pairings
        .iter()
        .map(|p| ofence_corpus::FoundPairing {
            functions: p
                .members
                .iter()
                .map(|&m| result.site(m).site.function.clone())
                .collect(),
        })
        .collect();
    let summary = evaluate(&corpus.manifest, &bugs, &pairings);
    (result, summary)
}

#[test]
fn clean_corpus_has_no_ordering_findings() {
    let corpus = generate(&CorpusSpec::small(3));
    let (result, summary) = grade(&corpus);
    // Only decoy-driven findings are allowed on a bug-free corpus.
    assert_eq!(summary.bugs_found, 0);
    assert!(
        summary.bug_false_positives <= corpus.manifest.decoy_pairings().count(),
        "{:?}",
        result.deviations
    );
    assert_eq!(summary.pairing_recall, 1.0, "{summary:?}");
}

#[test]
fn all_bug_classes_detected_across_seeds() {
    for seed in [1u64, 7, 99] {
        let spec = CorpusSpec {
            seed,
            files: 40,
            patterns_per_file: 2,
            noise_per_file: 1,
            decoy_pairs: 0,
            far_decoy_pairs: 0,
            lone_per_file: 0,
            split_fraction: 0.2,
            reread_decoys: 0,
            unfenced_decoys: 0,
            filler_files: 0,
            cross_file_chains: 0,
            chain_depth: 2,
            chain_bugs: 0,
            bugs: BugPlan {
                misplaced: 6,
                repeated_read: 3,
                wrong_type: 1,
                unneeded: 6,
                missing_barrier: 3,
            },
        };
        let corpus = generate(&spec);
        let (_, summary) = grade_with(
            &corpus,
            AnalysisConfig {
                detect_missing: true,
                ..Default::default()
            },
        );
        assert_eq!(
            summary.bugs_found, summary.bugs_injected,
            "seed {seed}: all injected bugs must be found: {summary:#?}"
        );
        for (kind, injected, found) in &summary.per_kind {
            assert_eq!(injected, found, "seed {seed}, class {kind}");
        }
    }
}

#[test]
fn paper_scale_shape_holds() {
    let corpus = generate(&CorpusSpec::paper_scale(42));
    let (result, summary) = grade(&corpus);

    // §6.4 shape: coverage near 50%, several hundred pairings.
    assert!(
        result.stats.coverage > 0.40 && result.stats.coverage < 0.60,
        "coverage {:.2} out of the paper's ballpark",
        result.stats.coverage
    );
    assert!(
        result.stats.pairings >= 400 && result.stats.pairings <= 600,
        "pairings {} far from the paper's 456",
        result.stats.pairings
    );
    // Table 3 + §6.3 recall.
    assert_eq!(summary.bugs_found, 65, "{summary:#?}");
    // §6.4: 15 incorrect pairings, 12 incorrect patches (50% FP ratio).
    assert_eq!(summary.decoy_pairings_found, 15, "{summary:#?}");
    assert_eq!(summary.bug_false_positives, 12, "{summary:#?}");
    assert_eq!(summary.unexplained_pairings, 0, "{summary:#?}");
}

#[test]
fn wakeup_writers_classified_implicit_ipc() {
    let corpus = generate(&CorpusSpec::small(11));
    let result = Engine::new(AnalysisConfig::default()).analyze(&sources(&corpus));
    for writer in &corpus.manifest.implicit_ipc_writers {
        let site = result
            .sites
            .iter()
            .find(|s| &s.site.function == writer)
            .unwrap_or_else(|| panic!("site for {writer}"));
        assert!(
            result
                .pairing
                .unpaired
                .iter()
                .any(|(id, r)| *id == site.id && *r == ofence::UnpairedReason::ImplicitIpc),
            "{writer} must be implicit-IPC unpaired"
        );
    }
}

#[test]
fn generation_and_analysis_deterministic() {
    let spec = CorpusSpec {
        bugs: BugPlan {
            misplaced: 2,
            repeated_read: 1,
            wrong_type: 1,
            unneeded: 1,
            missing_barrier: 1,
        },
        ..CorpusSpec::small(5)
    };
    let (r1, s1) = grade(&generate(&spec));
    let (r2, s2) = grade(&generate(&spec));
    assert_eq!(
        format!("{:?}", r1.deviations),
        format!("{:?}", r2.deviations)
    );
    assert_eq!(format!("{s1:?}"), format!("{s2:?}"));
}

#[test]
fn pattern_counts_recorded() {
    let corpus = generate(&CorpusSpec::small(2));
    let total: usize = corpus.manifest.pattern_counts.values().sum();
    assert_eq!(total, 16); // 8 files × 2 patterns
}

#[test]
fn figure6_shape_rising_then_plateau() {
    let corpus = generate(&CorpusSpec::paper_scale(42));
    let files = sources(&corpus);
    let sweep =
        Engine::sweep_write_window(&files, &AnalysisConfig::default(), [1u32, 3, 5, 10, 20]);
    let counts: Vec<usize> = sweep.iter().map(|&(_, p)| p).collect();
    // Rising edge: window 1 finds clearly fewer pairings than window 5.
    assert!(
        (counts[0] as f64) < 0.9 * counts[2] as f64,
        "no rising edge: {counts:?}"
    );
    // Plateau: window 5 ≈ window 20 (within 5%).
    let at5 = counts[2] as f64;
    let at20 = counts[4] as f64;
    assert!((at20 - at5).abs() / at20 < 0.05, "no plateau: {counts:?}");
}

#[test]
fn missing_detector_full_recall_without_false_positives() {
    let spec = CorpusSpec {
        seed: 77,
        files: 30,
        patterns_per_file: 2,
        noise_per_file: 2,
        decoy_pairs: 0,
        far_decoy_pairs: 0,
        lone_per_file: 1,
        split_fraction: 0.2,
        reread_decoys: 0,
        unfenced_decoys: 4,
        filler_files: 0,
        cross_file_chains: 0,
        chain_depth: 2,
        chain_bugs: 0,
        bugs: BugPlan {
            missing_barrier: 5,
            ..BugPlan::none()
        },
    };
    let corpus = generate(&spec);
    assert_eq!(corpus.manifest.count_bugs(BugKind::MissingBarrier), 5);

    // Detector off (default): the injected bugs are invisible.
    let (_, off) = grade(&corpus);
    assert_eq!(off.bugs_found, 0, "{off:#?}");

    // Detector on: every fence-less guarded reader is found, and the
    // outlier rule keeps the unfenced decoys quiet.
    let (_, on) = grade_with(
        &corpus,
        AnalysisConfig {
            detect_missing: true,
            ..Default::default()
        },
    );
    assert_eq!(on.bugs_found, 5, "{on:#?}");
    assert!(on.bug_recall >= 0.9, "{on:#?}");
    assert_eq!(on.bug_false_positives, 0, "{on:#?}");

    // Ablation: without the outlier rule the detector reports both
    // fence-less readers of every decoy.
    let (_, no_outlier) = grade_with(
        &corpus,
        AnalysisConfig {
            detect_missing: true,
            outlier_rule: false,
            ..Default::default()
        },
    );
    assert_eq!(no_outlier.bugs_found, 5, "{no_outlier:#?}");
    assert!(
        no_outlier.bug_false_positives >= 2 * 4,
        "outlier ablation should flag the unfenced decoys: {no_outlier:#?}"
    );
}

#[test]
fn dataflow_reread_strictly_fewer_false_positives_than_window() {
    let spec = CorpusSpec {
        seed: 33,
        files: 20,
        patterns_per_file: 2,
        noise_per_file: 1,
        decoy_pairs: 0,
        far_decoy_pairs: 0,
        lone_per_file: 0,
        split_fraction: 0.0,
        reread_decoys: 5,
        unfenced_decoys: 0,
        filler_files: 0,
        cross_file_chains: 0,
        chain_depth: 2,
        chain_bugs: 0,
        bugs: BugPlan {
            repeated_read: 4,
            ..BugPlan::none()
        },
    };
    let corpus = generate(&spec);
    let (_, dataflow) = grade(&corpus);
    let (_, window) = grade_with(
        &corpus,
        AnalysisConfig {
            dataflow_reread: false,
            ..Default::default()
        },
    );
    // Both configurations find every injected racy re-read...
    assert_eq!(dataflow.bugs_found, 4, "{dataflow:#?}");
    assert_eq!(window.bugs_found, 4, "{window:#?}");
    // ...but the bounded-window heuristic also flags every benign decoy,
    // while reaching definitions prove the re-reads observe the reader's
    // own store.
    assert_eq!(dataflow.bug_false_positives, 0, "{dataflow:#?}");
    assert_eq!(window.bug_false_positives, 5, "{window:#?}");
}

#[test]
fn figure7_read_distances_spread_out() {
    let corpus = generate(&CorpusSpec::paper_scale(42));
    let result = Engine::new(AnalysisConfig::default()).analyze(&sources(&corpus));
    let h = result.read_distance_histogram();
    // Reads are spread: a meaningful share beyond 5 statements...
    assert!(
        h.cumulative_at(5) < 0.95,
        "reads all hug the barrier: {:?}",
        h.counts
    );
    // ...including a tail past 20 (the paper's Patch 3 was at 26).
    let far: usize = h.counts.iter().skip(21).sum();
    assert!(far > 0, "no far-read tail");
    // Writes hug the barrier (Figure 6's caption).
    let wh = result.write_distance_histogram();
    assert!(wh.cumulative_at(5) > 0.95, "{:?}", wh.counts);
}
