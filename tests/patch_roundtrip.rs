//! Patch round-trip guarantees: every generated patch applies cleanly,
//! the patched file still parses, the diagnostic it fixes disappears,
//! and no new diagnostics of the same class appear in that file.

use ofence::{AnalysisConfig, DeviationKind, Engine, SourceFile};
use ofence_corpus::{generate, BugPlan, CorpusSpec};

fn bug_corpus(seed: u64) -> Vec<SourceFile> {
    let spec = CorpusSpec {
        seed,
        files: 30,
        patterns_per_file: 2,
        noise_per_file: 1,
        decoy_pairs: 0, // decoys intentionally produce wrong patches; exclude here
        far_decoy_pairs: 0,
        lone_per_file: 0,
        split_fraction: 0.0, // keep each pattern in one file so single-file re-analysis sees both sides
        reread_decoys: 0,
        unfenced_decoys: 0,
        filler_files: 0,
        cross_file_chains: 0,
        chain_depth: 2,
        chain_bugs: 0,
        bugs: BugPlan {
            misplaced: 6,
            repeated_read: 4,
            wrong_type: 2,
            unneeded: 5,
            missing_barrier: 0,
        },
    };
    generate(&spec)
        .files
        .into_iter()
        .map(|f| SourceFile::new(f.name, f.content))
        .collect()
}

fn class_of(kind: &DeviationKind) -> &'static str {
    match kind {
        DeviationKind::Misplaced { .. } => "misplaced",
        DeviationKind::RepeatedRead { .. } => "re-read",
        DeviationKind::WrongBarrierType { .. } => "wrong-type",
        DeviationKind::UnneededBarrier { .. } => "unneeded",
        DeviationKind::MissingOnce { .. } => "annotation",
        DeviationKind::MissingBarrier { .. } => "missing-fence",
    }
}

#[test]
fn every_patch_applies_and_eliminates_its_diagnostic() {
    let files = bug_corpus(17);
    let result = Engine::new(AnalysisConfig::default()).analyze(&files);
    assert!(!result.deviations.is_empty());
    let mut patched_count = 0;
    for dev in &result.deviations {
        let fa = &result.files[dev.site.file];
        let Some(patch) = ofence::patch::synthesize(dev, fa) else {
            continue;
        };
        patched_count += 1;
        // 1. The edits apply.
        let fixed =
            ofence::apply_edits(&fa.source, &patch.edits).expect("edits are non-overlapping");
        // 2. The patched file parses without new errors.
        let reparsed = ckit::parse_string(&fa.name, &fixed).expect("front end");
        assert!(
            reparsed.errors.is_empty(),
            "patch broke the file {}: {:?}\n{fixed}",
            fa.name,
            reparsed.errors
        );
        // 3. The diagnostic is gone, and no new same-class diagnostic
        //    appeared in this function.
        let r2 = Engine::new(AnalysisConfig::default())
            .analyze(&[SourceFile::new(fa.name.clone(), fixed)]);
        let still: Vec<_> = r2
            .deviations
            .iter()
            .filter(|d| {
                d.site.function == dev.site.function && class_of(&d.kind) == class_of(&dev.kind)
            })
            .collect();
        assert!(
            still.is_empty(),
            "patch for {} in {} did not eliminate the diagnostic: {still:?}\npatch:\n{}",
            class_of(&dev.kind),
            dev.site.function,
            patch.diff
        );
    }
    assert!(
        patched_count >= result.deviations.len() / 2,
        "too few deviations were patchable: {patched_count}/{}",
        result.deviations.len()
    );
}

#[test]
fn patch_diffs_are_well_formed() {
    let files = bug_corpus(23);
    let result = Engine::new(AnalysisConfig::default()).analyze(&files);
    for dev in &result.deviations {
        let fa = &result.files[dev.site.file];
        if let Some(patch) = ofence::patch::synthesize(dev, fa) {
            assert!(patch.diff.starts_with("--- a/"), "{}", patch.diff);
            assert!(patch.diff.contains("+++ b/"));
            assert!(patch.diff.contains("@@"), "diff without hunks");
            assert!(!patch.explanation.is_empty());
            // The diff replays: applying the edits and re-diffing gives
            // the same text.
            let fixed = ofence::apply_edits(&fa.source, &patch.edits).unwrap();
            let rediff = ofence::patch::line_diff(&fa.source, &fixed, &fa.name);
            assert_eq!(patch.diff, rediff);
        }
    }
}

#[test]
fn annotation_patches_compose_per_file() {
    let files = bug_corpus(29);
    let result = Engine::new(AnalysisConfig::default()).analyze(&files);
    // Compose annotation edits per file through the library's
    // conflict-resolving path.
    let mut by_file: std::collections::BTreeMap<usize, Vec<&ofence::Deviation>> =
        Default::default();
    for dev in &result.annotations {
        by_file.entry(dev.site.file).or_default().push(dev);
    }
    assert!(!by_file.is_empty(), "corpus must need annotations");
    for (file, devs) in by_file {
        let fa = &result.files[file];
        let edits = ofence::annotate::file_annotation_edits(&devs, fa);
        assert!(!edits.is_empty(), "no edits composed for {}", fa.name);
        let fixed = ofence::apply_edits(&fa.source, &edits)
            .unwrap_or_else(|| panic!("annotation edits overlap in {}", fa.name));
        let reparsed = ckit::parse_string(&fa.name, &fixed).expect("front end");
        assert!(
            reparsed.errors.is_empty(),
            "annotations broke {}: {:?}\n{fixed}",
            fa.name,
            reparsed.errors
        );
    }
}

#[test]
fn fixing_everything_yields_clean_corpus() {
    // Apply all ordering patches file by file, then re-analyze the whole
    // corpus: every injected bug class must be gone.
    let files = bug_corpus(31);
    let result = Engine::new(AnalysisConfig::default()).analyze(&files);
    let mut fixed_files: Vec<SourceFile> = files.clone();
    let mut edits_by_file: std::collections::BTreeMap<usize, Vec<ofence::patch::Edit>> =
        Default::default();
    for dev in &result.deviations {
        let fa = &result.files[dev.site.file];
        if let Some(patch) = ofence::patch::synthesize(dev, fa) {
            edits_by_file
                .entry(dev.site.file)
                .or_default()
                .extend(patch.edits);
        }
    }
    for (file, mut edits) in edits_by_file {
        edits.sort_by_key(|e| (e.span.lo, e.span.hi));
        edits.dedup();
        // Patches within one file may collide (rare); drop later
        // conflicting edits, mirroring a maintainer applying them one by
        // one.
        let mut kept: Vec<ofence::patch::Edit> = Vec::new();
        for e in edits {
            if kept
                .last()
                .map(|prev| e.span.lo >= prev.span.hi)
                .unwrap_or(true)
            {
                kept.push(e);
            }
        }
        let fixed = ofence::apply_edits(&files[file].content, &kept).expect("apply");
        fixed_files[file].content = fixed.into();
    }
    let r2 = Engine::new(AnalysisConfig::default()).analyze(&fixed_files);
    assert!(
        r2.deviations.len() < result.deviations.len() / 4,
        "fixing everything should eliminate almost all findings: {} -> {}\n{:#?}",
        result.deviations.len(),
        r2.deviations.len(),
        r2.deviations
    );
}
