//! End-to-end tests for `ofence serve` — the analysis daemon (DESIGN §15).
//!
//! The daemon runs as a real child process (`CARGO_BIN_EXE_ofence serve`)
//! against a generated corpus on disk, and the tests speak the wire
//! protocol over TCP, exactly as an editor integration would:
//!
//! * **byte-identity** — `analyze`, `explain`, and `diff` responses must
//!   match the single-shot CLI output byte for byte (after scrubbing the
//!   per-run volatile fields: `run_id`, `stats`, `observability`).
//! * **coalescing** — a barrage of identical concurrent requests shares
//!   runs: `serve_runs` equals the number of distinct run ids and the
//!   `serve_coalesced` counter is exercised (> 0).
//! * **torn results** — concurrent atomic corpus edits racing analyzes
//!   never produce a response mixing two corpus versions, and never
//!   corrupt the on-disk cache shards (proptest, PR 7 shard integrity).
//! * **protocol fuzz** — garbage, truncated, oversized, and non-UTF-8
//!   requests get structured errors, never a panic, and the daemon's
//!   thread count returns to its post-warmup baseline.

use std::collections::HashSet;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use ofence_corpus::generator::{generate, inject_deviation, inject_edit, Corpus, CorpusSpec};
use proptest::prelude::*;
use serde_json::Value;

// ---------------------------------------------------------------------------
// Harness: corpus on disk, daemon child process, wire client, CLI runner.
// ---------------------------------------------------------------------------

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ofence-server-test-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Write every corpus file under `dir`, creating parents as needed.
fn write_corpus(dir: &Path, corpus: &Corpus) {
    for f in &corpus.files {
        let path = dir.join(&f.name);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).unwrap();
        }
        std::fs::write(path, &f.content).unwrap();
    }
}

/// Atomically replace one corpus file on disk (write + rename), so a
/// racing snapshot sees either the old or the new content, never a
/// half-written file.
fn rewrite_file_atomic(dir: &Path, name: &str, content: &str) {
    let path = dir.join(name);
    let tmp = dir.join(format!("{name}.tmp-swap"));
    std::fs::write(&tmp, content).unwrap();
    std::fs::rename(&tmp, &path).unwrap();
}

/// A daemon child process. Spawns `ofence serve`, parses the bound
/// address off stdout, and kills the child on drop if it is still alive.
struct Daemon {
    child: Child,
    addr: String,
    /// Bound address of the `--metrics` HTTP endpoint, when enabled.
    metrics_addr: Option<String>,
}

impl Daemon {
    fn spawn(corpus_dir: &Path, cache_dir: &Path, history_dir: &Path) -> Daemon {
        Daemon::spawn_inner(corpus_dir, cache_dir, history_dir, false)
    }

    /// Spawn with `--metrics 127.0.0.1:0`, parsing the bound HTTP address
    /// off the same stdout contract scripts use (`ci/serve-soak.sh`).
    fn spawn_with_metrics(corpus_dir: &Path, cache_dir: &Path, history_dir: &Path) -> Daemon {
        Daemon::spawn_inner(corpus_dir, cache_dir, history_dir, true)
    }

    fn spawn_inner(
        corpus_dir: &Path,
        cache_dir: &Path,
        history_dir: &Path,
        metrics: bool,
    ) -> Daemon {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_ofence"));
        cmd.arg("serve")
            .arg(corpus_dir)
            .args(["--addr", "127.0.0.1:0"])
            .arg("--cache-dir")
            .arg(cache_dir)
            .arg("--history-dir")
            .arg(history_dir)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        if metrics {
            cmd.args(["--metrics", "127.0.0.1:0"]);
        }
        let mut child = cmd.spawn().expect("spawn ofence serve");
        let stdout = child.stdout.take().unwrap();
        let mut reader = BufReader::new(stdout);
        let mut addr = None;
        let mut metrics_addr = None;
        let mut line = String::new();
        while reader.read_line(&mut line).unwrap_or(0) > 0 {
            let trimmed = line.trim_end();
            if let Some(rest) =
                trimmed.strip_prefix("serve: serving /metrics and /health on http://")
            {
                metrics_addr = Some(rest.to_string());
            }
            if let Some(rest) = trimmed.strip_prefix("serve: listening on ") {
                addr = Some(rest.to_string());
                break;
            }
            line.clear();
        }
        let addr = addr.expect("daemon printed its listen address");
        assert_eq!(
            metrics_addr.is_some(),
            metrics,
            "daemon printed its metrics address iff --metrics was given"
        );
        // Keep draining stdout so the child never blocks on a full pipe.
        std::thread::spawn(move || {
            let mut sink = String::new();
            let _ = reader.read_to_string(&mut sink);
        });
        Daemon {
            child,
            addr,
            metrics_addr,
        }
    }

    fn client(&self) -> Client {
        Client::connect(&self.addr)
    }

    /// Ask the daemon to stop, then wait for the process to exit.
    fn shutdown(&mut self) {
        let mut c = self.client();
        let _ = c.call(serde_json::json!({"id": "bye", "method": "shutdown"}));
        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline {
            if self.child.try_wait().unwrap().is_some() {
                return;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        panic!("daemon did not exit after shutdown");
    }

    /// `Threads:` from /proc/<pid>/status — the daemon's live thread count.
    fn thread_count(&self) -> usize {
        let status = std::fs::read_to_string(format!("/proc/{}/status", self.child.id())).unwrap();
        status
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .and_then(|v| v.trim().parse().ok())
            .expect("Threads: line in /proc status")
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if self.child.try_wait().map(|s| s.is_none()).unwrap_or(false) {
            let _ = self.child.kill();
        }
        let _ = self.child.wait();
    }
}

/// One wire connection: newline-delimited JSON requests and responses.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn call(&mut self, request: Value) -> Value {
        let mut line = serde_json::to_string(&request).unwrap();
        line.push('\n');
        self.writer.write_all(line.as_bytes()).unwrap();
        let mut response = String::new();
        self.reader.read_line(&mut response).unwrap();
        assert!(
            !response.is_empty(),
            "daemon closed the connection instead of answering"
        );
        serde_json::from_str(&response).expect("daemon response is valid JSON")
    }

    /// Call and unwrap a successful result document.
    fn ok(&mut self, request: Value) -> Value {
        let response = self.call(request);
        assert_eq!(
            response["ok"],
            true,
            "request failed: {}",
            serde_json::to_string(&response).unwrap()
        );
        response["result"].clone()
    }
}

/// Run the single-shot CLI; returns captured stdout. Panics on non-zero
/// exit so a broken comparison command fails loudly.
fn run_cli(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_ofence"))
        .args(args)
        .output()
        .expect("run ofence CLI");
    assert!(
        out.status.success(),
        "ofence {:?} failed: {}",
        args,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("CLI output is UTF-8")
}

/// Null out the fields that legitimately differ between two runs over
/// identical corpus bytes: the run id and the timing/counter blocks.
/// Everything else — sites, pairings, findings, patches, files — must
/// match byte for byte.
fn scrub_volatile(doc: &mut Value) {
    if let Value::Object(map) = doc {
        for key in ["run_id", "stats", "observability"] {
            if map.contains_key(key) {
                map.insert(key.to_string(), Value::Null);
            }
        }
    }
}

fn pretty_scrubbed(mut doc: Value) -> String {
    scrub_volatile(&mut doc);
    serde_json::to_string_pretty(&doc).unwrap()
}

// ---------------------------------------------------------------------------
// Satellite 1: daemon responses are byte-identical to the single-shot CLI.
// ---------------------------------------------------------------------------

#[test]
fn daemon_matches_single_shot_cli_byte_for_byte() {
    let corpus_dir = temp_dir("e2e-corpus");
    let cache_dir = temp_dir("e2e-cache");
    let history_dir = temp_dir("e2e-history");
    let mut corpus = generate(&CorpusSpec::small(11));
    write_corpus(&corpus_dir, &corpus);
    let corpus_path = corpus_dir.display().to_string();

    let mut daemon = Daemon::spawn(&corpus_dir, &cache_dir, &history_dir);
    let mut client = daemon.client();

    // analyze: same document the CLI prints for `analyze --json`.
    let served = client.ok(serde_json::json!({"id": 1, "method": "analyze"}));
    assert_eq!(served["schema_version"], 3);
    for key in ["run_id", "sites", "pairings", "findings", "files"] {
        assert!(served.get(key).is_some(), "analyze document has `{key}`");
    }
    let run_id_1 = served["run_id"].as_str().unwrap().to_string();
    let cli_stdout = run_cli(&[
        "analyze",
        &corpus_path,
        "--json",
        "--fail-on",
        "none",
        "--no-history",
        "--no-cache",
    ]);
    let cli_doc: Value = serde_json::from_str(&cli_stdout).unwrap();
    assert_eq!(
        pretty_scrubbed(served.clone()),
        pretty_scrubbed(cli_doc),
        "daemon analyze differs from single-shot CLI"
    );

    // explain: replay one pairing decision for a real barrier site.
    let site = &served["sites"][0]["site"];
    let file = site["file_name"].as_str().unwrap().to_string();
    let line = site["line"].as_u64().unwrap();
    let served_explain = client.ok(serde_json::json!({
        "id": 2,
        "method": "explain",
        "params": {"file": file, "line": line},
    }));
    let cli_explain = run_cli(&[
        "explain",
        &format!("{file}:{line}"),
        &corpus_path,
        "--json",
        "--no-history",
        "--no-cache",
    ]);
    assert_eq!(
        serde_json::to_string_pretty(&served_explain).unwrap(),
        cli_explain.trim_end(),
        "daemon explain differs from single-shot CLI"
    );

    // diff: edit the corpus, analyze again, then classify the two ledger
    // runs through both front ends.
    let edited = inject_edit(&mut corpus, 77);
    let content = corpus
        .files
        .iter()
        .find(|f| f.name == edited)
        .unwrap()
        .content
        .clone();
    rewrite_file_atomic(&corpus_dir, &edited, &content);
    let second = client.ok(serde_json::json!({"id": 3, "method": "analyze"}));
    let run_id_2 = second["run_id"].as_str().unwrap().to_string();
    assert_ne!(run_id_1, run_id_2, "edited corpus produces a fresh run");
    let served_diff = client.ok(serde_json::json!({
        "id": 4,
        "method": "diff",
        "params": {"old": run_id_1, "new": run_id_2},
    }));
    let cli_diff = run_cli(&[
        "diff",
        &run_id_1,
        &run_id_2,
        "--json",
        "--fail-on",
        "none",
        "--history-dir",
        &history_dir.display().to_string(),
    ]);
    assert_eq!(
        serde_json::to_string_pretty(&served_diff).unwrap(),
        cli_diff.trim_end(),
        "daemon diff differs from single-shot CLI"
    );

    // analyze-file: a coherent slice of the full document — the same
    // findings the full run reports for that file (the run id is fresh;
    // only concurrent requests share runs).
    let slice = client.ok(serde_json::json!({
        "id": 5,
        "method": "analyze-file",
        "params": {"file": file},
    }));
    assert_eq!(slice["schema_version"], 3);
    assert_eq!(slice["file"].as_str().unwrap(), file);
    let full_findings = Value::Array(
        second["findings"]
            .as_array()
            .unwrap()
            .iter()
            .filter(|f| f["file"].as_str() == Some(file.as_str()))
            .cloned()
            .collect(),
    );
    assert_eq!(
        slice["findings"], full_findings,
        "analyze-file slice differs from the full document's findings"
    );

    daemon.shutdown();
}

// ---------------------------------------------------------------------------
// Satellite 1 (cont.): identical concurrent requests coalesce.
// ---------------------------------------------------------------------------

#[test]
fn concurrent_identical_requests_coalesce() {
    let corpus_dir = temp_dir("coalesce-corpus");
    let cache_dir = temp_dir("coalesce-cache");
    let history_dir = temp_dir("coalesce-history");
    // A larger corpus than `small` so each run takes long enough for the
    // barrage to overlap in flight.
    let spec = CorpusSpec {
        files: 24,
        ..CorpusSpec::small(23)
    };
    write_corpus(&corpus_dir, &generate(&spec));

    let mut daemon = Daemon::spawn(&corpus_dir, &cache_dir, &history_dir);

    const THREADS: usize = 8;
    const ROUNDS: usize = 3;
    let barrier = std::sync::Barrier::new(THREADS);
    let mut run_ids: Vec<String> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let addr = daemon.addr.clone();
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut client = Client::connect(&addr);
                    let mut ids = Vec::new();
                    for round in 0..ROUNDS {
                        barrier.wait();
                        let doc = client.ok(
                            serde_json::json!({"id": format!("{t}-{round}"), "method": "analyze"}),
                        );
                        ids.push(doc["run_id"].as_str().unwrap().to_string());
                    }
                    ids
                })
            })
            .collect();
        for h in handles {
            run_ids.extend(h.join().unwrap());
        }
    });

    assert_eq!(run_ids.len(), THREADS * ROUNDS);
    let distinct: HashSet<&String> = run_ids.iter().collect();
    let status = daemon
        .client()
        .ok(serde_json::json!({"id": "s", "method": "status"}));
    let counter = |name: &str| status["counters"][name].as_u64().unwrap();
    // Every analyze either led a run or joined one; nothing is lost and
    // nothing is double-counted.
    assert_eq!(
        counter("serve_runs"),
        distinct.len() as u64,
        "one engine run per distinct run id"
    );
    assert_eq!(
        counter("serve_runs") + counter("serve_coalesced"),
        (THREADS * ROUNDS) as u64,
        "every request either leads or joins"
    );
    assert!(
        counter("serve_coalesced") > 0,
        "the barrage must actually exercise coalescing \
         (got {} runs for {} requests)",
        counter("serve_runs"),
        THREADS * ROUNDS
    );
    assert_eq!(counter("serve_errors"), 0);

    daemon.shutdown();
}

// ---------------------------------------------------------------------------
// Satellite 2: concurrent edits racing analyzes — no torn results, no
// corrupt cache shards.
// ---------------------------------------------------------------------------

/// Group the injected bugs by file, in injection order. A snapshot that
/// mixes corpus versions *within* one file would surface as a gap in
/// this sequence (bug k visible while bug j < k of the same file is not).
fn per_file_prefixes(bugs: &[(String, String)]) -> Vec<(String, Vec<String>)> {
    let mut grouped: Vec<(String, Vec<String>)> = Vec::new();
    for (file, function) in bugs {
        match grouped.iter_mut().find(|(f, _)| f == file) {
            Some((_, fns)) => fns.push(function.clone()),
            None => grouped.push((file.clone(), vec![function.clone()])),
        }
    }
    grouped
}

fn assert_untorn(doc: &Value, bugs: &[(String, String)]) {
    let findings = doc["findings"].as_array().expect("findings array");
    let found: HashSet<String> = findings
        .iter()
        .filter_map(|f| f["function"].as_str())
        .map(str::to_string)
        .collect();
    for (file, functions) in per_file_prefixes(bugs) {
        let visible: Vec<bool> = functions.iter().map(|f| found.contains(f)).collect();
        let first_missing = visible.iter().position(|v| !v).unwrap_or(visible.len());
        assert!(
            visible[first_missing..].iter().all(|v| !v),
            "torn result for {file}: injected bugs visible out of order \
             ({functions:?} -> {visible:?})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn edits_racing_analyzes_never_tear(seed in 0u64..500) {
        let corpus_dir = temp_dir("race-corpus");
        let cache_dir = temp_dir("race-cache");
        let history_dir = temp_dir("race-history");
        let mut corpus = generate(&CorpusSpec::small(seed));
        write_corpus(&corpus_dir, &corpus);

        let mut daemon = Daemon::spawn(&corpus_dir, &cache_dir, &history_dir);

        const EDITS: usize = 6;
        // Writer: inject one misplaced-access bug at a time, rewriting
        // the touched file atomically, while readers keep analyzing.
        let mut injected: Vec<(String, String)> = Vec::new();
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let addr = daemon.addr.clone();
            let stop_ref = &stop;
            let readers: Vec<_> = (0..2)
                .map(|r| {
                    let addr = addr.clone();
                    scope.spawn(move || {
                        let mut client = Client::connect(&addr);
                        let mut docs = Vec::new();
                        while !stop_ref.load(Ordering::Relaxed) {
                            let doc = client.ok(
                                serde_json::json!({"id": format!("r{r}"), "method": "analyze"}),
                            );
                            docs.push(doc);
                        }
                        docs
                    })
                })
                .collect();

            for j in 0..EDITS {
                let bug = inject_deviation(&mut corpus, seed * 16 + j as u64);
                let content = corpus
                    .files
                    .iter()
                    .find(|f| f.name == bug.file)
                    .unwrap()
                    .content
                    .clone();
                rewrite_file_atomic(&corpus_dir, &bug.file, &content);
                injected.push((bug.file.clone(), bug.function.clone()));
                std::thread::sleep(Duration::from_millis(30));
            }
            stop.store(true, Ordering::Relaxed);
            for reader in readers {
                // Every response observed mid-race must be a coherent
                // snapshot: per file, injected bugs appear oldest-first
                // with no gaps.
                for doc in reader.join().unwrap() {
                    assert_untorn(&doc, &injected);
                }
            }
        });

        // The settled corpus shows every injected bug.
        let final_doc = daemon
            .client()
            .ok(serde_json::json!({"id": "final", "method": "analyze"}));
        let found: HashSet<String> = final_doc["findings"]
            .as_array()
            .unwrap()
            .iter()
            .filter_map(|f| f["function"].as_str())
            .map(str::to_string)
            .collect();
        for (_, function) in &injected {
            prop_assert!(
                found.contains(function),
                "settled run is missing injected bug {function}"
            );
        }
        let status = daemon
            .client()
            .ok(serde_json::json!({"id": "s", "method": "status"}));
        prop_assert_eq!(status["counters"]["serve_errors"].as_u64(), Some(0));

        daemon.shutdown();

        // The disk cache survived the race: the shards reload cleanly
        // instead of being discarded as corrupt (PR 7 shard integrity).
        let mut engine = ofence::Engine::new(ofence::AnalysisConfig::default());
        if let ofence::LoadOutcome::Discarded { reason } = engine.load_disk_cache(&cache_dir) {
            prop_assert!(false, "cache shards corrupted by the race: {}", reason);
        }
    }
}

// ---------------------------------------------------------------------------
// Satellite 3: protocol fuzz — structured errors, no panics, no thread
// leaks.
// ---------------------------------------------------------------------------

/// Send raw bytes on a fresh connection and return the response line, if
/// the daemon sent one before we closed.
fn raw_exchange(addr: &str, payload: &[u8], expect_reply: bool) -> Option<Value> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(payload).unwrap();
    if !expect_reply {
        return None;
    }
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    if line.is_empty() {
        None
    } else {
        Some(serde_json::from_str(&line).expect("error responses are valid JSON"))
    }
}

fn error_code(response: &Value) -> String {
    assert_eq!(response["ok"], false);
    response["error"]["code"].as_str().unwrap().to_string()
}

#[test]
fn protocol_fuzz_yields_structured_errors_and_no_thread_leak() {
    let corpus_dir = temp_dir("fuzz-corpus");
    let cache_dir = temp_dir("fuzz-cache");
    let history_dir = temp_dir("fuzz-history");
    write_corpus(&corpus_dir, &generate(&CorpusSpec::small(5)));

    let mut daemon = Daemon::spawn(&corpus_dir, &cache_dir, &history_dir);

    // Warm up: one analyze so the engine's worker pool exists, then take
    // the thread baseline the storm must return to.
    let mut client = daemon.client();
    client.ok(serde_json::json!({"id": 0, "method": "analyze"}));
    let baseline = daemon.thread_count();

    // Garbage that is not JSON.
    let r = raw_exchange(&daemon.addr, b"this is not json\n", true).unwrap();
    assert_eq!(error_code(&r), "bad_request");

    // Valid JSON that is not a request object.
    let r = raw_exchange(&daemon.addr, b"[1,2,3]\n", true).unwrap();
    assert_eq!(error_code(&r), "bad_request");

    // Missing method.
    let r = raw_exchange(&daemon.addr, b"{\"id\": 9}\n", true).unwrap();
    assert_eq!(error_code(&r), "bad_request");
    assert_eq!(r["id"], 9, "the request id is echoed even on errors");

    // Invalid UTF-8.
    let r = raw_exchange(&daemon.addr, b"\xff\xfe{\"id\":1}\n", true).unwrap();
    assert_eq!(error_code(&r), "bad_request");

    // Unknown method.
    let r = raw_exchange(
        &daemon.addr,
        b"{\"id\": 1, \"method\": \"frobnicate\"}\n",
        true,
    )
    .unwrap();
    assert_eq!(error_code(&r), "unknown_method");

    // Missing params for a method that requires them.
    let r = raw_exchange(
        &daemon.addr,
        b"{\"id\": 2, \"method\": \"explain\"}\n",
        true,
    )
    .unwrap();
    assert_eq!(error_code(&r), "bad_request");

    // Oversized line (> 4 MiB): rejected, and the connection survives to
    // serve the next request.
    {
        let mut stream = TcpStream::connect(&daemon.addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut huge = vec![b'x'; 5 * 1024 * 1024];
        huge.push(b'\n');
        stream.write_all(&huge).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let r: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(error_code(&r), "oversized");
        stream
            .write_all(b"{\"id\": \"after\", \"method\": \"ping\"}\n")
            .unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        let r: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(r["ok"], true, "connection survives an oversized line");
    }

    // Mid-request disconnects: a partial line with no newline, and an
    // immediate close. No reply expected; the daemon must just shrug.
    for _ in 0..10 {
        raw_exchange(&daemon.addr, b"{\"id\": 1, \"method\": \"anal", false);
        let _ = TcpStream::connect(&daemon.addr).unwrap();
    }

    // The daemon still answers on a fresh connection.
    let pong = daemon
        .client()
        .ok(serde_json::json!({"id": "alive", "method": "ping"}));
    assert_eq!(pong["pong"], true);

    // Connection threads wind down to the post-warmup baseline.
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        // One live client of our own (`client`) is still connected.
        if daemon.thread_count() <= baseline {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "thread leak: {} threads, baseline {}",
            daemon.thread_count(),
            baseline
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    daemon.shutdown();
}

// ---------------------------------------------------------------------------
// PR 10 tentpole: request ids and captured traces round-trip end to end —
// wire `trace` method, `/debug/*` HTTP routes, and the `ofence trace` CLI.
// ---------------------------------------------------------------------------

/// Minimal HTTP GET against the daemon's `--metrics` endpoint; returns
/// (status line, body).
fn http_get(addr: &str, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics endpoint");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
    let mut raw = String::new();
    BufReader::new(stream).read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("HTTP header terminator");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

/// Nodes in a `/debug/trace` span tree, counted recursively.
fn count_trace_nodes(nodes: &[Value]) -> u64 {
    nodes
        .iter()
        .map(|n| 1 + count_trace_nodes(n["children"].as_array().unwrap_or(&[])))
        .sum()
}

#[test]
fn trace_round_trips_from_wire_to_debug_routes_to_cli() {
    let corpus_dir = temp_dir("trace-corpus");
    let cache_dir = temp_dir("trace-cache");
    let history_dir = temp_dir("trace-history");
    // Large enough that a concurrent barrage overlaps in flight, so the
    // coalesced-joiner assertions below have something to bite on.
    let spec = CorpusSpec {
        files: 24,
        ..CorpusSpec::small(31)
    };
    write_corpus(&corpus_dir, &generate(&spec));

    let mut daemon = Daemon::spawn_with_metrics(&corpus_dir, &cache_dir, &history_dir);
    let metrics_addr = daemon.metrics_addr.clone().unwrap();
    let mut client = daemon.client();

    // A request under a client-supplied id: the envelope echoes it.
    let response = client.call(serde_json::json!({
        "id": 1,
        "request_id": "want-this-trace",
        "method": "analyze",
    }));
    assert_eq!(response["ok"], true);
    assert_eq!(
        response["request_id"], "want-this-trace",
        "the envelope echoes the client-supplied request id"
    );

    // A coalescing barrage, every request under a distinct client id.
    const THREADS: usize = 8;
    const ROUNDS: usize = 2;
    let barrier = std::sync::Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let addr = daemon.addr.clone();
            let barrier = &barrier;
            scope.spawn(move || {
                let mut client = Client::connect(&addr);
                for round in 0..ROUNDS {
                    barrier.wait();
                    let response = client.call(serde_json::json!({
                        "id": format!("{t}-{round}"),
                        "request_id": format!("barrage-{t}-{round}"),
                        "method": "analyze",
                    }));
                    assert_eq!(response["ok"], true);
                }
            });
        }
    });

    // Wire `trace`: the captured span tree of the first request.
    let doc = client.ok(serde_json::json!({
        "id": 2,
        "method": "trace",
        "params": {"request_id": "want-this-trace"},
    }));
    assert_eq!(doc["request_id"], "want-this-trace");
    assert_eq!(doc["method"], "analyze");
    assert_eq!(doc["outcome"], "ok");
    assert_eq!(doc["coalesced"], false);
    assert!(
        doc["run_id"].as_str().is_some(),
        "a led analyze records its run id"
    );
    // The tree is balanced: every recorded span appears exactly once.
    let roots = doc["spans"].as_array().unwrap();
    let counted = count_trace_nodes(roots);
    assert_eq!(
        counted,
        doc["span_count"].as_u64().unwrap(),
        "span tree nodes equal span_count"
    );
    assert!(counted >= 2, "at least the request and serve_run spans");
    // The root is the request span and its time fits the recorded latency.
    assert_eq!(roots[0]["name"], "request");
    assert_eq!(roots[0]["attrs"]["request_id"], "want-this-trace");
    assert!(
        roots[0]["dur_us"].as_u64().unwrap() <= doc["latency_us"].as_u64().unwrap(),
        "root span duration fits inside the recorded request latency"
    );

    // Unknown ids are a structured `failed` error, not a hang or panic.
    let missing = client.call(serde_json::json!({
        "id": 3,
        "method": "trace",
        "params": {"request_id": "never-seen"},
    }));
    assert_eq!(missing["ok"], false);
    assert_eq!(missing["error"]["code"], "failed");

    // `/debug/requests` lists the captured summaries; coalesced joiners
    // reference the run they joined, which some leader also reports.
    let (status, body) = http_get(&metrics_addr, "/debug/requests");
    assert!(status.contains("200"), "{status}");
    let listing: Value = serde_json::from_str(&body).unwrap();
    let summaries: Vec<&Value> = listing["recent"]
        .as_array()
        .unwrap()
        .iter()
        .chain(listing["slowest"].as_array().unwrap())
        .collect();
    assert!(
        summaries
            .iter()
            .any(|s| s["request_id"] == "want-this-trace"),
        "/debug/requests lists the traced request: {body}"
    );
    let leader_runs: HashSet<&str> = summaries
        .iter()
        .filter(|s| s["coalesced"] == false)
        .filter_map(|s| s["run_id"].as_str())
        .collect();
    let joiners: Vec<&&Value> = summaries
        .iter()
        .filter(|s| s["coalesced"] == true)
        .collect();
    assert!(
        !joiners.is_empty(),
        "the barrage must exercise coalescing: {body}"
    );
    for joiner in joiners {
        let run = joiner["run_id"].as_str().expect("joiners record a run id");
        assert!(
            leader_runs.contains(run),
            "joiner {} references run {run}, which no leader reports",
            joiner["request_id"]
        );
    }

    // `/debug/trace/<id>` serves the same document the wire method does.
    let (status, body) = http_get(&metrics_addr, "/debug/trace/want-this-trace");
    assert!(status.contains("200"), "{status}");
    assert_eq!(serde_json::from_str::<Value>(&body).unwrap(), doc);
    let (status, _) = http_get(&metrics_addr, "/debug/trace/never-seen");
    assert!(status.contains("404"), "{status}");

    // `ofence trace` CLI round-trip: `--json` is the wire document, the
    // default rendering names the request and shows the span tree.
    let cli_json = run_cli(&["trace", &daemon.addr, "want-this-trace", "--json"]);
    assert_eq!(serde_json::from_str::<Value>(&cli_json).unwrap(), doc);
    let rendered = run_cli(&["trace", &daemon.addr, "want-this-trace"]);
    assert!(
        rendered.starts_with("request want-this-trace (analyze): ok in "),
        "{rendered}"
    );
    assert!(rendered.contains("run: "), "{rendered}");
    assert!(rendered.contains("\n  request "), "{rendered}");
    assert!(rendered.contains("serve_run"), "{rendered}");

    // `/metrics` publishes per-method latency quantiles and the live
    // connection gauge alongside the counters.
    let (status, metrics) = http_get(&metrics_addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    for quantile in ["0.5", "0.95", "0.99"] {
        assert!(
            metrics.contains(&format!(
                "ofence_serve_method_duration_us{{method=\"analyze\",quantile=\"{quantile}\"}}"
            )),
            "missing analyze p{quantile} in metrics:\n{metrics}"
        );
    }
    assert!(
        metrics.contains("ofence_serve_connections_active"),
        "missing connection gauge:\n{metrics}"
    );

    // The request ledger recorded every completed request.
    let (records, skipped) = ofence::perf::load_requests(&history_dir).unwrap();
    assert_eq!(skipped, 0);
    let ids: HashSet<&str> = records.iter().map(|r| r.request_id.as_str()).collect();
    assert!(ids.contains("want-this-trace"));
    assert!(ids.contains("barrage-0-0"));
    let trends = ofence::perf::render_request_trends(&records, records.len());
    assert!(trends.contains("analyze"), "{trends}");

    daemon.shutdown();
}
