//! End-to-end tests of the observability layer: span nesting and
//! per-file attribution through the full pipeline, counter aggregation
//! (and reset) across incremental runs, validity of both export formats,
//! and the pairing explainer on the paper's seqcount fixture.

use ofence::{explain_site_with, AnalysisConfig, Engine, SourceFile};
use ofence_corpus::fixtures;

fn demo_files() -> Vec<SourceFile> {
    vec![
        SourceFile::new(
            "reader.c",
            r#"struct m { int init; int y; };
void reader(struct m *a) { if (!a->init) return; smp_rmb(); f(a->y); }
"#,
        ),
        SourceFile::new(
            "writer.c",
            r#"struct m { int init; int y; };
void writer(struct m *b) { b->y = 1; smp_wmb(); b->init = 1; }
"#,
        ),
    ]
}

#[test]
fn all_pipeline_phases_have_spans() {
    let r = Engine::new(AnalysisConfig::default()).analyze(&demo_files());
    for phase in ["analyze", "parse", "cfg", "extract", "pair", "check"] {
        assert!(
            r.obs.spans_named(phase).next().is_some(),
            "no `{phase}` span in {:?}",
            r.obs.spans.iter().map(|s| &s.name).collect::<Vec<_>>()
        );
    }
    // Per-file phases ran once per file.
    assert_eq!(r.obs.spans_named("parse").count(), 2);
    assert_eq!(r.obs.spans_named("cfg").count(), 2);
    assert_eq!(r.obs.spans_named("extract").count(), 2);
    // Global phases ran once per run.
    assert_eq!(r.obs.spans_named("pair").count(), 1);
    assert_eq!(r.obs.spans_named("analyze").count(), 1);
}

#[test]
fn spans_carry_per_file_attribution() {
    let r = Engine::new(AnalysisConfig::default()).analyze(&demo_files());
    let mut parse_files: Vec<&str> = r
        .obs
        .spans_named("parse")
        .filter_map(|s| s.attr("file"))
        .collect();
    parse_files.sort_unstable();
    assert_eq!(parse_files, ["reader.c", "writer.c"]);
    // cfg-build spans additionally name the function.
    assert!(r
        .obs
        .spans_named("cfg-build")
        .any(|s| s.attr("function") == Some("writer")));
}

#[test]
fn nested_frontend_spans_point_at_parse() {
    let r = Engine::new(AnalysisConfig::default()).analyze(&demo_files());
    let parse_ids: Vec<u64> = r.obs.spans_named("parse").map(|s| s.id).collect();
    for sub in ["lex", "pp", "parse-tokens"] {
        for s in r.obs.spans_named(sub) {
            let parent = s.parent.expect("frontend sub-span has a parent");
            assert!(
                parse_ids.contains(&parent),
                "`{sub}` span nested under {parent}, not a parse span"
            );
        }
    }
}

#[test]
fn counters_reset_between_incremental_runs() {
    let files = demo_files();
    let mut engine = Engine::new(AnalysisConfig::default());
    let r1 = engine.analyze(&files);
    let pairs1 = r1.obs.count_of("pairings_formed");
    assert_eq!(pairs1, 1);
    assert_eq!(r1.obs.count_of("ckit_files_parsed"), 2);

    // Unchanged re-run: everything cached, counters must NOT accumulate.
    let r2 = engine.analyze_incremental(&files);
    assert_eq!(r2.obs.count_of("pairings_formed"), 1, "accumulated!");
    assert_eq!(r2.obs.count_of("ckit_files_parsed"), 0, "cache was hot");
    assert_eq!(r2.obs.count_of("engine_cache_hits"), 2);

    // Touch one file: exactly one re-parse.
    let mut files = files;
    files[0].content = format!("{}\n/* touched */\n", files[0].content).into();
    let r3 = engine.analyze_incremental(&files);
    assert_eq!(r3.obs.count_of("ckit_files_parsed"), 1);
    assert_eq!(r3.obs.count_of("engine_cache_hits"), 1);
}

#[test]
fn decision_counters_match_result() {
    let r = Engine::new(AnalysisConfig::default()).analyze(&demo_files());
    assert_eq!(
        r.obs.count_of("extract_barriers_found") as usize,
        r.sites.len()
    );
    assert_eq!(
        r.obs.count_of("pairings_formed") as usize,
        r.pairing.pairings.len()
    );
    assert_eq!(
        r.obs.count_of("check_deviations_emitted") as usize
            + r.obs.count_of("missing_reports_emitted") as usize,
        r.deviations.len()
    );
    assert!(r.obs.count_of("pair_candidates_considered") > 0);
}

#[test]
fn chrome_trace_parses_and_names_phases() {
    let r = Engine::new(AnalysisConfig::default()).analyze(&demo_files());
    let trace = r.obs.chrome_trace_json();
    let v: serde_json::Value = serde_json::from_str(&trace).expect("trace is valid JSON");
    let events = v["traceEvents"].as_array().expect("traceEvents array");
    let names: Vec<&str> = events.iter().filter_map(|e| e["name"].as_str()).collect();
    for phase in ["analyze", "parse", "cfg", "extract", "pair", "check"] {
        assert!(names.contains(&phase), "trace missing `{phase}`: {names:?}");
    }
    // Per-file attribution survives the export.
    assert!(events.iter().any(|e| e["args"]["file"] == "writer.c"));
}

#[test]
fn prometheus_text_is_well_formed() {
    let r = Engine::new(AnalysisConfig::default()).analyze(&demo_files());
    let text = r.obs.prometheus_text();
    assert!(text.contains("# TYPE ofence_pairings_formed_total counter"));
    assert!(text.contains("ofence_pairings_formed_total 1"));
    assert!(text.contains("ofence_span_duration_seconds{span=\"pair\"}"));
    // Every non-comment line is `name{labels} value` or `name value`.
    for line in text
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let (name, value) = line.rsplit_once(' ').expect("name value");
        assert!(!name.is_empty());
        assert!(value.parse::<f64>().is_ok(), "bad value in `{line}`");
    }
}

#[test]
fn stats_phase_breakdown_covers_pipeline() {
    let r = Engine::new(AnalysisConfig::default()).analyze(&demo_files());
    for phase in ["parse", "extract", "pair", "check"] {
        assert!(
            r.stats.phase_us.contains_key(phase),
            "stats missing phase {phase}: {:?}",
            r.stats.phase_us
        );
    }
    assert!(!r.stats.slowest_files.is_empty());
    let rendered = r.stats.render();
    assert!(
        rendered.contains(&format!(
            "top {} slowest files:",
            r.stats.slowest_files.len()
        )),
        "{rendered}"
    );
    assert!(rendered.contains("pair"), "{rendered}");
}

#[test]
fn explain_seqcount_double_pairing() {
    // The paper's Listing 3: four seqcount barriers over the same two
    // counters merge into one multi-barrier group. The explainer must
    // show the full candidate set with weights for the write-side begin.
    let files = vec![SourceFile::new("xt.c", fixtures::LISTING3)];
    let r = Engine::new(AnalysisConfig::default()).analyze(&files);
    assert_eq!(r.sites.len(), 4);
    let writer = r
        .sites
        .iter()
        .find(|s| s.site.function == "do_add_counters" && s.is_write_barrier())
        .expect("write-side seqcount barrier");
    let e = explain_site_with(&r.sites, &r.pairing, &AnalysisConfig::default(), writer.id)
        .expect("explanation");
    // All three other barriers are candidates sharing the counters.
    assert_eq!(e.candidates.len(), 3, "{e:?}");
    assert!(e.candidates.iter().all(|c| !c.shared_objects.is_empty()));
    match &e.outcome {
        ofence::explain::Outcome::Paired { members, multi, .. } => {
            assert!(*multi, "seqcount group is a multi-pairing");
            assert_eq!(members.len(), 4);
        }
        other => panic!("expected Paired, got {other:?}"),
    }
    let text = e.render();
    assert!(text.contains("candidates (3 evaluated"), "{text}");
    assert!(text.contains("weight"), "{text}");
    assert!(text.contains("multi-barrier group"), "{text}");
}

#[test]
fn json_schema_exposes_observability() {
    let r = Engine::new(AnalysisConfig::default()).analyze(&demo_files());
    let v = r.to_json();
    assert_eq!(v["schema_version"], ofence::json::SCHEMA_VERSION);
    assert!(v["observability"]["counters"]["pairings_formed"] == 1);
    assert!(v["observability"]["phase_us"]["pair"].as_u64().is_some());
}
