//! Cross-crate pipeline tests: each stage of
//! parse → CFG → extraction → pairing → checking → patching feeds the
//! next correctly, including across files.

use ofence::{AnalysisConfig, BarrierId, Engine, SourceFile, UnpairedReason};

const WRITER: &str = r#"
struct msg {
	int len;
	int seq;
	int ready;
};

void msg_publish(struct msg *m, int len)
{
	m->len = len;
	m->seq = len + 1;
	smp_wmb();
	m->ready = 1;
}
"#;

const READER: &str = r#"
struct msg {
	int len;
	int seq;
	int ready;
};

int msg_consume(struct msg *m)
{
	if (!m->ready)
		return 0;
	smp_rmb();
	return m->len + m->seq;
}
"#;

#[test]
fn stage_by_stage() {
    // Stage 1: the front end.
    let parsed = ckit::parse_string("writer.c", WRITER).expect("parses");
    assert!(parsed.errors.is_empty());
    assert_eq!(parsed.unit.functions().count(), 1);
    assert_eq!(parsed.unit.structs().count(), 1);

    // Stage 2: CFG + symbols.
    let lowered = cfgir::LoweredFile::lower(&parsed);
    assert_eq!(lowered.cfgs.len(), 1);
    assert!(lowered.symbols.structs.contains_key("msg"));

    // Stage 3: barrier sites and accesses.
    let fa = ofence::sites::analyze_file(0, &parsed, &AnalysisConfig::default());
    assert_eq!(fa.sites.len(), 1);
    let site = &fa.sites[0];
    assert_eq!(site.kind, kmodel::BarrierKind::Wmb);
    let objs: Vec<String> = site.objects().iter().map(|(o, _)| o.to_string()).collect();
    assert!(objs.contains(&"(struct msg, len)".to_string()));
    assert!(objs.contains(&"(struct msg, ready)".to_string()));
}

#[test]
fn cross_file_pairing_and_checks() {
    let files = vec![
        SourceFile::new("net/writer.c", WRITER),
        SourceFile::new("net/reader.c", READER),
    ];
    let r = Engine::new(AnalysisConfig::default()).analyze(&files);
    assert_eq!(r.sites.len(), 2);
    assert_eq!(r.pairing.pairings.len(), 1);
    // The pairing spans both files.
    let p = &r.pairing.pairings[0];
    let file_set: std::collections::HashSet<usize> =
        p.members.iter().map(|&m| r.site(m).site.file).collect();
    assert_eq!(file_set.len(), 2);
    assert!(r.deviations.is_empty(), "{:?}", r.deviations);
}

#[test]
fn editing_one_file_changes_only_its_sites() {
    let files = vec![
        SourceFile::new("a.c", WRITER),
        SourceFile::new("b.c", READER),
    ];
    let mut engine = Engine::new(AnalysisConfig::default());
    let r1 = engine.analyze(&files);
    let writer_site_span = r1
        .sites
        .iter()
        .find(|s| s.site.function == "msg_publish")
        .unwrap()
        .site
        .span;

    // Add an unrelated function to the reader file.
    let mut files2 = files.clone();
    files2[1].content = format!(
        "{}\nint unrelated(void) {{ return 3; }}\n",
        files2[1].content
    )
    .into();
    let r2 = engine.analyze_incremental(&files2);
    // Cached writer analysis is reused: same span, same function.
    let writer_site2 = r2
        .sites
        .iter()
        .find(|s| s.site.function == "msg_publish")
        .unwrap();
    assert_eq!(writer_site2.site.span, writer_site_span);
    assert_eq!(r2.pairing.pairings.len(), 1);
}

#[test]
fn breaking_the_reader_unpairs_the_writer() {
    let broken_reader = READER.replace("smp_rmb();", "/* lost barrier */;");
    let files = vec![
        SourceFile::new("a.c", WRITER),
        SourceFile::new("b.c", broken_reader.as_str()),
    ];
    let r = Engine::new(AnalysisConfig::default()).analyze(&files);
    assert_eq!(r.sites.len(), 1);
    assert!(r.pairing.pairings.is_empty());
    assert_eq!(
        r.pairing.unpaired,
        vec![(BarrierId(0), UnpairedReason::NoMatch)]
    );
}

#[test]
fn barrier_ids_stable_across_identical_runs() {
    let files = vec![
        SourceFile::new("a.c", WRITER),
        SourceFile::new("b.c", READER),
    ];
    let r1 = Engine::new(AnalysisConfig::default()).analyze(&files);
    let r2 = Engine::new(AnalysisConfig::default()).analyze(&files);
    for (s1, s2) in r1.sites.iter().zip(&r2.sites) {
        assert_eq!(s1.id, s2.id);
        assert_eq!(s1.site.function, s2.site.function);
    }
}

#[test]
fn report_stats_consistent_with_results() {
    let files = vec![
        SourceFile::new("a.c", WRITER),
        SourceFile::new("b.c", READER),
    ];
    let r = Engine::new(AnalysisConfig::default()).analyze(&files);
    assert_eq!(r.stats.barriers_total, r.sites.len());
    assert_eq!(r.stats.pairings, r.pairing.pairings.len());
    assert_eq!(r.stats.deviations_total, r.deviations.len());
    assert_eq!(r.stats.files_total, 2);
    let paired: usize = r.pairing.pairings.iter().map(|p| p.members.len()).sum();
    assert_eq!(r.stats.paired_barriers, paired);
    assert!((r.stats.coverage - paired as f64 / r.sites.len() as f64).abs() < 1e-9);
}

#[test]
fn kernel_style_code_survives_front_end() {
    // Exercise kernel-isms end to end: macros, attributes, typedefs,
    // gotos, statement expressions.
    let src = r#"
#include <linux/kernel.h>
#define READY_BIT 0x1
#define is_ready(m) ({ int __r = (m)->flags & READY_BIT; __r; })

typedef unsigned long long u64_t;

struct __attribute__((packed)) frame {
	u64_t payload;
	unsigned int flags;
};

static __always_inline void frame_publish(struct frame *f, u64_t data)
{
	f->payload = data;
	smp_wmb();
	f->flags |= READY_BIT;
}

int frame_poll(struct frame *f)
{
	if (!is_ready(f))
		goto out;
	smp_rmb();
	return f->payload != 0;
out:
	return 0;
}
"#;
    let r = Engine::new(AnalysisConfig::default()).analyze(&[SourceFile::new("frame.c", src)]);
    assert_eq!(r.stats.parse_errors, 0);
    assert_eq!(r.sites.len(), 2);
    assert_eq!(
        r.pairing.pairings.len(),
        1,
        "macro-expanded flag check must still pair: {:?}",
        r.pairing
    );
}
