//! Corpus-level fingerprint stability: deviation fingerprints must
//! survive the edits a developer actually makes between two analysis
//! runs — line shifts, unrelated renames, reordered siblings — while any
//! genuinely new deviation, and only it, classifies as new.

use ofence::{classify, AnalysisConfig, Engine, FindingRecord, SourceFile};
use ofence_corpus::{
    generate, inject_deviation, prepend_comment_lines, BugPlan, Corpus, CorpusSpec,
};

fn buggy_spec(seed: u64) -> CorpusSpec {
    let mut spec = CorpusSpec::small(seed);
    spec.files = 12;
    spec.patterns_per_file = 2;
    spec.bugs = BugPlan {
        misplaced: 3,
        repeated_read: 2,
        wrong_type: 1,
        unneeded: 2,
        missing_barrier: 1,
    };
    spec
}

fn records(corpus: &Corpus) -> Vec<FindingRecord> {
    let sources: Vec<SourceFile> = corpus
        .files
        .iter()
        .map(|f| SourceFile::new(f.name.clone(), f.content.clone()))
        .collect();
    let result = Engine::new(AnalysisConfig::default()).analyze(&sources);
    ofence::finding_records(&result.deviations, &result.sites, &result.files)
}

#[test]
fn comment_prepend_changes_no_fingerprint() {
    let base = generate(&buggy_spec(101));
    let before = records(&base);
    assert!(!before.is_empty(), "corpus produced no findings");

    let mut shifted = base.clone();
    prepend_comment_lines(&mut shifted, 100);
    let after = records(&shifted);

    let delta = classify(&before, &after);
    assert!(
        delta.is_clean(),
        "line shift changed fingerprints: {}",
        delta.render()
    );
    assert_eq!(delta.unchanged.len(), before.len());
    // Lines moved, fingerprints did not.
    let old_line: std::collections::HashMap<&str, u32> = before
        .iter()
        .map(|r| (r.fingerprint.as_str(), r.line))
        .collect();
    for b in &delta.unchanged {
        assert_eq!(b.fingerprint.len(), 16);
        let a = old_line[b.fingerprint.as_str()];
        assert_eq!(b.line, a + 100, "{}", b.render_line());
    }
}

#[test]
fn renaming_unrelated_functions_changes_no_fingerprint() {
    let base = generate(&buggy_spec(102));
    let before = records(&base);
    assert!(!before.is_empty());

    // Rename every barrier-free noise helper (`pat{n}_helper{i}`); the
    // flagged protocols never touch them.
    let mut renamed = base.clone();
    let mut hits = 0;
    for f in &mut renamed.files {
        hits += f.content.matches("_helper").count();
        f.content = f.content.replace("_helper", "_rewired");
    }
    assert!(hits > 0, "corpus has no noise helpers to rename");
    let after = records(&renamed);

    let delta = classify(&before, &after);
    assert!(
        delta.is_clean(),
        "unrelated rename changed fingerprints: {}",
        delta.render()
    );
}

#[test]
fn injected_deviation_is_exactly_one_new_finding() {
    let base = generate(&buggy_spec(103));
    let before = records(&base);

    // A fresh bug plus a 20-line shift of everything else: the diff must
    // be exactly the injected deviation, with zero spurious churn.
    let mut edited = base.clone();
    let bug = inject_deviation(&mut edited, 7);
    prepend_comment_lines(&mut edited, 20);
    let after = records(&edited);

    let delta = classify(&before, &after);
    assert_eq!(delta.fixed.len(), 0, "{}", delta.render());
    assert_eq!(delta.new.len(), 1, "{}", delta.render());
    assert_eq!(delta.unchanged.len(), before.len());
    let fresh = &delta.new[0];
    assert_eq!(fresh.function, bug.function);
    assert_eq!(fresh.file, bug.file);
    assert_eq!(fresh.class, "misplaced memory access");
}

#[test]
fn ofence_ignore_classifies_as_fixed() {
    let base = generate(&buggy_spec(104));
    let before = records(&base);
    let target = before.first().expect("corpus produced findings").clone();

    // Insert a suppression comment on its own line right above the
    // flagged statement: the finding disappears, everything else —
    // shifted one line down in that file — keeps its fingerprint.
    let mut suppressed = base.clone();
    let f = suppressed
        .files
        .iter_mut()
        .find(|f| f.name == target.file)
        .unwrap();
    let mut lines: Vec<&str> = f.content.lines().collect();
    lines.insert(target.line as usize - 1, "\t/* ofence-ignore */");
    f.content = lines.join("\n");
    f.content.push('\n');
    let after = records(&suppressed);

    let delta = classify(&before, &after);
    assert_eq!(delta.new.len(), 0, "{}", delta.render());
    assert_eq!(delta.fixed.len(), 1, "{}", delta.render());
    assert_eq!(delta.fixed[0].fingerprint, target.fingerprint);
}
