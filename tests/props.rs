//! Property-based tests over the whole stack: random corpus shapes, bug
//! plans, and seeds must uphold the analyzer's invariants.

use ofence::{AnalysisConfig, Engine, SourceFile};
use ofence_corpus::{generate, BugPlan, CorpusSpec};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = CorpusSpec> {
    (
        any::<u64>(),
        1usize..6,
        1usize..4,
        0usize..3,
        0usize..3,
        0usize..2,
        0.0f64..0.6,
        (0usize..3, 0usize..3, 0usize..2, 0usize..3, 0usize..2),
        0usize..2,
        0usize..2,
    )
        .prop_map(
            |(
                seed,
                files,
                ppf,
                noise,
                decoys,
                lone,
                split,
                (misplaced, repeated, wrong, unneeded, missing),
                reread_decoys,
                unfenced_decoys,
            )| CorpusSpec {
                seed,
                files,
                patterns_per_file: ppf,
                noise_per_file: noise,
                decoy_pairs: decoys,
                far_decoy_pairs: 0,
                lone_per_file: lone,
                split_fraction: split,
                reread_decoys,
                unfenced_decoys,
                filler_files: 0,
                cross_file_chains: 0,
                chain_depth: 2,
                chain_bugs: 0,
                bugs: BugPlan {
                    misplaced,
                    repeated_read: repeated,
                    wrong_type: wrong,
                    unneeded,
                    missing_barrier: missing,
                },
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated corpus parses cleanly with the ckit front end.
    #[test]
    fn generated_corpora_always_parse(spec in arb_spec()) {
        let corpus = generate(&spec);
        for f in &corpus.files {
            let parsed = ckit::parse_string(&f.name, &f.content).expect("front end ok");
            prop_assert!(parsed.errors.is_empty(), "{}: {:?}", f.name, parsed.errors);
        }
    }

    /// The engine never panics, produces dense site ids, and each barrier
    /// belongs to at most one pairing.
    #[test]
    fn analysis_invariants(spec in arb_spec()) {
        let corpus = generate(&spec);
        let files: Vec<SourceFile> = corpus
            .files
            .iter()
            .map(|f| SourceFile::new(f.name.clone(), f.content.clone()))
            .collect();
        let r = Engine::new(AnalysisConfig::default()).analyze(&files);
        for (i, s) in r.sites.iter().enumerate() {
            prop_assert_eq!(s.id.0 as usize, i);
        }
        let mut seen = std::collections::HashSet::new();
        for p in &r.pairing.pairings {
            prop_assert!(p.members.len() >= 2);
            prop_assert!(p.members.contains(&p.writer));
            prop_assert!(p.objects.len() >= 2);
            for m in &p.members {
                prop_assert!(seen.insert(*m), "barrier {m} in two pairings");
            }
        }
        // Unpaired + paired partitions the sites.
        let unpaired: std::collections::HashSet<_> =
            r.pairing.unpaired.iter().map(|(id, _)| *id).collect();
        for s in &r.sites {
            prop_assert!(seen.contains(&s.id) != unpaired.contains(&s.id));
        }
        // Every deviation refers to an existing site and file.
        for d in &r.deviations {
            prop_assert!(d.site.file < r.files.len());
            prop_assert!((d.barrier.0 as usize) < r.sites.len());
        }
    }

    /// Pretty-printing a generated file and reparsing reaches a fixpoint
    /// after one round (print ∘ parse is a projection).
    #[test]
    fn pretty_print_projection(spec in arb_spec()) {
        let corpus = generate(&spec);
        for f in corpus.files.iter().take(2) {
            let parsed = ckit::parse_string(&f.name, &f.content).expect("parse");
            prop_assume!(parsed.errors.is_empty());
            let once = ckit::pretty::print_unit(&parsed.unit);
            let reparsed = ckit::parse_string(&f.name, &once).expect("reparse");
            prop_assert!(reparsed.errors.is_empty(), "{}\n{once}", f.name);
            let twice = ckit::pretty::print_unit(&reparsed.unit);
            prop_assert_eq!(once, twice);
        }
    }

    /// All patches apply (edits never overlap) and leave parseable C.
    #[test]
    fn patches_always_apply_cleanly(spec in arb_spec()) {
        let corpus = generate(&spec);
        let files: Vec<SourceFile> = corpus
            .files
            .iter()
            .map(|f| SourceFile::new(f.name.clone(), f.content.clone()))
            .collect();
        let r = Engine::new(AnalysisConfig::default()).analyze(&files);
        for d in &r.deviations {
            let fa = &r.files[d.site.file];
            if let Some(patch) = ofence::patch::synthesize(d, fa) {
                let fixed = ofence::apply_edits(&fa.source, &patch.edits);
                prop_assert!(fixed.is_some(), "overlapping edits: {:?}", patch.edits);
                let reparsed = ckit::parse_string(&fa.name, &fixed.unwrap()).expect("parse");
                prop_assert!(
                    reparsed.errors.is_empty(),
                    "patch broke {}: {:?}",
                    fa.name,
                    reparsed.errors
                );
            }
        }
    }

    /// Larger read windows only add accesses; they never remove them
    /// (distance monotonicity).
    #[test]
    fn window_monotonicity(seed in any::<u64>()) {
        let spec = CorpusSpec::small(seed);
        let corpus = generate(&spec);
        let files: Vec<SourceFile> = corpus
            .files
            .iter()
            .map(|f| SourceFile::new(f.name.clone(), f.content.clone()))
            .collect();
        let narrow = Engine::new(AnalysisConfig {
            read_window: 10,
            ..Default::default()
        })
        .analyze(&files);
        let wide = Engine::new(AnalysisConfig {
            read_window: 50,
            ..Default::default()
        })
        .analyze(&files);
        prop_assert_eq!(narrow.sites.len(), wide.sites.len());
        for (n, w) in narrow.sites.iter().zip(&wide.sites) {
            prop_assert!(w.accesses.len() >= n.accesses.len());
        }
    }

    /// Every injected missing-barrier bug is detected by the dataflow
    /// detector, and the synthesized fence-insertion patch removes the
    /// diagnostic on re-analysis (machine verification).
    #[test]
    fn missing_barrier_bugs_detected_and_patch_verified(
        seed in any::<u64>(),
        nbugs in 1usize..4,
    ) {
        let spec = CorpusSpec {
            seed,
            files: 12,
            patterns_per_file: 2,
            noise_per_file: 1,
            decoy_pairs: 0,
            far_decoy_pairs: 0,
            lone_per_file: 0,
            // Keep both protocol sides in one file so single-file
            // re-analysis can observe the repaired pairing.
            split_fraction: 0.0,
            reread_decoys: 0,
            unfenced_decoys: 0,
            filler_files: 0,
            cross_file_chains: 0,
            chain_depth: 2,
            chain_bugs: 0,
            bugs: BugPlan {
                missing_barrier: nbugs,
                ..BugPlan::none()
            },
        };
        let corpus = generate(&spec);
        prop_assert_eq!(corpus.manifest.bugs.len(), nbugs);
        let files: Vec<SourceFile> = corpus
            .files
            .iter()
            .map(|f| SourceFile::new(f.name.clone(), f.content.clone()))
            .collect();
        let config = AnalysisConfig {
            detect_missing: true,
            ..Default::default()
        };
        let r = Engine::new(config.clone()).analyze(&files);
        for bug in &corpus.manifest.bugs {
            let dev = r
                .deviations
                .iter()
                .find(|d| {
                    matches!(d.kind, ofence::DeviationKind::MissingBarrier { .. })
                        && d.site.function == bug.function
                });
            prop_assert!(dev.is_some(), "missed {} in {}", bug.function, bug.file);
            let dev = dev.unwrap();
            let fa = &r.files[dev.site.file];
            let patch = ofence::patch::synthesize(dev, fa);
            prop_assert!(patch.is_some(), "no patch for {}", bug.function);
            let fixed = ofence::apply_edits(&fa.source, &patch.unwrap().edits);
            prop_assert!(fixed.is_some());
            let r2 = Engine::new(config.clone())
                .analyze(&[SourceFile::new(fa.name.clone(), fixed.unwrap())]);
            prop_assert!(
                !r2.deviations.iter().any(|d2| {
                    matches!(d2.kind, ofence::DeviationKind::MissingBarrier { .. })
                        && d2.site.function == bug.function
                }),
                "patch did not eliminate the missing-barrier finding in {}",
                bug.function
            );
        }
    }

    /// The incremental engine agrees with a fresh engine on any edit —
    /// not just in counts: the same sites, the same pairings, the same
    /// deviations and annotations, bit for bit.
    #[test]
    fn incremental_equals_fresh(seed in any::<u64>(), touch in 0usize..8) {
        let corpus = generate(&CorpusSpec::small(seed));
        let mut files: Vec<SourceFile> = corpus
            .files
            .iter()
            .map(|f| SourceFile::new(f.name.clone(), f.content.clone()))
            .collect();
        let mut engine = Engine::new(AnalysisConfig::default());
        let _ = engine.analyze(&files);
        let idx = touch % files.len();
        files[idx].content =
            format!("{}\nint prop_added(void) {{ return 1; }}\n", files[idx].content).into();
        let incremental = engine.analyze_incremental(&files);
        let fresh = Engine::new(AnalysisConfig::default()).analyze(&files);
        prop_assert_eq!(result_fingerprint(&incremental), result_fingerprint(&fresh));
    }

    /// Same equivalence across a **disk** round-trip: save the cache,
    /// edit one file, load the cache into a brand-new engine (a new
    /// process image), and the warm run must match a cold fresh run
    /// exactly — while actually hitting the cache for every unchanged
    /// file.
    #[test]
    fn disk_roundtrip_equals_fresh(spec in arb_spec(), edit_seed in any::<u64>()) {
        let mut corpus = generate(&spec);
        let files: Vec<SourceFile> = corpus
            .files
            .iter()
            .map(|f| SourceFile::new(f.name.clone(), f.content.clone()))
            .collect();
        let dir = std::env::temp_dir().join(format!(
            "ofence-prop-cache-{}-{}-{}",
            std::process::id(),
            spec.seed,
            edit_seed
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let mut cold_engine = Engine::new(AnalysisConfig::default());
        let _ = cold_engine.analyze(&files);
        cold_engine.save_disk_cache(&dir).expect("save cache");

        let edited = ofence_corpus::inject_edit(&mut corpus, edit_seed);
        let files2: Vec<SourceFile> = corpus
            .files
            .iter()
            .map(|f| SourceFile::new(f.name.clone(), f.content.clone()))
            .collect();

        let mut warm_engine = Engine::new(AnalysisConfig::default());
        let outcome = warm_engine.load_disk_cache(&dir);
        prop_assert!(
            matches!(outcome, ofence::LoadOutcome::Loaded { entries } if entries == files2.len()),
            "cache load failed: {outcome:?}"
        );
        let warm = warm_engine.analyze(&files2);
        prop_assert_eq!(
            warm.obs.count_of("engine_cache_hits") as usize,
            files2.len() - 1,
            "every file except {} must hit",
            edited
        );

        let fresh = Engine::new(AnalysisConfig::default()).analyze(&files2);
        prop_assert_eq!(result_fingerprint(&warm), result_fingerprint(&fresh));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Everything semantically observable about a run, in one comparable
/// string: sites (with their extracted accesses), pairings, unpaired
/// reasons, deviations, and annotations. Timing and per-file internals
/// (which legitimately differ between cached and fresh runs) stay out.
fn result_fingerprint(r: &ofence::AnalysisResult) -> String {
    format!(
        "{:?}\n{:?}\n{:?}\n{:?}\n{:?}",
        r.sites, r.pairing.pairings, r.pairing.unpaired, r.deviations, r.annotations
    )
}
