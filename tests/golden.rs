//! Golden-file snapshot tests for the machine-readable surfaces:
//! `analyze --json` (schema v2) and the `explain` rendering, pinned on
//! the paper's own fixtures.
//!
//! Run-dependent fields (`elapsed_ms`, `phase_us`, `slowest_files`,
//! `run_id`) are scrubbed before comparison; everything else — site extraction,
//! pairings, deviations, patches, annotations, counters — must match the
//! checked-in snapshot byte for byte. To regenerate after an intentional
//! output change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden
//! ```

use ofence::{AnalysisConfig, Engine, SourceFile};
use ofence_corpus::fixtures;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var("UPDATE_GOLDEN").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "output drifted from {name}; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1"
    );
}

/// Replace run-dependent values anywhere in the tree so snapshots only
/// pin semantic output.
fn scrub(v: serde_json::Value) -> serde_json::Value {
    use serde_json::Value;
    match v {
        // Worker counters are dropped (not value-scrubbed) because their
        // *presence* is run-dependent: a zero-valued counter (e.g. no
        // worker idle time on a tiny corpus) is never created at all.
        Value::Object(m) => Value::Object(
            m.into_iter()
                .filter(|(k, _)| {
                    !matches!(
                        k.as_str(),
                        "workers" | "worker_busy_us" | "worker_idle_us" | "worker_utilization"
                    )
                })
                .map(|(k, v)| {
                    let v = if matches!(
                        k.as_str(),
                        "elapsed_ms" | "phase_us" | "slowest_files" | "run_id"
                    ) {
                        Value::String("<scrubbed>".to_string())
                    } else {
                        scrub(v)
                    };
                    (k, v)
                })
                .collect(),
        ),
        Value::Array(a) => Value::Array(a.into_iter().map(scrub).collect()),
        other => other,
    }
}

fn analyze(name: &str, source: &str) -> ofence::AnalysisResult {
    Engine::new(AnalysisConfig::default()).analyze(&[SourceFile::new(name, source)])
}

fn json_snapshot(result: &ofence::AnalysisResult) -> String {
    let mut text = serde_json::to_string_pretty(&scrub(result.to_json())).unwrap();
    text.push('\n');
    text
}

#[test]
fn analyze_json_listing1_matches_golden() {
    let r = analyze("listing1.c", fixtures::LISTING1);
    check_golden("analyze_listing1.json", &json_snapshot(&r));
}

#[test]
fn analyze_json_patch1_matches_golden() {
    let r = analyze("xprt.c", fixtures::PATCH1_BUGGY);
    check_golden("analyze_patch1.json", &json_snapshot(&r));
}

#[test]
fn explain_patch1_matches_golden() {
    let r = analyze("xprt.c", fixtures::PATCH1_BUGGY);
    assert!(!r.sites.is_empty());
    // Explain every barrier in the fixture, in site order, so the
    // snapshot pins the whole decision replay surface.
    let mut out = String::new();
    for site in &r.sites {
        let e =
            ofence::explain_site_with(&r.sites, &r.pairing, &AnalysisConfig::default(), site.id)
                .expect("site id from this result");
        out.push_str(&e.render());
        out.push('\n');
    }
    check_golden("explain_patch1.txt", &out);
}

#[test]
fn explain_json_listing1_matches_golden() {
    let r = analyze("listing1.c", fixtures::LISTING1);
    let site = r.sites.first().expect("listing1 has barriers");
    let e = ofence::explain_site_with(&r.sites, &r.pairing, &AnalysisConfig::default(), site.id)
        .expect("site id from this result");
    let mut text = serde_json::to_string_pretty(&serde_json::to_value(&e)).unwrap();
    text.push('\n');
    check_golden("explain_listing1.json", &text);
}
