//! Inter-procedural analysis, end to end: cross-file chain corpora,
//! composition-vs-inlining equivalence, recursion fixtures, depth-0
//! conservatism, and cache invalidation under `--ipa-depth`.

use ofence::{AnalysisConfig, Engine, SourceFile};
use ofence_corpus::{generate, BugKind, Corpus, CorpusSpec, PatternKind};
use proptest::prelude::*;

fn sources(corpus: &Corpus) -> Vec<SourceFile> {
    corpus
        .files
        .iter()
        .map(|f| SourceFile::new(f.name.clone(), f.content.clone()))
        .collect()
}

fn depth_config(depth: u32) -> AnalysisConfig {
    AnalysisConfig {
        ipa_depth: depth,
        ..Default::default()
    }
}

fn chain_spec(seed: u64, chains: usize, depth: usize, bugs: usize) -> CorpusSpec {
    let mut spec = CorpusSpec::small(seed);
    spec.files = 12;
    spec.cross_file_chains = chains;
    spec.chain_depth = depth;
    spec.chain_bugs = bugs;
    spec
}

/// Function sets of the reported pairings, sorted for comparison.
fn pairing_functions(result: &ofence::AnalysisResult) -> Vec<Vec<String>> {
    let mut sets: Vec<Vec<String>> = result
        .pairing
        .pairings
        .iter()
        .map(|p| {
            let mut fns: Vec<String> = p
                .members
                .iter()
                .map(|&m| result.site(m).site.function.clone())
                .collect();
            fns.sort();
            fns.dedup();
            fns
        })
        .collect();
    sets.sort();
    sets
}

#[test]
fn cross_file_chains_pair_only_at_sufficient_depth() {
    let corpus = generate(&chain_spec(51, 5, 2, 0));
    let files = sources(&corpus);
    let chains: Vec<_> = corpus
        .manifest
        .expected_pairings
        .iter()
        .filter(|p| p.kind == PatternKind::CrossFileChain)
        .collect();
    assert_eq!(chains.len(), 5);

    // Depth 0: the chain barriers see one shared object each — invisible.
    let shallow = Engine::new(depth_config(0)).analyze(&files);
    let shallow_fns = pairing_functions(&shallow);
    for exp in &chains {
        assert!(
            !shallow_fns
                .iter()
                .any(|fns| exp.functions.iter().all(|f| fns.contains(f))),
            "chain {:?} paired at depth 0",
            exp.functions
        );
    }

    // Depth 1 is one call level short of the accesses.
    let mid = Engine::new(depth_config(1)).analyze(&files);
    let mid_fns = pairing_functions(&mid);
    for exp in &chains {
        assert!(
            !mid_fns
                .iter()
                .any(|fns| exp.functions.iter().all(|f| fns.contains(f))),
            "chain {:?} paired at depth 1",
            exp.functions
        );
    }

    // Depth 2 (== chain depth): ≥90% recall required, and here all 5.
    let deep = Engine::new(depth_config(2)).analyze(&files);
    let deep_fns = pairing_functions(&deep);
    let found = chains
        .iter()
        .filter(|exp| {
            deep_fns
                .iter()
                .any(|fns| exp.functions.iter().all(|f| fns.contains(f)))
        })
        .count();
    assert!(
        found as f64 >= 0.9 * chains.len() as f64,
        "cross-file recall {found}/{} at depth 2",
        chains.len()
    );
    // Provenance: the assisting pairings are counted.
    assert!(
        deep.obs.count_of("pair_ipa_assisted") >= found as u64,
        "pair_ipa_assisted={}",
        deep.obs.count_of("pair_ipa_assisted")
    );
}

#[test]
fn deep_callee_misplaced_read_found_only_interprocedurally() {
    let corpus = generate(&chain_spec(52, 4, 2, 2));
    let files = sources(&corpus);
    let injected: Vec<_> = corpus
        .manifest
        .bugs
        .iter()
        .filter(|b| b.kind == BugKind::Misplaced && b.function.starts_with("chain"))
        .collect();
    assert_eq!(injected.len(), 2);

    let matches = |result: &ofence::AnalysisResult| {
        injected
            .iter()
            .filter(|b| {
                result.deviations.iter().any(|d| {
                    d.site.function == b.function
                        && matches!(d.kind, ofence::DeviationKind::Misplaced { .. })
                        && d.object.as_ref().is_some_and(|o| o.field == b.field)
                })
            })
            .count()
    };

    let shallow = Engine::new(depth_config(0)).analyze(&files);
    assert_eq!(matches(&shallow), 0, "deep bug visible at depth 0");

    let deep = Engine::new(depth_config(2)).analyze(&files);
    assert_eq!(matches(&deep), 2, "{:#?}", deep.deviations);

    // The finding's provenance names the peek chain.
    let records = ofence::fingerprint::finding_records(&deep.deviations, &deep.sites, &deep.files);
    let with_chain = records
        .iter()
        .filter(|r| r.rule == "misplaced-access" && !r.via_calls.is_empty())
        .count();
    assert!(with_chain >= 1, "no misplaced finding carries via_calls");
}

#[test]
fn depth_zero_reports_identical_to_pre_ipa_pipeline() {
    // On a corpus with no chains, every depth-0 report must be exactly
    // the default pipeline's (the IPA pass is a strict no-op when off).
    let corpus = generate(&CorpusSpec::small(53));
    let files = sources(&corpus);
    let default = Engine::new(AnalysisConfig::default()).analyze(&files);
    let depth0 = Engine::new(depth_config(0)).analyze(&files);
    // Drop run-specific keys (run id, timings) before comparing.
    let scrub = |v: serde_json::Value| -> serde_json::Value {
        let serde_json::Value::Object(m) = v else {
            panic!("report is not an object")
        };
        serde_json::Value::Object(
            m.into_iter()
                .filter(|(k, _)| k != "run_id" && k != "stats" && k != "observability")
                .collect(),
        )
    };
    let a = scrub(default.to_json());
    let b = scrub(depth0.to_json());
    assert_eq!(
        serde_json::to_string_pretty(&a).unwrap(),
        serde_json::to_string_pretty(&b).unwrap()
    );
}

#[test]
fn existing_fixtures_gain_no_findings_at_depth_two() {
    // 0 new false positives on the paper fixtures when IPA is on.
    use ofence_corpus::fixtures as fx;
    let fixtures: [(&str, &str); 11] = [
        ("listing1.c", fx::LISTING1),
        ("listing2.c", fx::LISTING2),
        ("listing3.c", fx::LISTING3),
        ("listing4.c", fx::LISTING4_BNX2X),
        ("patch1_buggy.c", fx::PATCH1_BUGGY),
        ("patch1_fixed.c", fx::PATCH1_FIXED),
        ("patch3_buggy.c", fx::PATCH3_BUGGY),
        ("patch4_buggy.c", fx::PATCH4_BUGGY),
        ("patch5.c", fx::PATCH5_UNANNOTATED),
        ("perf_rb_missing.c", fx::PERF_RB_MISSING_RMB),
        ("perf_rb_fixed.c", fx::PERF_RB_FIXED),
    ];
    for (name, src) in fixtures {
        let files = vec![SourceFile::new(name, src)];
        let base = Engine::new(AnalysisConfig::default()).analyze(&files);
        let deep = Engine::new(depth_config(2)).analyze(&files);
        let fp = |r: &ofence::AnalysisResult| {
            let mut v: Vec<String> = r
                .deviations
                .iter()
                .map(|d| format!("{:?}@{}:{:?}", d.kind, d.site.function, d.object))
                .collect();
            v.sort();
            v
        };
        assert_eq!(fp(&base), fp(&deep), "fixture {name} changed at depth 2");
    }
}

/// Inline a chain program by hand: every chain callee's accesses pasted
/// into its caller, matching what depth-N composition should see.
fn chain_inlined_source(n: usize, buggy: bool) -> String {
    let st = format!("chain{n}_obj");
    let peek = if buggy { "\tpat_sink(r->d0);\n" } else { "" };
    let take = if buggy {
        "\tpat_sink(r->d1);\n"
    } else {
        "\tpat_sink(r->d0);\n\tpat_sink(r->d1);\n"
    };
    format!(
        "struct {st} {{\n\tint d0;\n\tint d1;\n\tint ready;\n}};\n\
         void chain{n}_publish(struct {st} *w, int v)\n{{\n\tw->d0 = v;\n\tw->d1 = v + 1;\n\tsmp_wmb();\n\tw->ready = 1;\n}}\n\
         void chain{n}_consume(struct {st} *r)\n{{\n\tif (!r->ready)\n\t\treturn;\n{peek}\tsmp_rmb();\n{take}}}\n"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    /// Depth-N summary composition finds the same protocols as direct
    /// analysis of the hand-inlined program: identical pairing function
    /// membership (modulo the helper names that only exist in the
    /// chain form) and identical deviation kinds per function.
    #[test]
    fn composition_equivalent_to_inlining(
        seed in 0u64..500,
        chains in 1usize..4,
        depth in 1usize..4,
        bugs in 0usize..2,
    ) {
        let bugs = bugs.min(chains);
        let corpus = generate(&chain_spec(seed, chains, depth, bugs));
        let composed = Engine::new(depth_config(depth as u32)).analyze(&sources(&corpus));

        // The equivalent inlined program: same callers, no helpers.
        let inlined_files: Vec<SourceFile> = (0..chains)
            .map(|c| {
                let id = 90_000 + c;
                SourceFile::new(
                    format!("inline/chain{c}.c"),
                    chain_inlined_source(id, c < bugs),
                )
            })
            .collect();
        let inlined = Engine::new(AnalysisConfig::default()).analyze(&inlined_files);

        // Every chain pairing of the inlined program appears in the
        // composed run (the composed run additionally holds the base
        // corpus's own pairings).
        let composed_fns = pairing_functions(&composed);
        for fns in pairing_functions(&inlined) {
            prop_assert!(
                composed_fns.iter().any(|c| fns.iter().all(|f| c.contains(f))),
                "inlined pairing {fns:?} missing from composed run ({composed_fns:?})"
            );
        }

        // Deviation kinds per chain caller agree.
        let devs = |r: &ofence::AnalysisResult| {
            let mut v: Vec<String> = r
                .deviations
                .iter()
                .filter(|d| d.site.function.starts_with("chain"))
                .map(|d| {
                    format!(
                        "{}:{}",
                        d.site.function,
                        match d.kind {
                            ofence::DeviationKind::Misplaced { .. } => "misplaced",
                            ofence::DeviationKind::RepeatedRead { .. } => "reread",
                            ofence::DeviationKind::WrongBarrierType { .. } => "wrongtype",
                            ofence::DeviationKind::UnneededBarrier { .. } => "unneeded",
                            ofence::DeviationKind::MissingBarrier { .. } => "missing",
                            ofence::DeviationKind::MissingOnce { .. } => "once",
                        }
                    )
                })
                .collect();
            v.sort();
            v.dedup();
            v
        };
        prop_assert_eq!(devs(&composed), devs(&inlined));
    }
}

#[test]
fn recursion_terminates_with_stable_fingerprints() {
    // An SCC with a self-call and a mutual cycle feeding the barrier's
    // window: composition must terminate and produce identical
    // fingerprints run over run.
    let src = r#"
struct rec { int d0; int d1; int ready; };
void rec_self(struct rec *p, int n) {
    if (n > 0)
        rec_self(p, n - 1);
    p->d0 = n;
}
void rec_a(struct rec *p);
void rec_b(struct rec *p) {
    p->d1 = 2;
    rec_a(p);
}
void rec_a(struct rec *p) {
    rec_b(p);
}
void rec_pub(struct rec *p) {
    rec_self(p, 3);
    rec_b(p);
    smp_wmb();
    p->ready = 1;
}
void rec_sub(struct rec *p) {
    if (!p->ready)
        return;
    smp_rmb();
    pat_sink(p->d0);
    pat_sink(p->d1);
}
"#;
    let files = vec![
        SourceFile::new("rec_w.c", src),
        SourceFile::new(
            "rec_r.c",
            "struct other { int x; int y; };\nvoid other_noise(struct other *p) { p->x = p->y; }\n",
        ),
    ];
    let run = |_: usize| Engine::new(depth_config(3)).analyze(&files);
    let a = run(0);
    let b = run(1);
    // The recursive writer still pairs with the reader.
    let fns = pairing_functions(&a);
    assert!(
        fns.iter()
            .any(|f| f.contains(&"rec_pub".to_string()) && f.contains(&"rec_sub".to_string())),
        "recursive chain did not pair: {fns:?}"
    );
    let prints = |r: &ofence::AnalysisResult| {
        let mut v: Vec<String> =
            ofence::fingerprint::finding_records(&r.deviations, &r.sites, &r.files)
                .into_iter()
                .map(|rec| rec.fingerprint)
                .collect();
        v.sort();
        v
    };
    assert_eq!(prints(&a), prints(&b));
}

#[test]
fn missing_barrier_exoneration_uses_callee_fences() {
    // A reader whose fence lives two call levels down — beyond the ±1
    // expansion window, so the writer stays unpaired and the intra-
    // procedural missing-barrier detector sees a fence-less guarded
    // reader. Whole-corpus summary evidence exonerates it at depth ≥ 2.
    let src = r#"
struct exo { int flag; int data; int spare; };
void exo_pub(struct exo *p) {
    p->data = 1;
    p->spare = 2;
    smp_wmb();
    p->flag = 1;
}
void exo_inner(struct exo *p) {
    smp_rmb();
    pat_sink(p->data);
}
void exo_mid(struct exo *p) {
    exo_inner(p);
}
void exo_outer(struct exo *p) {
    if (!p->flag)
        return;
    exo_mid(p);
    pat_sink(p->spare);
}
"#;
    let files = vec![SourceFile::new("exo.c", src)];
    let missing_cfg = |depth: u32| AnalysisConfig {
        detect_missing: true,
        outlier_rule: false,
        ipa_depth: depth,
        ..Default::default()
    };
    let flagged = |r: &ofence::AnalysisResult| {
        r.deviations
            .iter()
            .filter(|d| {
                matches!(d.kind, ofence::DeviationKind::MissingBarrier { .. })
                    && d.site.function == "exo_outer"
            })
            .count()
    };
    let shallow = Engine::new(missing_cfg(0)).analyze(&files);
    assert!(
        flagged(&shallow) > 0,
        "depth 0 should flag the outer reader: {:#?}",
        shallow.deviations
    );
    let short = Engine::new(missing_cfg(1)).analyze(&files);
    assert!(
        flagged(&short) > 0,
        "the fence is two calls down; depth 1 cannot see it: {:#?}",
        short.deviations
    );
    let deep = Engine::new(missing_cfg(2)).analyze(&files);
    assert_eq!(
        flagged(&deep),
        0,
        "callee fence must exonerate the outer reader"
    );
    assert!(deep.obs.count_of("missing_readers_exonerated") >= 1);
}

#[test]
fn warm_cache_at_new_depth_recomputes() {
    // End-to-end satellite check: a cache warmed at depth 0 must not
    // serve a depth-2 run (the config fingerprint covers ipa_depth).
    let dir = std::env::temp_dir().join(format!("ofence-ipa-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let corpus = generate(&chain_spec(54, 2, 2, 0));
    let files = sources(&corpus);

    let mut cold = Engine::new(depth_config(0));
    cold.analyze(&files);
    cold.save_disk_cache(&dir).unwrap();

    let mut deep = Engine::new(depth_config(2));
    deep.load_disk_cache(&dir);
    let result = deep.analyze(&files);
    assert_eq!(
        result.obs.count_of("engine_cache_hits"),
        0,
        "depth-0 cache entries served a depth-2 run"
    );
    // The deep run still finds the chains.
    assert!(result.obs.count_of("ipa_compose_functions") > 0);
    let _ = std::fs::remove_dir_all(&dir);
}
