//! Integration tests on the paper's own listings and patches: the
//! reproduction must reach the paper's conclusion on each of its worked
//! examples.

use ofence::{AnalysisConfig, DeviationKind, Engine, PairingShape, Side, SourceFile};
use ofence_corpus::fixtures;

fn analyze(name: &str, src: &str) -> ofence::AnalysisResult {
    Engine::new(AnalysisConfig::default()).analyze(&[SourceFile::new(name, src)])
}

#[test]
fn listing1_pairs_and_is_clean() {
    let r = analyze("listing1.c", fixtures::LISTING1);
    assert_eq!(r.sites.len(), 2);
    assert_eq!(r.pairing.pairings.len(), 1);
    let p = &r.pairing.pairings[0];
    assert_eq!(p.shape, PairingShape::Single);
    assert!(p
        .objects
        .contains(&ofence::SharedObject::new("my_struct", "init")));
    assert!(p
        .objects
        .contains(&ofence::SharedObject::new("my_struct", "y")));
    assert!(r.deviations.is_empty(), "{:?}", r.deviations);
}

#[test]
fn listing2_reread_flagged() {
    let r = analyze("listing2.c", fixtures::LISTING2);
    let rr: Vec<_> = r
        .deviations
        .iter()
        .filter(|d| matches!(d.kind, DeviationKind::RepeatedRead { .. }))
        .collect();
    assert_eq!(rr.len(), 1, "{:?}", r.deviations);
    assert_eq!(rr[0].site.function, "ev_reader");
    assert_eq!(
        rr[0].object,
        Some(ofence::SharedObject::new("ev_type", "field"))
    );
}

#[test]
fn listing3_double_pairing_clean() {
    let r = analyze("arp.c", fixtures::LISTING3);
    assert_eq!(r.sites.len(), 4, "four seqcount barriers");
    assert_eq!(r.pairing.pairings.len(), 1);
    assert_eq!(r.pairing.pairings[0].members.len(), 4);
    assert_eq!(r.pairing.pairings[0].shape, PairingShape::Multi);
    assert!(r.deviations.is_empty(), "{:?}", r.deviations);
}

#[test]
fn listing4_bnx2x_false_positive_reproduced() {
    // §6.4 documents this as OFence's main FP source: sp_state is written
    // on both sides of the barrier, and OFence produces a (wrong) patch.
    // Reproducing the paper means producing the finding.
    let r = analyze("bnx2x.c", fixtures::LISTING4_BNX2X);
    assert_eq!(r.pairing.pairings.len(), 1, "the pairing itself is correct");
    assert!(
        r.deviations
            .iter()
            .any(|d| d.object == Some(ofence::SharedObject::new("bnx2x", "sp_state"))),
        "the documented false positive must be produced: {:?}",
        r.deviations
    );
}

#[test]
fn patch1_misplaced_detected_and_fix_matches_paper() {
    let r = analyze("xprt.c", fixtures::PATCH1_BUGGY);
    let mis = r
        .deviations
        .iter()
        .find(|d| matches!(d.kind, DeviationKind::Misplaced { .. }))
        .expect("misplaced access detected");
    assert_eq!(mis.site.function, "call_decode");
    assert_eq!(
        mis.object,
        Some(ofence::SharedObject::new("rpc_rqst", "rq_reply_bytes_recd"))
    );
    // The paper's fix moves the read before the barrier.
    assert!(matches!(
        mis.kind,
        DeviationKind::Misplaced {
            correct_side: Side::Before
        }
    ));
    let patch = ofence::patch::synthesize(mis, &r.files[0]).expect("patch");
    let fixed = ofence::apply_edits(&r.files[0].source, &patch.edits).expect("applies");
    // After the generated fix, the guard precedes the barrier.
    let guard = fixed.find("if (!req->rq_reply_bytes_recd)").unwrap();
    let rmb = fixed.find("smp_rmb").unwrap();
    assert!(guard < rmb, "{fixed}");
}

#[test]
fn patch1_fixed_version_is_clean() {
    let r = analyze("xprt_fixed.c", fixtures::PATCH1_FIXED);
    assert_eq!(r.pairing.pairings.len(), 1);
    assert!(r.deviations.is_empty(), "{:?}", r.deviations);
}

#[test]
fn patch3_reread_detected_and_fix_reuses_value() {
    let r = analyze("sock_reuseport.c", fixtures::PATCH3_BUGGY);
    let rr = r
        .deviations
        .iter()
        .find(|d| matches!(d.kind, DeviationKind::RepeatedRead { .. }))
        .expect("re-read detected");
    assert_eq!(rr.site.function, "reuseport_select_sock");
    assert_eq!(
        rr.object,
        Some(ofence::SharedObject::new("sock_reuseport", "num_socks"))
    );
    let patch = ofence::patch::synthesize(rr, &r.files[0]).expect("patch");
    let fixed = ofence::apply_edits(&r.files[0].source, &patch.edits).expect("applies");
    // The paper's fix: reuse the previously read value (`socks`).
    assert!(
        fixed.contains("reuse->socks[socks - 1]"),
        "patch must reuse the first read:\n{fixed}"
    );
}

#[test]
fn patch4_unneeded_barrier_detected_and_removed() {
    let r = analyze("blk_rq_qos.c", fixtures::PATCH4_BUGGY);
    let un = r
        .deviations
        .iter()
        .find(|d| matches!(d.kind, DeviationKind::UnneededBarrier { .. }))
        .expect("unneeded barrier detected");
    match &un.kind {
        DeviationKind::UnneededBarrier { provided_by } => {
            assert_eq!(provided_by, "wake_up_process")
        }
        _ => unreachable!(),
    }
    let patch = ofence::patch::synthesize(un, &r.files[0]).expect("patch");
    let fixed = ofence::apply_edits(&r.files[0].source, &patch.edits).expect("applies");
    assert!(!fixed.contains("smp_wmb"), "{fixed}");
    assert!(fixed.contains("wake_up_process"));
}

#[test]
fn patch5_annotations_generated() {
    let r = analyze("select.c", fixtures::PATCH5_UNANNOTATED);
    assert!(!r.pairing.pairings.is_empty());
    // Both the flag and the data field need annotations on both sides.
    assert!(
        r.annotations.len() >= 2,
        "expected several missing annotations: {:?}",
        r.annotations
    );
    let read_patch = r
        .annotation_patches
        .iter()
        .find(|p| p.diff.contains("READ_ONCE(pwq->triggered)"));
    let write_patch = r
        .annotation_patches
        .iter()
        .find(|p| p.diff.contains("WRITE_ONCE(pwq->triggered, 1)"));
    assert!(read_patch.is_some(), "READ_ONCE patch for the flag");
    assert!(write_patch.is_some(), "WRITE_ONCE patch for the flag");
}

#[test]
fn perf_rb_missing_rmb_detected_and_fix_matches_upstream() {
    // The perf ring-buffer memory-ordering fix: the reader consumed
    // data_head and then the records with no read fence. Pairing alone
    // cannot see this (the writer is just unpaired); the dataflow
    // missing-barrier detector must recover the upstream smp_rmb().
    let config = AnalysisConfig {
        detect_missing: true,
        ..Default::default()
    };
    let r = Engine::new(config.clone()).analyze(&[SourceFile::new(
        "ring_buffer.c",
        fixtures::PERF_RB_MISSING_RMB,
    )]);
    let missing = r
        .deviations
        .iter()
        .find(|d| matches!(d.kind, DeviationKind::MissingBarrier { .. }))
        .expect("fence-less reader detected");
    assert_eq!(missing.site.function, "perf_read_events");
    assert_eq!(
        missing.object,
        Some(ofence::SharedObject::new("perf_rb", "data_head"))
    );
    // The synthesized fix is the upstream one: smp_rmb() after the head
    // read, before the data read.
    let patch = ofence::patch::synthesize(missing, &r.files[0]).expect("patch");
    let fixed = ofence::apply_edits(&r.files[0].source, &patch.edits).expect("applies");
    let rmb = fixed.find("smp_rmb").expect("fence inserted");
    let head = fixed.find("if (!rb->data_head)").unwrap();
    let data = fixed.find("pat_sink(rb->events)").unwrap();
    assert!(head < rmb && rmb < data, "{fixed}");
    // Machine verification: after the fix the pairing forms and the
    // diagnostic is gone.
    let r2 = Engine::new(config.clone()).analyze(&[SourceFile::new("ring_buffer.c", fixed)]);
    assert_eq!(r2.pairing.pairings.len(), 1, "inserted fence must pair");
    assert!(
        !r2.deviations
            .iter()
            .any(|d| matches!(d.kind, DeviationKind::MissingBarrier { .. })),
        "{:?}",
        r2.deviations
    );
    // And the upstream-fixed transcription pairs cleanly.
    let r3 = Engine::new(config).analyze(&[SourceFile::new(
        "ring_buffer_fixed.c",
        fixtures::PERF_RB_FIXED,
    )]);
    assert_eq!(r3.pairing.pairings.len(), 1);
    assert!(r3.deviations.is_empty(), "{:?}", r3.deviations);
    // Without the detector the bug is invisible — the motivating gap.
    let r4 = analyze("ring_buffer.c", fixtures::PERF_RB_MISSING_RMB);
    assert!(r4.deviations.is_empty(), "{:?}", r4.deviations);
}

#[test]
fn fixture_analysis_is_deterministic() {
    let a = analyze("xprt.c", fixtures::PATCH1_BUGGY);
    let b = analyze("xprt.c", fixtures::PATCH1_BUGGY);
    assert_eq!(format!("{:?}", a.deviations), format!("{:?}", b.deviations));
}
