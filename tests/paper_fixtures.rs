//! Integration tests on the paper's own listings and patches: the
//! reproduction must reach the paper's conclusion on each of its worked
//! examples.

use ofence::{AnalysisConfig, DeviationKind, Engine, PairingShape, Side, SourceFile};
use ofence_corpus::fixtures;

fn analyze(name: &str, src: &str) -> ofence::AnalysisResult {
    Engine::new(AnalysisConfig::default()).analyze(&[SourceFile::new(name, src)])
}

#[test]
fn listing1_pairs_and_is_clean() {
    let r = analyze("listing1.c", fixtures::LISTING1);
    assert_eq!(r.sites.len(), 2);
    assert_eq!(r.pairing.pairings.len(), 1);
    let p = &r.pairing.pairings[0];
    assert_eq!(p.shape, PairingShape::Single);
    assert!(p
        .objects
        .contains(&ofence::SharedObject::new("my_struct", "init")));
    assert!(p
        .objects
        .contains(&ofence::SharedObject::new("my_struct", "y")));
    assert!(r.deviations.is_empty(), "{:?}", r.deviations);
}

#[test]
fn listing2_reread_flagged() {
    let r = analyze("listing2.c", fixtures::LISTING2);
    let rr: Vec<_> = r
        .deviations
        .iter()
        .filter(|d| matches!(d.kind, DeviationKind::RepeatedRead { .. }))
        .collect();
    assert_eq!(rr.len(), 1, "{:?}", r.deviations);
    assert_eq!(rr[0].site.function, "ev_reader");
    assert_eq!(
        rr[0].object,
        Some(ofence::SharedObject::new("ev_type", "field"))
    );
}

#[test]
fn listing3_double_pairing_clean() {
    let r = analyze("arp.c", fixtures::LISTING3);
    assert_eq!(r.sites.len(), 4, "four seqcount barriers");
    assert_eq!(r.pairing.pairings.len(), 1);
    assert_eq!(r.pairing.pairings[0].members.len(), 4);
    assert_eq!(r.pairing.pairings[0].shape, PairingShape::Multi);
    assert!(r.deviations.is_empty(), "{:?}", r.deviations);
}

#[test]
fn listing4_bnx2x_false_positive_reproduced() {
    // §6.4 documents this as OFence's main FP source: sp_state is written
    // on both sides of the barrier, and OFence produces a (wrong) patch.
    // Reproducing the paper means producing the finding.
    let r = analyze("bnx2x.c", fixtures::LISTING4_BNX2X);
    assert_eq!(r.pairing.pairings.len(), 1, "the pairing itself is correct");
    assert!(
        r.deviations
            .iter()
            .any(|d| d.object == Some(ofence::SharedObject::new("bnx2x", "sp_state"))),
        "the documented false positive must be produced: {:?}",
        r.deviations
    );
}

#[test]
fn patch1_misplaced_detected_and_fix_matches_paper() {
    let r = analyze("xprt.c", fixtures::PATCH1_BUGGY);
    let mis = r
        .deviations
        .iter()
        .find(|d| matches!(d.kind, DeviationKind::Misplaced { .. }))
        .expect("misplaced access detected");
    assert_eq!(mis.site.function, "call_decode");
    assert_eq!(
        mis.object,
        Some(ofence::SharedObject::new("rpc_rqst", "rq_reply_bytes_recd"))
    );
    // The paper's fix moves the read before the barrier.
    assert!(matches!(
        mis.kind,
        DeviationKind::Misplaced {
            correct_side: Side::Before
        }
    ));
    let patch = ofence::patch::synthesize(mis, &r.files[0]).expect("patch");
    let fixed = ofence::apply_edits(&r.files[0].source, &patch.edits).expect("applies");
    // After the generated fix, the guard precedes the barrier.
    let guard = fixed.find("if (!req->rq_reply_bytes_recd)").unwrap();
    let rmb = fixed.find("smp_rmb").unwrap();
    assert!(guard < rmb, "{fixed}");
}

#[test]
fn patch1_fixed_version_is_clean() {
    let r = analyze("xprt_fixed.c", fixtures::PATCH1_FIXED);
    assert_eq!(r.pairing.pairings.len(), 1);
    assert!(r.deviations.is_empty(), "{:?}", r.deviations);
}

#[test]
fn patch3_reread_detected_and_fix_reuses_value() {
    let r = analyze("sock_reuseport.c", fixtures::PATCH3_BUGGY);
    let rr = r
        .deviations
        .iter()
        .find(|d| matches!(d.kind, DeviationKind::RepeatedRead { .. }))
        .expect("re-read detected");
    assert_eq!(rr.site.function, "reuseport_select_sock");
    assert_eq!(
        rr.object,
        Some(ofence::SharedObject::new("sock_reuseport", "num_socks"))
    );
    let patch = ofence::patch::synthesize(rr, &r.files[0]).expect("patch");
    let fixed = ofence::apply_edits(&r.files[0].source, &patch.edits).expect("applies");
    // The paper's fix: reuse the previously read value (`socks`).
    assert!(
        fixed.contains("reuse->socks[socks - 1]"),
        "patch must reuse the first read:\n{fixed}"
    );
}

#[test]
fn patch4_unneeded_barrier_detected_and_removed() {
    let r = analyze("blk_rq_qos.c", fixtures::PATCH4_BUGGY);
    let un = r
        .deviations
        .iter()
        .find(|d| matches!(d.kind, DeviationKind::UnneededBarrier { .. }))
        .expect("unneeded barrier detected");
    match &un.kind {
        DeviationKind::UnneededBarrier { provided_by } => {
            assert_eq!(provided_by, "wake_up_process")
        }
        _ => unreachable!(),
    }
    let patch = ofence::patch::synthesize(un, &r.files[0]).expect("patch");
    let fixed = ofence::apply_edits(&r.files[0].source, &patch.edits).expect("applies");
    assert!(!fixed.contains("smp_wmb"), "{fixed}");
    assert!(fixed.contains("wake_up_process"));
}

#[test]
fn patch5_annotations_generated() {
    let r = analyze("select.c", fixtures::PATCH5_UNANNOTATED);
    assert!(!r.pairing.pairings.is_empty());
    // Both the flag and the data field need annotations on both sides.
    assert!(
        r.annotations.len() >= 2,
        "expected several missing annotations: {:?}",
        r.annotations
    );
    let read_patch = r
        .annotation_patches
        .iter()
        .find(|p| p.diff.contains("READ_ONCE(pwq->triggered)"));
    let write_patch = r
        .annotation_patches
        .iter()
        .find(|p| p.diff.contains("WRITE_ONCE(pwq->triggered, 1)"));
    assert!(read_patch.is_some(), "READ_ONCE patch for the flag");
    assert!(write_patch.is_some(), "WRITE_ONCE patch for the flag");
}

#[test]
fn fixture_analysis_is_deterministic() {
    let a = analyze("xprt.c", fixtures::PATCH1_BUGGY);
    let b = analyze("xprt.c", fixtures::PATCH1_BUGGY);
    assert_eq!(
        format!("{:?}", a.deviations),
        format!("{:?}", b.deviations)
    );
}
