//! Quickstart: pair the barriers of the paper's Listing 1 and inspect
//! what the analysis inferred.
//!
//! ```text
//! cargo run -p ofence-examples --example quickstart
//! ```

use ofence::{AnalysisConfig, Engine, SourceFile};

fn main() {
    // The canonical lockless publication pattern (paper Listing 1): the
    // writer initializes `y`, issues a write barrier, then sets `init`;
    // the reader checks `init`, issues a read barrier, then reads `y`.
    let code = r#"
struct my_struct {
	int init;
	int y;
};

void reader(struct my_struct *a)
{
	if (!a->init)
		return;
	smp_rmb();
	f(a->y);
}

void writer(struct my_struct *b)
{
	b->y = 1;
	smp_wmb();
	b->init = 1;
}
"#;

    let files = vec![SourceFile::new("listing1.c", code)];
    let result = Engine::new(AnalysisConfig::default()).analyze(&files);

    println!("== barrier sites");
    for site in &result.sites {
        println!(
            "  {} {}() in {}() at line {}",
            site.id,
            site.kind.name(),
            site.site.function,
            site.site.line
        );
        for (obj, dist) in site.objects() {
            println!("      orders {obj} (distance {dist})");
        }
    }

    println!("\n== pairings (Figure 4)");
    for p in &result.pairing.pairings {
        let functions: Vec<_> = p
            .members
            .iter()
            .map(|&m| result.site(m).site.function.clone())
            .collect();
        println!(
            "  {:?} inferred to run concurrently, matched on {:?} (weight {})",
            functions, p.objects, p.weight
        );
    }

    println!("\n== deviations");
    if result.deviations.is_empty() {
        println!("  none — Listing 1 uses its barriers correctly");
    }
    for d in &result.deviations {
        println!("  {}", d.explanation);
    }

    println!("\n== stats\n{}", result.stats.render());
    assert_eq!(result.pairing.pairings.len(), 1, "Listing 1 must pair");
}
