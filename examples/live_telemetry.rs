//! Live telemetry: attach event sinks to the engine, analyze a small
//! corpus, and show what streamed out — the in-process mirror of
//! `ofence analyze --events-out` and `ofence watch --serve-metrics`.
//!
//! Two sinks observe the same run: an NDJSON sink writing every event to
//! a file, and a bounded ring buffer keeping the most recent events in
//! memory. At the end the run is also published to a [`Live`] endpoint
//! state, the same object the `/metrics` + `/health` server reads from.
//!
//! ```text
//! cargo run -p ofence-examples --example live_telemetry [files] [seed]
//! ```

use ofence::obs::{Event, Live, NdjsonSink, RingSink};
use ofence::{AnalysisConfig, Engine, SourceFile};
use ofence_corpus::{generate, CorpusSpec};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let files: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(12);
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(5);

    let spec = CorpusSpec {
        files,
        ..CorpusSpec::small(seed)
    };
    let sources: Vec<SourceFile> = generate(&spec)
        .files
        .iter()
        .map(|f| SourceFile::new(f.name.clone(), f.content.clone()))
        .collect();

    // Sink 1: every event as one NDJSON line, streamed while the
    // analysis runs (what `--events-out` wires up in the CLI).
    let path = std::env::temp_dir().join("ofence-live-telemetry.ndjson");
    let file = std::fs::File::create(&path).expect("create event log");
    let ndjson = Arc::new(NdjsonSink::new(std::io::BufWriter::new(file)));

    // Sink 2: a bounded in-memory ring holding the last 64 events.
    let ring = Arc::new(RingSink::new(64));

    let mut engine = Engine::new(AnalysisConfig::default());
    engine.recorder().add_sink(ndjson.clone());
    engine.recorder().add_sink(ring.clone());

    let result = engine.analyze(&sources);
    engine.recorder().flush_sinks();

    println!(
        "analyzed {} files: {} barriers, {} pairings, {} deviations",
        result.stats.files_total,
        result.stats.barriers_total,
        result.stats.pairings,
        result.stats.deviations_total
    );

    // Count what streamed, by kind.
    let (mut opens, mut closes, mut counters, mut observes) = (0u64, 0u64, 0u64, 0u64);
    for ev in ring.events() {
        match ev {
            Event::SpanOpen { .. } => opens += 1,
            Event::SpanClose { .. } => closes += 1,
            Event::Counter { .. } => counters += 1,
            Event::Observe { .. } => observes += 1,
        }
    }
    println!(
        "ndjson sink: {} events written to {}",
        ndjson.emitted(),
        path.display()
    );
    println!(
        "ring sink:   {} of {} total events retained (capacity {}) — \
         last window: {opens} opens, {closes} closes, {counters} counters, {observes} observes",
        ring.len(),
        ring.total(),
        ring.capacity()
    );

    // Publish to the same live state the /metrics server scrapes.
    let live = Live::new();
    live.publish(&result.obs, result.stats.deviations_total as u64, 0);
    println!("\n/health after publish:\n{}", live.health_json());
    let metrics = live.metrics_text();
    let preview: Vec<&str> = metrics.lines().take(8).collect();
    println!(
        "\n/metrics preview ({} lines total):\n{}",
        metrics.lines().count(),
        preview.join("\n")
    );
}
