//! Dataflow extension: detect a reader whose fence is *missing entirely*.
//!
//! Pairing alone cannot flag this — with no read barrier there is no read
//! site, so the writer simply stays unpaired. The missing-barrier detector
//! walks fence-less functions, matches the writer's guard/payload protocol
//! against their reads, and proposes the fence the sibling readers use.
//!
//! ```text
//! cargo run -p ofence-examples --example missing_fence
//! ```

use ofence::{AnalysisConfig, DeviationKind, Engine, SourceFile};
use ofence_corpus::fixtures;

fn main() {
    let config = AnalysisConfig {
        detect_missing: true,
        ..Default::default()
    };

    // The perf ring-buffer memory-ordering bug: the writer publishes event
    // records with smp_wmb() before advancing data_head, but the reader
    // consumed the head and then the records with no fence in between.
    let src = fixtures::PERF_RB_MISSING_RMB;

    // Baseline: the default pipeline sees nothing — the writer is merely
    // an unpaired barrier, which on its own is not a finding.
    let baseline =
        Engine::new(AnalysisConfig::default()).analyze(&[SourceFile::new("ring_buffer.c", src)]);
    assert!(baseline.deviations.is_empty());
    println!("default pipeline: no findings (writer unpaired, reader fence-less)\n");

    // With the detector on, the fence-less guarded reader is flagged.
    let result = Engine::new(config.clone()).analyze(&[SourceFile::new("ring_buffer.c", src)]);
    let missing = result
        .deviations
        .iter()
        .find(|d| matches!(d.kind, DeviationKind::MissingBarrier { .. }))
        .expect("missing-barrier deviation");
    println!("== finding");
    println!("{}\n", missing.render(&result.files[0].source));

    // The synthesized patch is the upstream fix: smp_rmb() between the
    // head read and the data read.
    let patch = ofence::patch::synthesize(missing, &result.files[0]).expect("patch");
    println!("== synthesized fix");
    println!("{}", patch.diff);

    // Machine verification: apply the fix and re-analyze.
    let fixed = ofence::apply_edits(&result.files[0].source, &patch.edits).expect("applies");
    let reanalyzed = Engine::new(config).analyze(&[SourceFile::new("ring_buffer.c", fixed)]);
    assert!(
        !reanalyzed
            .deviations
            .iter()
            .any(|d| matches!(d.kind, DeviationKind::MissingBarrier { .. })),
        "fix must silence the detector"
    );
    println!("re-analysis after the fix: clean — patch verified");
}
