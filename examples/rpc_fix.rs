//! Reproduce the paper's Patch 1: the RPC subsystem's misplaced memory
//! access (`rq_reply_bytes_recd` read on the wrong side of the read
//! barrier in `call_decode`), detected, patched, and verified.
//!
//! ```text
//! cargo run -p ofence-examples --example rpc_fix
//! ```

use ofence::{AnalysisConfig, DeviationKind, Engine, SourceFile};
use ofence_corpus::fixtures;

fn main() {
    let files = vec![SourceFile::new("net/sunrpc/xprt.c", fixtures::PATCH1_BUGGY)];
    let mut engine = Engine::new(AnalysisConfig::default());
    let result = engine.analyze(&files);

    // The pairing: xprt_complete_rqst's smp_wmb with call_decode's smp_rmb,
    // matched through the shared (struct, field) objects.
    let pairing = result
        .pairing
        .pairings
        .first()
        .expect("the RPC writer/reader must pair");
    println!("paired on objects: {:?}\n", pairing.objects);

    let misplaced = result
        .deviations
        .iter()
        .find(|d| matches!(d.kind, DeviationKind::Misplaced { .. }))
        .expect("the misplaced flag read must be detected");
    println!("finding: {}\n", misplaced.explanation);

    let fa = &result.files[misplaced.site.file];
    let patch = ofence::patch::synthesize(misplaced, fa).expect("patch synthesized");
    println!("--- generated patch ---------------------------------------");
    println!("{}", patch.title);
    println!("{}", patch.explanation);
    println!("{}", patch.diff);

    // Verify the patch the way the report harness does: apply it and
    // re-run the analysis — the diagnostic must disappear while the
    // pairing survives.
    let fixed = ofence::apply_edits(&fa.source, &patch.edits).expect("edits apply");
    let result2 = Engine::new(AnalysisConfig::default())
        .analyze(&[SourceFile::new("net/sunrpc/xprt.c", fixed)]);
    assert_eq!(result2.pairing.pairings.len(), 1, "pairing must survive");
    assert!(
        result2
            .deviations
            .iter()
            .all(|d| !matches!(d.kind, DeviationKind::Misplaced { .. })),
        "patch must eliminate the misplaced access"
    );
    println!("verified: after the patch, the checker no longer fires.");
}
