//! §7 extension: find concurrent accesses missing READ_ONCE/WRITE_ONCE
//! and produce annotation patches (the paper's Patch 5).
//!
//! ```text
//! cargo run -p ofence-examples --example annotate_once
//! ```

use ofence::{AnalysisConfig, Engine, SourceFile};
use ofence_corpus::fixtures;

fn main() {
    let result = Engine::new(AnalysisConfig::default())
        .analyze(&[SourceFile::new("fs/select.c", fixtures::PATCH5_UNANNOTATED)]);

    assert!(
        !result.pairing.pairings.is_empty(),
        "pollwake/poll_schedule_timeout must pair first — annotation only \
         applies to inferred-concurrent code"
    );
    println!(
        "pairing inferred on {:?}\n",
        result.pairing.pairings[0].objects
    );

    println!("== unannotated concurrent accesses");
    for a in &result.annotations {
        println!("  {}", a.explanation);
    }
    assert!(
        !result.annotations.is_empty(),
        "the unannotated accesses must be found"
    );

    println!("\n== generated annotation patches (Patch 5)");
    for p in &result.annotation_patches {
        println!("{}", p.diff);
    }

    // Apply all annotation patches together and verify the file still
    // parses and nothing remains to annotate.
    let fa = &result.files[0];
    let all_edits: Vec<_> = result
        .annotation_patches
        .iter()
        .flat_map(|p| p.edits.clone())
        .collect();
    let annotated = ofence::apply_edits(&fa.source, &all_edits).expect("edits compose");
    let result2 = Engine::new(AnalysisConfig::default())
        .analyze(&[SourceFile::new("fs/select.c", annotated.clone())]);
    assert!(
        result2.annotations.is_empty(),
        "after annotation, nothing is left to annotate: {:?}",
        result2.annotations
    );
    println!("verified: the annotated file is fully covered.");
}
