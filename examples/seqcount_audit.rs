//! Audit seqcount protocols: the paper's Listing 3 (ARP counters, a
//! correct 4-barrier "double pairing", Figure 5) plus a broken variant
//! where one field escapes the retry loop.
//!
//! ```text
//! cargo run -p ofence-examples --example seqcount_audit
//! ```

use ofence::{AnalysisConfig, Engine, PairingShape, SourceFile};
use ofence_corpus::fixtures;

const BROKEN: &str = r#"
static seqcount_t stats_seq;

struct dev_stats {
	long rx;
	long tx;
};

void dev_stats_update(struct dev_stats *s, long r, long t)
{
	write_seqcount_begin(&stats_seq);
	s->rx += r;
	s->tx += t;
	write_seqcount_end(&stats_seq);
}

void dev_stats_read(struct dev_stats *out, struct dev_stats *s)
{
	unsigned int seq;
	do {
		seq = read_seqcount_begin(&stats_seq);
		out->rx = s->rx;
	} while (read_seqcount_retry(&stats_seq, seq));
	out->tx = s->tx;
}
"#;

fn main() {
    println!("== Listing 3: the ARP counters (correct protocol)\n");
    let result = Engine::new(AnalysisConfig::default())
        .analyze(&[SourceFile::new("net/ipv4/arp_tables.c", fixtures::LISTING3)]);
    let p = result
        .pairing
        .pairings
        .first()
        .expect("the four seqcount barriers must pair");
    assert_eq!(p.shape, PairingShape::Multi, "Figure 5 double pairing");
    println!(
        "multi-barrier pairing of {} barriers: {:?}",
        p.members.len(),
        p.members
            .iter()
            .map(|&m| format!(
                "{}:{}",
                result.site(m).site.function,
                result.site(m).kind.name()
            ))
            .collect::<Vec<_>>()
    );
    assert!(
        result.deviations.is_empty(),
        "the correct protocol must be clean: {:?}",
        result.deviations
    );
    println!("no deviations — the version re-check protects both counters.\n");

    println!("== broken variant: `tx` read outside the retry loop\n");
    let result = Engine::new(AnalysisConfig::default())
        .analyze(&[SourceFile::new("drivers/net/dev_stats.c", BROKEN)]);
    assert!(!result.deviations.is_empty(), "the escape must be caught");
    for d in &result.deviations {
        println!("finding: {}", d.explanation);
        if let Some(patch) = ofence::patch::synthesize(d, &result.files[d.site.file]) {
            println!("\n{}", patch.diff);
        }
    }
}
