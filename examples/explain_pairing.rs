//! Walk the paper's Listing 3 (the ARP/xtables seqcount counters)
//! through the pairing explainer: for every barrier of the 4-member
//! "double pairing" (Figure 5), replay the decision — candidate set,
//! shared-object overlap, distance-product weights, and why the group
//! formed. Then show the two unpaired outcomes on a wake-up writer.
//!
//! ```text
//! cargo run -p ofence-examples --example explain_pairing
//! ```

use ofence::{explain_site_with, AnalysisConfig, Engine, SourceFile};
use ofence_corpus::fixtures;

const WAKER: &str = r#"
struct done { int token; int extra; struct task *t; };
void complete_and_wake(struct done *p)
{
	p->token = 1;
	p->extra = 2;
	smp_wmb();
	wake_up_process(p->t);
}
void wait_side(struct done *p)
{
	if (!p->token)
		return;
	smp_rmb();
	consume(p->extra);
}
"#;

fn main() {
    let config = AnalysisConfig::default();

    println!("== Listing 3: seqcount double pairing, explained\n");
    let files = vec![SourceFile::new("xt.c", fixtures::LISTING3)];
    let r = Engine::new(config.clone()).analyze(&files);
    assert_eq!(r.sites.len(), 4, "Listing 3 has four seqcount barriers");
    // Explain the write-side begin — the anchor of the pairing.
    let writer = r
        .sites
        .iter()
        .find(|s| s.site.function == "do_add_counters" && s.is_write_barrier())
        .expect("write-side barrier");
    let e = explain_site_with(&r.sites, &r.pairing, &config, writer.id).expect("explanation");
    print!("{}", e.render());

    println!("\n== Every member of the group sees the same outcome\n");
    for s in &r.sites {
        let e = explain_site_with(&r.sites, &r.pairing, &config, s.id).unwrap();
        let outcome = match &e.outcome {
            ofence::explain::Outcome::Paired { members, multi, .. } => format!(
                "paired ({} members{})",
                members.len(),
                if *multi { ", multi" } else { "" }
            ),
            ofence::explain::Outcome::UnpairedImplicitIpc { .. } => "implicit IPC".into(),
            ofence::explain::Outcome::UnpairedNoMatch => "unpaired".into(),
        };
        println!(
            "  #{} {} in {}(): {} candidates -> {}",
            s.id.0,
            e.target.kind,
            s.site.function,
            e.candidates.len(),
            outcome
        );
    }

    println!("\n== A wake-up writer: intentionally unpaired (implicit read barrier)\n");
    let files = vec![SourceFile::new("waker.c", WAKER)];
    let r = Engine::new(config.clone()).analyze(&files);
    let wmb = r
        .sites
        .iter()
        .find(|s| s.site.function == "complete_and_wake")
        .expect("waker barrier");
    let e = explain_site_with(&r.sites, &r.pairing, &config, wmb.id).expect("explanation");
    print!("{}", e.render());
}
