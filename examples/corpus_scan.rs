//! Whole-corpus scan: generate a synthetic kernel with injected bugs,
//! run the engine end to end, and grade the result against the ground
//! truth — a miniature of the paper's §6 evaluation.
//!
//! ```text
//! cargo run -p ofence-examples --example corpus_scan [files] [seed]
//! ```

use ofence::{AnalysisConfig, Engine, SourceFile};
use ofence_corpus::{evaluate, generate, BugPlan, CorpusSpec, FoundBug, FoundPairing};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let files: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(60);
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1);

    let spec = CorpusSpec {
        seed,
        files,
        patterns_per_file: 1,
        noise_per_file: 2,
        decoy_pairs: 2,
        far_decoy_pairs: 0,
        lone_per_file: 1,
        split_fraction: 0.2,
        reread_decoys: 0,
        unfenced_decoys: 0,
        filler_files: 0,
        cross_file_chains: 0,
        chain_depth: 2,
        chain_bugs: 0,
        bugs: BugPlan {
            misplaced: 3,
            repeated_read: 2,
            wrong_type: 1,
            unneeded: 4,
            missing_barrier: 0,
        },
    };
    let corpus = generate(&spec);
    println!(
        "generated {} files; injected {} bugs; planted {} decoys\n",
        corpus.files.len(),
        corpus.manifest.bugs.len(),
        corpus.manifest.decoy_pairings().count()
    );

    let sources: Vec<SourceFile> = corpus
        .files
        .iter()
        .map(|f| SourceFile::new(f.name.clone(), f.content.clone()))
        .collect();
    let result = Engine::new(AnalysisConfig::default()).analyze(&sources);
    println!("{}", result.stats.render());

    println!("== findings");
    for d in &result.deviations {
        println!("  {}:{} {}", d.site.file_name, d.site.line, d.explanation);
    }

    // Grade against the manifest.
    let bugs: Vec<FoundBug> = result
        .deviations
        .iter()
        .filter_map(|d| {
            let kind = match &d.kind {
                ofence::DeviationKind::Misplaced { .. } => ofence_corpus::BugKind::Misplaced,
                ofence::DeviationKind::RepeatedRead { .. } => ofence_corpus::BugKind::RepeatedRead,
                ofence::DeviationKind::WrongBarrierType { .. } => {
                    ofence_corpus::BugKind::WrongBarrierType
                }
                ofence::DeviationKind::UnneededBarrier { .. } => {
                    ofence_corpus::BugKind::UnneededBarrier
                }
                ofence::DeviationKind::MissingOnce { .. } => return None,
                ofence::DeviationKind::MissingBarrier { .. } => {
                    ofence_corpus::BugKind::MissingBarrier
                }
            };
            Some(FoundBug {
                function: d.site.function.clone(),
                kind,
                strukt: d
                    .object
                    .as_ref()
                    .map(|o| o.strukt.clone())
                    .unwrap_or_default(),
                field: d
                    .object
                    .as_ref()
                    .map(|o| o.field.clone())
                    .unwrap_or_default(),
            })
        })
        .collect();
    let pairings: Vec<FoundPairing> = result
        .pairing
        .pairings
        .iter()
        .map(|p| FoundPairing {
            functions: p
                .members
                .iter()
                .map(|&m| result.site(m).site.function.clone())
                .collect(),
        })
        .collect();
    let summary = evaluate(&corpus.manifest, &bugs, &pairings);
    println!("\n== grading vs ground truth");
    println!(
        "  bug recall     {:.0}% ({}/{})",
        summary.bug_recall * 100.0,
        summary.bugs_found,
        summary.bugs_injected
    );
    println!(
        "  pairing recall {:.0}% ({}/{})",
        summary.pairing_recall * 100.0,
        summary.pairings_found,
        summary.pairings_expected
    );
    println!(
        "  false positives: {} (decoy pairings: {})",
        summary.bug_false_positives, summary.decoy_pairings_found
    );
}
