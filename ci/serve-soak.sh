#!/usr/bin/env bash
# 30-second soak of the `ofence serve` daemon: four concurrent clients
# issue a continuous mix of analyze / explain / status requests while an
# editor keeps rewriting corpus files (atomic replace, like a save in an
# IDE). Gates, in order:
#
#   1. zero error responses over the whole soak (`serve_errors` == 0 and
#      every client saw only ok:true),
#   2. request coalescing actually exercised (`serve_coalesced` > 0),
#   3. every soak response carries a non-empty `request_id`,
#   4. `/metrics` publishes a per-method p99 quantile after the soak,
#   5. `/debug/requests` retains at least one captured trace whose span
#      tree is balanced (node count == span_count),
#   6. the disk cache survives: a fresh single-shot run over the soaked
#      cache dir reloads the shards instead of discarding them.
#
# Environment: OFENCE (binary path), SOAK_SECONDS (default 30).
set -euo pipefail

BIN=${OFENCE:-./target/release/ofence}
DURATION=${SOAK_SECONDS:-30}
WORK=$(mktemp -d)
SERVE=""
cleanup() {
  [ -n "$SERVE" ] && kill "$SERVE" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

"$BIN" gen --out "$WORK/corpus" --files 20 --seed 17 --bugs

"$BIN" serve "$WORK/corpus" --addr 127.0.0.1:0 --metrics 127.0.0.1:0 \
  --cache-dir "$WORK/cache" --history-dir "$WORK/history" \
  > "$WORK/serve.log" 2>&1 &
SERVE=$!

ADDR=""
for _ in $(seq 50); do
  ADDR=$(sed -n 's|^serve: listening on ||p' "$WORK/serve.log" | head -1)
  [ -n "$ADDR" ] && break
  sleep 0.2
done
test -n "$ADDR" || { echo "daemon never bound" >&2; cat "$WORK/serve.log"; exit 1; }
METRICS_ADDR=$(sed -n 's|^serve: serving /metrics and /health on http://||p' "$WORK/serve.log" | head -1)
test -n "$METRICS_ADDR" || { echo "daemon never bound its metrics endpoint" >&2; cat "$WORK/serve.log"; exit 1; }

python3 - "$ADDR" "$WORK/corpus" "$DURATION" "$METRICS_ADDR" <<'EOF'
import json, os, socket, sys, threading, time
import urllib.request

addr, corpus_dir, duration = sys.argv[1], sys.argv[2], float(sys.argv[3])
metrics_addr = sys.argv[4]
host, port = addr.rsplit(":", 1)
deadline = time.monotonic() + duration
errors = []
missing_request_ids = []

def connect():
    sock = socket.create_connection((host, int(port)), timeout=120)
    return sock, sock.makefile("rwb")

def call(io, request):
    io.write((json.dumps(request) + "\n").encode())
    io.flush()
    line = io.readline()
    assert line, "daemon closed the connection"
    return json.loads(line)

# One warmup analyze to find a real barrier site for the explain mix.
sock, io = connect()
doc = call(io, {"id": "warm", "method": "analyze"})
assert doc["ok"], doc
site = doc["result"]["sites"][0]["site"]
target = {"file": site["file_name"], "line": site["line"]}
sock.close()

def client(n):
    sock, io = connect()
    requests = [
        {"id": 0, "method": "analyze"},
        {"id": 0, "method": "explain", "params": target},
        {"id": 0, "method": "status"},
    ]
    i = 0
    while time.monotonic() < deadline:
        req = dict(requests[(n + i) % len(requests)])
        req["id"] = f"c{n}-{i}"
        resp = call(io, req)
        if not resp.get("ok"):
            errors.append(resp)
        if not resp.get("request_id"):
            missing_request_ids.append(resp)
        i += 1
    sock.close()

def editor():
    files = sorted(
        os.path.join(dirpath, f)
        for dirpath, _, names in os.walk(corpus_dir)
        for f in names if f.endswith(".c")
    )
    i = 0
    while time.monotonic() < deadline:
        path = files[i % len(files)]
        with open(path) as f:
            content = f.read()
        content += f"\nint soak_edit_{i}(void) {{ return {i}; }}\n"
        tmp = path + ".tmp-swap"
        with open(tmp, "w") as f:
            f.write(content)
        os.replace(tmp, path)
        i += 1
        time.sleep(0.3)

threads = [threading.Thread(target=client, args=(n,)) for n in range(4)]
threads.append(threading.Thread(target=editor))
for t in threads:
    t.start()
for t in threads:
    t.join()

def http_get(path):
    with urllib.request.urlopen(f"http://{metrics_addr}{path}", timeout=30) as r:
        return r.read().decode()

def tree_nodes(nodes):
    return sum(1 + tree_nodes(n.get("children", [])) for n in nodes)

# Gate 4: the post-soak scrape publishes a per-method p99.
metrics = http_get("/metrics")
assert 'quantile="0.99"' in metrics and 'method="analyze"' in metrics, (
    "no per-method p99 in /metrics:\n" + metrics
)

# Gate 5: at least one captured trace reconstructs into a balanced tree.
listing = json.loads(http_get("/debug/requests"))
summaries = listing["recent"] + listing["slowest"]
assert summaries, "no captured traces in /debug/requests"
balanced = 0
for summary in summaries:
    trace = json.loads(http_get(f"/debug/trace/{summary['request_id']}"))
    if tree_nodes(trace["spans"]) == trace["span_count"]:
        balanced += 1
assert balanced >= 1, f"no balanced trace among {len(summaries)} captured"

sock, io = connect()
status = call(io, {"id": "final", "method": "status"})["result"]
counters = status["counters"]
call(io, {"id": "bye", "method": "shutdown"})
sock.close()

assert not errors, f"{len(errors)} error responses, first: {errors[0]}"
assert counters["serve_errors"] == 0, counters
assert counters["serve_coalesced"] > 0, f"soak never coalesced: {counters}"
assert counters["serve_runs"] > 0, counters
# Gate 3: request ids everywhere.
assert not missing_request_ids, (
    f"{len(missing_request_ids)} responses without a request_id, "
    f"first: {missing_request_ids[0]}"
)
print(
    f"soak OK: {counters['serve_requests']} requests, "
    f"{counters['serve_runs']} runs, "
    f"{counters['serve_coalesced']} coalesced, 0 errors, "
    f"{balanced} balanced traces"
)
EOF

wait "$SERVE"
SERVE=""

# Gate 3: the soaked cache dir must reload cleanly. `cache_discarded` is
# only emitted when shards fail validation, so its absence is the pass.
"$BIN" analyze "$WORK/corpus" --cache-dir "$WORK/cache" --no-history \
  --fail-on none --metrics-out "$WORK/verify-metrics.txt" > /dev/null
if grep -q "ofence_cache_discarded_total" "$WORK/verify-metrics.txt"; then
  echo "cache shards were discarded after the soak" >&2
  exit 1
fi
grep -q "ofence_cache_loads_total" "$WORK/verify-metrics.txt"
echo "serve soak gate OK"
