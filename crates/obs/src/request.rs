//! Request-scoped trace capture for the analysis daemon.
//!
//! Each daemon request records its spans into a private [`crate::Recorder`]
//! owned by the request context; when the request completes, the session
//! folds the finished spans plus outcome metadata into a [`RequestTrace`]
//! and hands it to [`crate::Live::record_trace`]. A bounded [`TraceStore`]
//! keeps the N most recent and N slowest completed traces so `GET
//! /debug/requests`, `GET /debug/trace/<id>`, and the in-band `trace`
//! method can answer "what did request X spend its time on?" long after
//! the request returned.
//!
//! Everything here is hand-rendered JSON (this crate is dependency-free);
//! the consumers (`ofence trace`, CI gates) parse it with whatever JSON
//! reader they already have.

use crate::{json_string, SpanRecord};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// One completed daemon request: identity, outcome, and its span tree.
#[derive(Clone, Debug)]
pub struct RequestTrace {
    /// Server-assigned or client-supplied id, echoed in the response.
    pub request_id: String,
    pub method: String,
    /// Wall-clock from envelope parse to response, in microseconds.
    pub latency_us: u64,
    /// `"ok"` or `"error"`.
    pub outcome: String,
    /// True when this request joined another request's in-flight run.
    pub coalesced: bool,
    /// The analysis run this request returned (the leader's run for
    /// coalesced joiners); absent for requests that never touch a run.
    pub run_id: Option<String>,
    /// Finished spans recorded during the request, insertion order.
    pub spans: Vec<SpanRecord>,
}

impl RequestTrace {
    /// One summary line for the `/debug/requests` listing.
    pub fn summary_json(&self) -> String {
        format!(
            "{{\"request_id\":{},\"method\":{},\"latency_us\":{},\"outcome\":{},\"coalesced\":{},\"run_id\":{}}}",
            json_string(&self.request_id),
            json_string(&self.method),
            self.latency_us,
            json_string(&self.outcome),
            self.coalesced,
            match &self.run_id {
                Some(id) => json_string(id),
                None => "null".to_string(),
            }
        )
    }

    /// The full trace as JSON: the summary fields plus `span_count` and a
    /// nested `spans` tree built from the recorded parent links. Children
    /// are ordered by start time; spans whose parent never closed (or
    /// closed on another thread) surface as roots rather than being
    /// dropped, so `span_count` always equals the number of nodes in the
    /// tree.
    pub fn tree_json(&self) -> String {
        let by_id: HashMap<u64, &SpanRecord> = self.spans.iter().map(|s| (s.id, s)).collect();
        let mut children: HashMap<u64, Vec<&SpanRecord>> = HashMap::new();
        let mut roots: Vec<&SpanRecord> = Vec::new();
        for s in &self.spans {
            match s.parent.filter(|p| by_id.contains_key(p)) {
                Some(p) => children.entry(p).or_default().push(s),
                None => roots.push(s),
            }
        }
        let sort = |v: &mut Vec<&SpanRecord>| v.sort_by_key(|s| (s.start_us, s.id));
        sort(&mut roots);
        for v in children.values_mut() {
            sort(v);
        }
        let mut out = format!(
            "{{\"request_id\":{},\"method\":{},\"latency_us\":{},\"outcome\":{},\"coalesced\":{},\"run_id\":{},\"span_count\":{},\"spans\":[",
            json_string(&self.request_id),
            json_string(&self.method),
            self.latency_us,
            json_string(&self.outcome),
            self.coalesced,
            match &self.run_id {
                Some(id) => json_string(id),
                None => "null".to_string(),
            },
            self.spans.len()
        );
        for (i, root) in roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            render_node(&mut out, root, &children);
        }
        out.push_str("]}");
        out
    }
}

fn render_node(out: &mut String, span: &SpanRecord, children: &HashMap<u64, Vec<&SpanRecord>>) {
    out.push_str(&format!(
        "{{\"name\":{},\"start_us\":{},\"dur_us\":{},\"attrs\":{{",
        json_string(&span.name),
        span.start_us,
        span.dur_us
    ));
    for (i, (k, v)) in span.attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{}", json_string(k), json_string(v)));
    }
    out.push_str("},\"children\":[");
    if let Some(kids) = children.get(&span.id) {
        for (i, kid) in kids.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            render_node(out, kid, children);
        }
    }
    out.push_str("]}");
}

/// Bounded retention of completed request traces: the `cap` most recent
/// plus the `cap` slowest, deduplicated on lookup. Not itself
/// synchronized — [`crate::Live`] wraps it in a mutex.
#[derive(Debug)]
pub struct TraceStore {
    cap: usize,
    recent: VecDeque<Arc<RequestTrace>>,
    /// Sorted by `latency_us` descending; ties keep the earlier arrival.
    slowest: Vec<Arc<RequestTrace>>,
}

impl Default for TraceStore {
    fn default() -> Self {
        TraceStore::new(32)
    }
}

impl TraceStore {
    pub fn new(cap: usize) -> TraceStore {
        TraceStore {
            cap: cap.max(1),
            recent: VecDeque::new(),
            slowest: Vec::new(),
        }
    }

    pub fn record(&mut self, trace: Arc<RequestTrace>) {
        if self.recent.len() == self.cap {
            self.recent.pop_front();
        }
        self.recent.push_back(trace.clone());
        let pos = self
            .slowest
            .partition_point(|t| t.latency_us >= trace.latency_us);
        if pos < self.cap {
            self.slowest.insert(pos, trace);
            self.slowest.truncate(self.cap);
        }
    }

    /// Look a trace up by request id in either ring.
    pub fn find(&self, request_id: &str) -> Option<Arc<RequestTrace>> {
        self.recent
            .iter()
            .rev()
            .chain(self.slowest.iter())
            .find(|t| t.request_id == request_id)
            .cloned()
    }

    pub fn len(&self) -> usize {
        self.recent.len()
    }

    pub fn is_empty(&self) -> bool {
        self.recent.is_empty()
    }

    /// The `/debug/requests` body: recent (newest first) and slowest
    /// summary lists.
    pub fn summaries_json(&self) -> String {
        let render = |traces: &mut dyn Iterator<Item = &Arc<RequestTrace>>| {
            let mut out = String::from("[");
            for (i, t) in traces.enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&t.summary_json());
            }
            out.push(']');
            out
        };
        format!(
            "{{\"recent\":{},\"slowest\":{}}}",
            render(&mut self.recent.iter().rev()),
            render(&mut self.slowest.iter())
        )
    }
}

/// Pre-computed per-method latency quantiles, published next to the raw
/// histograms so dashboards need no bucket interpolation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MethodQuantiles {
    pub method: String,
    pub count: u64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
}

/// Exact nearest-rank p50/p95/p99 over a sample window. Sorts in place;
/// returns zeros for an empty slice.
pub fn quantiles_us(samples: &mut [u64]) -> (u64, u64, u64) {
    if samples.is_empty() {
        return (0, 0, 0);
    }
    samples.sort_unstable();
    let rank = |q: f64| {
        let idx = ((q * samples.len() as f64).ceil() as usize).max(1) - 1;
        samples[idx.min(samples.len() - 1)]
    };
    (rank(0.50), rank(0.95), rank(0.99))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: Option<u64>, name: &str, start_us: u64, dur_us: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.to_string(),
            attrs: vec![("file".to_string(), "a.c".to_string())],
            start_us,
            dur_us,
            tid: 0,
        }
    }

    fn trace(id: &str, latency_us: u64) -> Arc<RequestTrace> {
        Arc::new(RequestTrace {
            request_id: id.to_string(),
            method: "analyze".to_string(),
            latency_us,
            outcome: "ok".to_string(),
            coalesced: false,
            run_id: Some("r123".to_string()),
            spans: vec![
                span(1, None, "request", 0, latency_us),
                span(2, Some(1), "serve_run", 1, latency_us / 2),
            ],
        })
    }

    #[test]
    fn tree_json_nests_children_under_parents() {
        let t = trace("req-1", 100);
        let json = t.tree_json();
        assert!(json.contains("\"request_id\":\"req-1\""), "{json}");
        assert!(json.contains("\"span_count\":2"), "{json}");
        // serve_run appears inside request's children array.
        let request_pos = json.find("\"name\":\"request\"").unwrap();
        let child_pos = json.find("\"name\":\"serve_run\"").unwrap();
        assert!(child_pos > request_pos);
        assert!(
            json.contains("\"children\":[{\"name\":\"serve_run\""),
            "{json}"
        );
    }

    #[test]
    fn orphan_spans_surface_as_roots() {
        let t = RequestTrace {
            request_id: "req-2".into(),
            method: "explain".into(),
            latency_us: 5,
            outcome: "ok".into(),
            coalesced: false,
            run_id: None,
            spans: vec![span(7, Some(99), "dangling", 0, 5)],
        };
        let json = t.tree_json();
        assert!(json.contains("\"span_count\":1"), "{json}");
        assert!(json.contains("\"spans\":[{\"name\":\"dangling\""), "{json}");
        assert!(json.contains("\"run_id\":null"), "{json}");
    }

    #[test]
    fn store_retains_recent_and_slowest_separately() {
        let mut store = TraceStore::new(2);
        store.record(trace("slow", 1000));
        store.record(trace("a", 1));
        store.record(trace("b", 2));
        store.record(trace("c", 3));
        // "slow" fell out of the recent ring but lives in slowest.
        assert!(store.find("slow").is_some());
        assert!(store.find("c").is_some());
        assert!(store.find("a").is_none(), "evicted from both rings");
        let json = store.summaries_json();
        let recent = json.split("\"slowest\"").next().unwrap();
        assert!(recent.contains("\"request_id\":\"c\""), "{json}");
        assert!(!recent.contains("\"request_id\":\"slow\""), "{json}");
        let slowest = json.split("\"slowest\"").nth(1).unwrap();
        assert!(slowest.contains("\"request_id\":\"slow\""), "{json}");
    }

    #[test]
    fn slowest_ring_is_bounded_and_sorted() {
        let mut store = TraceStore::new(3);
        for (i, lat) in [5u64, 50, 10, 500, 1].iter().enumerate() {
            store.record(trace(&format!("t{i}"), *lat));
        }
        let lats: Vec<u64> = store.slowest.iter().map(|t| t.latency_us).collect();
        assert_eq!(lats, vec![500, 50, 10]);
    }

    #[test]
    fn quantiles_are_exact_nearest_rank() {
        let mut samples: Vec<u64> = (1..=100).collect();
        let (p50, p95, p99) = quantiles_us(&mut samples);
        assert_eq!((p50, p95, p99), (50, 95, 99));
        let (a, b, c) = quantiles_us(&mut [42]);
        assert_eq!((a, b, c), (42, 42, 42));
        assert_eq!(quantiles_us(&mut []), (0, 0, 0));
    }
}
