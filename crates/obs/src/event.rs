//! Streaming telemetry events.
//!
//! A [`Recorder`](crate::Recorder) with one or more [`EventSink`]s
//! attached emits an [`Event`] for every span open, span close, counter
//! increment, and histogram observation — *while* the run is executing,
//! not as an end-of-run snapshot. Long-running drivers (`ofence watch`,
//! the future analysis server) use this to expose live progress without
//! waiting for a run to finish.
//!
//! Two sinks ship with the crate:
//!
//! * [`NdjsonSink`] — serializes every event as one JSON object per line
//!   (NDJSON) into any `Write` target; `ofence analyze --events-out`
//!   streams a whole run to a file or stdout.
//! * [`RingSink`] — keeps the last `capacity` events in a bounded
//!   in-memory ring buffer, so an unbounded watch session holds a
//!   constant amount of telemetry memory. Older events are dropped (and
//!   counted) rather than accumulated.
//!
//! Events are emitted under the recorder's internal lock, so the stream
//! is totally ordered: a `span_open` always precedes its `span_close`,
//! and sinks never observe a close without its open.

use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One telemetry event, emitted live as the recorder is driven.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A span was opened (its duration is not yet known).
    SpanOpen {
        /// Recorder-unique span id; the matching close carries the same id.
        id: u64,
        name: String,
        attrs: Vec<(String, String)>,
        /// Microseconds since the recorder epoch.
        ts_us: u64,
        /// Dense thread number (same numbering as [`crate::SpanRecord::tid`]).
        tid: u64,
    },
    /// A span was closed.
    SpanClose {
        id: u64,
        name: String,
        ts_us: u64,
        dur_us: u64,
        tid: u64,
    },
    /// A counter was incremented by `delta`.
    Counter {
        name: String,
        delta: u64,
        ts_us: u64,
    },
    /// A histogram observation was recorded.
    Observe {
        name: String,
        value: u64,
        ts_us: u64,
    },
}

impl Event {
    /// The event's kind tag as it appears in the NDJSON `ev` field.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::SpanOpen { .. } => "span_open",
            Event::SpanClose { .. } => "span_close",
            Event::Counter { .. } => "counter",
            Event::Observe { .. } => "observe",
        }
    }

    /// One NDJSON line (no trailing newline): a flat JSON object with an
    /// `ev` discriminator. Span attributes become an `attrs` object.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::with_capacity(96);
        match self {
            Event::SpanOpen {
                id,
                name,
                attrs,
                ts_us,
                tid,
            } => {
                out.push_str(&format!(
                    "{{\"ev\":\"span_open\",\"id\":{id},\"name\":{},\"ts_us\":{ts_us},\"tid\":{tid}",
                    crate::json_string(name)
                ));
                if !attrs.is_empty() {
                    out.push_str(",\"attrs\":{");
                    for (i, (k, v)) in attrs.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&crate::json_string(k));
                        out.push(':');
                        out.push_str(&crate::json_string(v));
                    }
                    out.push('}');
                }
                out.push('}');
            }
            Event::SpanClose {
                id,
                name,
                ts_us,
                dur_us,
                tid,
            } => {
                out.push_str(&format!(
                    "{{\"ev\":\"span_close\",\"id\":{id},\"name\":{},\"ts_us\":{ts_us},\"dur_us\":{dur_us},\"tid\":{tid}}}",
                    crate::json_string(name)
                ));
            }
            Event::Counter { name, delta, ts_us } => {
                out.push_str(&format!(
                    "{{\"ev\":\"counter\",\"name\":{},\"delta\":{delta},\"ts_us\":{ts_us}}}",
                    crate::json_string(name)
                ));
            }
            Event::Observe { name, value, ts_us } => {
                out.push_str(&format!(
                    "{{\"ev\":\"observe\",\"name\":{},\"value\":{value},\"ts_us\":{ts_us}}}",
                    crate::json_string(name)
                ));
            }
        }
        out
    }
}

/// A live consumer of telemetry events.
///
/// Implementations must be cheap and must never panic: sinks run inside
/// the recorder's lock on the analysis hot path. I/O errors are the
/// sink's problem (count them, drop the event) — telemetry must not be
/// able to fail an analysis.
pub trait EventSink: Send + Sync {
    fn emit(&self, event: &Event);

    /// Flush any buffered output. Called by drivers at end of run / end
    /// of iteration; a no-op for unbuffered sinks.
    fn flush(&self) {}
}

/// Streams events as NDJSON into any `Write` target (file, stdout,
/// `Vec<u8>`); writes are buffered by the caller's writer choice.
pub struct NdjsonSink {
    out: Mutex<Box<dyn Write + Send>>,
    emitted: AtomicU64,
    write_errors: AtomicU64,
}

impl NdjsonSink {
    pub fn new(writer: impl Write + Send + 'static) -> NdjsonSink {
        NdjsonSink {
            out: Mutex::new(Box::new(writer)),
            emitted: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
        }
    }

    /// Events successfully written so far.
    pub fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }

    /// Events dropped because the underlying writer failed.
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }
}

impl EventSink for NdjsonSink {
    fn emit(&self, event: &Event) {
        let mut line = event.to_ndjson();
        line.push('\n');
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        if out.write_all(line.as_bytes()).is_ok() {
            self.emitted.fetch_add(1, Ordering::Relaxed);
        } else {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn flush(&self) {
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        let _ = out.flush();
    }
}

/// Bounded in-memory event buffer: keeps the newest `capacity` events,
/// dropping (and counting) the oldest. Memory use is O(capacity) no
/// matter how long the session runs.
pub struct RingSink {
    capacity: usize,
    buf: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
    total: AtomicU64,
}

impl RingSink {
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity: capacity.max(1),
            buf: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 4096))),
            dropped: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently buffered (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever emitted into this sink.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Events evicted to keep the buffer bounded.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// A copy of the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.buf
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Drain the buffer, returning the events oldest first.
    pub fn drain(&self) -> Vec<Event> {
        self.buf
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect()
    }
}

impl EventSink for RingSink {
    fn emit(&self, event: &Event) {
        self.total.fetch_add(1, Ordering::Relaxed);
        let mut buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        if buf.len() == self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;
    use std::sync::Arc;

    /// An in-memory NDJSON sink test helper: the writer appends into a
    /// shared buffer the test can read back.
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn ndjson_of(f: impl FnOnce(&Recorder)) -> String {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::new(NdjsonSink::new(SharedBuf(buf.clone())));
        let rec = Recorder::new();
        rec.add_sink(sink.clone());
        f(&rec);
        sink.flush();
        let bytes = buf.lock().unwrap().clone();
        String::from_utf8(bytes).unwrap()
    }

    #[test]
    fn events_stream_in_order() {
        let text = ndjson_of(|rec| {
            let _run = rec.span("run");
            rec.count("files", 2);
            drop(rec.span_with("parse", &[("file", "a.c")]));
            rec.observe("dur", 7);
        });
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6, "{text}");
        assert!(lines[0].contains("\"ev\":\"span_open\"") && lines[0].contains("\"run\""));
        assert!(lines[1].contains("\"ev\":\"counter\"") && lines[1].contains("\"delta\":2"));
        assert!(lines[2].contains("\"ev\":\"span_open\"") && lines[2].contains("\"parse\""));
        assert!(lines[2].contains("\"attrs\":{\"file\":\"a.c\"}"));
        assert!(lines[3].contains("\"ev\":\"span_close\"") && lines[3].contains("\"parse\""));
        assert!(lines[4].contains("\"ev\":\"observe\"") && lines[4].contains("\"value\":7"));
        assert!(lines[5].contains("\"ev\":\"span_close\"") && lines[5].contains("\"run\""));
    }

    #[test]
    fn open_and_close_share_id() {
        let text = ndjson_of(|rec| drop(rec.span("x")));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let id_of = |line: &str| {
            let i = line.find("\"id\":").unwrap() + 5;
            line[i..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
        };
        assert_eq!(id_of(lines[0]), id_of(lines[1]));
    }

    #[test]
    fn ndjson_escapes_names() {
        let ev = Event::Counter {
            name: "we\"ird\nname".into(),
            delta: 1,
            ts_us: 0,
        };
        let line = ev.to_ndjson();
        assert!(line.contains("we\\\"ird\\nname"), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn ring_sink_is_bounded() {
        let ring = RingSink::new(4);
        for i in 0..10 {
            ring.emit(&Event::Counter {
                name: format!("c{i}"),
                delta: 1,
                ts_us: i,
            });
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.total(), 10);
        assert_eq!(ring.dropped(), 6);
        let kept = ring.events();
        assert!(matches!(&kept[0], Event::Counter { ts_us: 6, .. }));
        assert!(matches!(&kept[3], Event::Counter { ts_us: 9, .. }));
        assert_eq!(ring.drain().len(), 4);
        assert!(ring.is_empty());
    }

    #[test]
    fn sinks_do_not_alter_snapshots() {
        let ring = Arc::new(RingSink::new(16));
        let rec = Recorder::new();
        rec.add_sink(ring.clone());
        drop(rec.span("a"));
        rec.count("x", 3);
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.count_of("x"), 3);
        assert_eq!(ring.total(), 3); // open + close + counter
    }

    #[test]
    fn reset_keeps_sinks_attached() {
        let ring = Arc::new(RingSink::new(16));
        let rec = Recorder::new();
        rec.add_sink(ring.clone());
        rec.count("x", 1);
        rec.reset();
        rec.count("x", 1);
        assert_eq!(ring.total(), 2, "events keep flowing across resets");
    }

    #[test]
    fn failing_writer_counts_errors() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("nope"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = NdjsonSink::new(Broken);
        sink.emit(&Event::Counter {
            name: "x".into(),
            delta: 1,
            ts_us: 0,
        });
        assert_eq!(sink.emitted(), 0);
        assert_eq!(sink.write_errors(), 1);
    }
}
