//! # obs — the pipeline observability layer
//!
//! Zero-dependency structured spans, counters, and histograms shared by
//! every crate of the OFence pipeline. A [`Recorder`] is cheap enough to
//! always be on: hot loops batch their counts locally and flush once, and
//! spans are opened per file / per phase, never per statement.
//!
//! Three consumers sit on top of one [`Snapshot`]:
//!
//! * [`Snapshot::chrome_trace_json`] — a `chrome://tracing` /
//!   Perfetto-compatible span file (`ofence analyze --trace-out`),
//! * [`Snapshot::prometheus_text`] — Prometheus text-format metrics
//!   (`ofence analyze --metrics-out`),
//! * phase aggregation ([`Snapshot::total_us_of`],
//!   [`Snapshot::attr_totals`]) — the per-phase sub-timings and
//!   "top 5 slowest files" lines of `Stats::render`.
//!
//! ```
//! let rec = obs::Recorder::new();
//! {
//!     let _run = rec.span("analyze");
//!     let _p = rec.span_with("parse", &[("file", "a.c")]);
//!     rec.count("barriers_seen", 2);
//! }
//! let snap = rec.snapshot();
//! assert_eq!(snap.count_of("barriers_seen"), 2);
//! assert!(snap.chrome_trace_json().contains("\"parse\""));
//! ```

mod event;
pub mod request;
pub mod serve;

pub use event::{Event, EventSink, NdjsonSink, RingSink};
pub use request::{quantiles_us, MethodQuantiles, RequestTrace, TraceStore};
pub use serve::{Live, MetricsServer};

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

/// A finished span: a named interval with attributes, thread, and parent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within this recorder (monotonic open order).
    pub id: u64,
    /// Id of the span that was open on the same thread when this one
    /// started, if any.
    pub parent: Option<u64>,
    pub name: String,
    pub attrs: Vec<(String, String)>,
    /// Microseconds since the recorder was created/reset.
    pub start_us: u64,
    pub dur_us: u64,
    /// Small dense thread number (0 = first thread seen).
    pub tid: u64,
}

impl SpanRecord {
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    pub fn end_us(&self) -> u64 {
        self.start_us + self.dur_us
    }

    /// Does this span's interval contain the other's?
    pub fn contains(&self, other: &SpanRecord) -> bool {
        self.start_us <= other.start_us && other.end_us() <= self.end_us()
    }
}

/// Exponential bucket upper bounds used by every histogram (unit-free;
/// callers pick the unit, e.g. microseconds or item counts).
pub const BUCKET_BOUNDS: [u64; 12] = [
    1, 2, 5, 10, 25, 50, 100, 500, 1_000, 10_000, 100_000, 1_000_000,
];

/// A fixed-bucket histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// `buckets[i]` counts observations `<= BUCKET_BOUNDS[i]`; values above
    /// the last bound only appear in `count`/`sum` (the `+Inf` bucket).
    pub buckets: [u64; BUCKET_BOUNDS.len()],
    pub count: u64,
    pub sum: u64,
}

impl Histogram {
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        for (i, &bound) in BUCKET_BOUNDS.iter().enumerate() {
            if value <= bound {
                self.buckets[i] += 1;
            }
        }
    }
}

#[derive(Debug)]
struct OpenSpan {
    id: u64,
    name: String,
    attrs: Vec<(String, String)>,
    start: Instant,
}

#[derive(Default)]
struct Inner {
    spans: Vec<SpanRecord>,
    /// Per-thread stack of open spans (nesting is per thread).
    open: HashMap<ThreadId, Vec<OpenSpan>>,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    /// ThreadId -> dense small number for trace output.
    tids: HashMap<ThreadId, u64>,
    next_span_id: u64,
    /// Live event consumers. Emission happens under this struct's lock,
    /// so every sink observes a totally ordered stream (an open always
    /// precedes its close).
    sinks: Vec<Arc<dyn EventSink>>,
}

impl Inner {
    fn tid_no(&mut self, tid: ThreadId) -> u64 {
        let next = self.tids.len() as u64;
        *self.tids.entry(tid).or_insert(next)
    }

    fn emit(&self, ev: &Event) {
        for sink in &self.sinks {
            sink.emit(ev);
        }
    }
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("spans", &self.spans.len())
            .field("counters", &self.counters)
            .field("histograms", &self.histograms.len())
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

/// Thread-safe recorder for spans, counters, and histograms.
///
/// All methods take `&self`; a recorder can be shared freely across the
/// engine's scoped worker threads.
#[derive(Debug)]
pub struct Recorder {
    epoch: Instant,
    inner: Mutex<Inner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    pub fn new() -> Recorder {
        Recorder {
            epoch: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Drop all recorded data (spans, counters, histograms). Open spans
    /// survive a reset: they re-register on close. The engine resets at
    /// the start of every run so incremental re-analysis reports per-run,
    /// not cumulative, numbers. Attached sinks survive resets: the event
    /// stream spans the process lifetime, not one run.
    pub fn reset(&self) {
        let mut inner = self.lock();
        inner.spans.clear();
        inner.counters.clear();
        inner.histograms.clear();
    }

    /// Attach a live event sink; every span open/close, counter add, and
    /// histogram observation is forwarded to it as it happens. Multiple
    /// sinks all receive every event. With no sinks attached (the
    /// default), the streaming path costs one empty-vec check.
    pub fn add_sink(&self, sink: Arc<dyn EventSink>) {
        self.lock().sinks.push(sink);
    }

    /// Detach all sinks (the reverse of [`Recorder::add_sink`]).
    pub fn clear_sinks(&self) {
        self.lock().sinks.clear();
    }

    /// Flush every attached sink (end of run / end of iteration).
    pub fn flush_sinks(&self) {
        // Clone the sink list out so flush (which may do I/O) runs
        // without holding the recorder lock.
        let sinks = self.lock().sinks.clone();
        for sink in sinks {
            sink.flush();
        }
    }

    /// Open a span; it closes when the guard drops.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        self.span_with(name, &[])
    }

    /// Open a span with attributes (e.g. `[("file", "mm/ksm.c")]`).
    pub fn span_with(&self, name: &str, attrs: &[(&str, &str)]) -> SpanGuard<'_> {
        let tid = std::thread::current().id();
        let start = Instant::now();
        let mut inner = self.lock();
        let id = inner.next_span_id;
        inner.next_span_id += 1;
        let attrs: Vec<(String, String)> = attrs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let tid_no = inner.tid_no(tid);
        if !inner.sinks.is_empty() {
            inner.emit(&Event::SpanOpen {
                id,
                name: name.to_string(),
                attrs: attrs.clone(),
                ts_us: start.saturating_duration_since(self.epoch).as_micros() as u64,
                tid: tid_no,
            });
        }
        inner.open.entry(tid).or_default().push(OpenSpan {
            id,
            name: name.to_string(),
            attrs,
            start,
        });
        SpanGuard { rec: self, id }
    }

    /// Open a span and return its raw id instead of a guard. For callers
    /// that need `&mut self` access between open and close (a guard would
    /// hold the recorder borrowed); close with [`Recorder::close`].
    pub fn open(&self, name: &str) -> u64 {
        let guard = self.span(name);
        let id = guard.id;
        std::mem::forget(guard);
        id
    }

    /// Close a span opened with [`Recorder::open`]. Must run on the same
    /// thread that opened it (span stacks are per-thread).
    pub fn close(&self, id: u64) {
        self.close_span(id);
    }

    /// Add to a named monotonic counter.
    pub fn count(&self, name: &str, delta: u64) {
        if delta == 0 {
            return;
        }
        let mut inner = self.lock();
        *inner.counters.entry(name.to_string()).or_default() += delta;
        if !inner.sinks.is_empty() {
            inner.emit(&Event::Counter {
                name: name.to_string(),
                delta,
                ts_us: self.epoch.elapsed().as_micros() as u64,
            });
        }
    }

    /// Record one observation into a named histogram.
    pub fn observe(&self, name: &str, value: u64) {
        let mut inner = self.lock();
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
        if !inner.sinks.is_empty() {
            inner.emit(&Event::Observe {
                name: name.to_string(),
                value,
                ts_us: self.epoch.elapsed().as_micros() as u64,
            });
        }
    }

    /// Microseconds since creation/last `Instant` epoch.
    pub fn elapsed_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Copy out everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        let mut spans = inner.spans.clone();
        spans.sort_by_key(|s| (s.start_us, s.id));
        Snapshot {
            spans,
            counters: inner.counters.clone(),
            histograms: inner.histograms.clone(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned lock only means a worker panicked mid-span; the
        // telemetry itself is still consistent.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn close_span(&self, id: u64) {
        let tid = std::thread::current().id();
        let end = Instant::now();
        let mut inner = self.lock();
        let tid_no = inner.tid_no(tid);
        let stack = inner.open.entry(tid).or_default();
        let Some(pos) = stack.iter().rposition(|s| s.id == id) else {
            return; // closed twice or across threads; ignore
        };
        let span = stack.remove(pos);
        let parent = stack.last().map(|s| s.id);
        let start_us = span.start.saturating_duration_since(self.epoch).as_micros() as u64;
        let dur_us = end.saturating_duration_since(span.start).as_micros() as u64;
        if !inner.sinks.is_empty() {
            inner.emit(&Event::SpanClose {
                id: span.id,
                name: span.name.clone(),
                ts_us: end.saturating_duration_since(self.epoch).as_micros() as u64,
                dur_us,
                tid: tid_no,
            });
        }
        inner.spans.push(SpanRecord {
            id: span.id,
            parent,
            name: span.name,
            attrs: span.attrs,
            start_us,
            dur_us,
            tid: tid_no,
        });
    }
}

/// Ends its span when dropped.
#[must_use = "the span closes when the guard drops"]
pub struct SpanGuard<'a> {
    rec: &'a Recorder,
    id: u64,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.rec.close_span(self.id);
    }
}

/// An immutable copy of a recorder's data, plus the exporters.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    pub spans: Vec<SpanRecord>,
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, Histogram>,
}

impl Snapshot {
    pub fn count_of(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Fold this run's counters into a cumulative map. Long-running
    /// drivers (e.g. a watch loop) reset their recorder every iteration;
    /// this keeps a process-lifetime view for exported metrics.
    pub fn accumulate_counters(&self, acc: &mut BTreeMap<String, u64>) {
        for (name, value) in &self.counters {
            *acc.entry(name.clone()).or_default() += value;
        }
    }

    /// A copy of this snapshot with extra counters merged in (added to
    /// any existing value) — lets a driver export its own counters next
    /// to the engine's.
    pub fn with_counters(&self, extra: impl IntoIterator<Item = (String, u64)>) -> Snapshot {
        let mut out = self.clone();
        for (name, value) in extra {
            *out.counters.entry(name).or_default() += value;
        }
        out
    }

    /// A copy of this snapshot with a whole histogram inserted under
    /// `name` (replacing any existing one) — lets a driver export a
    /// session-cumulative histogram (e.g. `iteration_duration_us` across
    /// all watch iterations) next to the engine's per-run data.
    pub fn with_histogram(&self, name: &str, histogram: Histogram) -> Snapshot {
        let mut out = self.clone();
        out.histograms.insert(name.to_string(), histogram);
        out
    }

    /// All finished spans with the given name.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRecord> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Total duration of all spans with the given name, in microseconds.
    /// For per-file spans running on parallel workers this is CPU time
    /// summed across threads, not wall-clock.
    pub fn total_us_of(&self, name: &str) -> u64 {
        self.spans_named(name).map(|s| s.dur_us).sum()
    }

    /// Sum span durations grouped by the value of an attribute (e.g. total
    /// time per `file` across parse/cfg/extract spans), sorted descending.
    pub fn attr_totals(&self, attr_key: &str) -> Vec<(String, u64)> {
        let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
        for s in &self.spans {
            if let Some(v) = s.attr(attr_key) {
                *totals.entry(v).or_default() += s.dur_us;
            }
        }
        let mut out: Vec<(String, u64)> = totals
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Chrome-tracing / Perfetto JSON (`{"traceEvents": [...]}` with
    /// complete `"ph": "X"` events).
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"cat\":\"ofence\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{",
                json_string(&s.name),
                s.start_us,
                s.dur_us,
                s.tid
            ));
            for (j, (k, v)) in s.attrs.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{}:{}", json_string(k), json_string(v)));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Prometheus text exposition format: counters, span-duration gauges
    /// per span name, and histograms.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let metric = sanitize_metric_name(&format!("ofence_{name}_total"));
            out.push_str(&format!("# TYPE {metric} counter\n{metric} {value}\n"));
        }
        let mut names: Vec<&str> = self.spans.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        if !names.is_empty() {
            out.push_str("# TYPE ofence_span_duration_seconds gauge\n");
            for name in names {
                out.push_str(&format!(
                    "ofence_span_duration_seconds{{span={}}} {}\n",
                    json_string(name),
                    self.total_us_of(name) as f64 / 1e6
                ));
            }
        }
        for (name, h) in &self.histograms {
            let metric = sanitize_metric_name(&format!("ofence_{name}"));
            out.push_str(&format!("# TYPE {metric} histogram\n"));
            for (i, &bound) in BUCKET_BOUNDS.iter().enumerate() {
                out.push_str(&format!(
                    "{metric}_bucket{{le=\"{bound}\"}} {}\n",
                    h.buckets[i]
                ));
            }
            out.push_str(&format!("{metric}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{metric}_sum {}\n", h.sum));
            out.push_str(&format!("{metric}_count {}\n", h.count));
        }
        out
    }
}

/// JSON-escape a string, with quotes.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`.
pub(crate) fn sanitize_metric_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_per_thread() {
        let rec = Recorder::new();
        {
            let _outer = rec.span("outer");
            {
                let _inner = rec.span_with("inner", &[("file", "a.c")]);
            }
        }
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let outer = snap.spans_named("outer").next().unwrap();
        let inner = snap.spans_named("inner").next().unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert!(outer.contains(inner));
        assert_eq!(inner.attr("file"), Some("a.c"));
    }

    #[test]
    fn sibling_spans_share_parent() {
        let rec = Recorder::new();
        {
            let _root = rec.span("root");
            drop(rec.span("a"));
            drop(rec.span("b"));
        }
        let snap = rec.snapshot();
        let root_id = snap.spans_named("root").next().unwrap().id;
        assert_eq!(snap.spans_named("a").next().unwrap().parent, Some(root_id));
        assert_eq!(snap.spans_named("b").next().unwrap().parent, Some(root_id));
    }

    #[test]
    fn threads_do_not_inherit_parents() {
        let rec = Recorder::new();
        let _outer = rec.span("outer");
        std::thread::scope(|s| {
            s.spawn(|| drop(rec.span("worker")));
        });
        drop(_outer);
        let snap = rec.snapshot();
        let worker = snap.spans_named("worker").next().unwrap();
        assert_eq!(worker.parent, None, "nesting is per-thread");
        let outer = snap.spans_named("outer").next().unwrap();
        assert_ne!(worker.tid, outer.tid);
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let rec = Recorder::new();
        rec.count("x", 2);
        rec.count("x", 3);
        rec.count("zero", 0);
        assert_eq!(rec.snapshot().count_of("x"), 5);
        assert!(!rec.snapshot().counters.contains_key("zero"));
        rec.reset();
        assert_eq!(rec.snapshot().count_of("x"), 0);
        rec.count("x", 1);
        assert_eq!(
            rec.snapshot().count_of("x"),
            1,
            "post-reset counts are per-run"
        );
    }

    #[test]
    fn counters_are_thread_safe() {
        let rec = Recorder::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        rec.count("hits", 1);
                    }
                });
            }
        });
        assert_eq!(rec.snapshot().count_of("hits"), 8000);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut h = Histogram::default();
        h.observe(1);
        h.observe(7);
        h.observe(2_000_000); // beyond the last bound: +Inf only
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 2_000_008);
        assert_eq!(h.buckets[0], 1); // <= 1
        assert_eq!(h.buckets[3], 2); // <= 10
        assert_eq!(h.buckets[BUCKET_BOUNDS.len() - 1], 2); // <= 1e6
    }

    #[test]
    fn chrome_trace_shape() {
        let rec = Recorder::new();
        drop(rec.span_with("parse", &[("file", "a\"b.c")]));
        let json = rec.snapshot().chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\\\"")); // attribute value is escaped
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn prometheus_text_shape() {
        let rec = Recorder::new();
        rec.count("pairs considered", 4);
        rec.observe("window_stmts", 12);
        drop(rec.span("pair"));
        let text = rec.snapshot().prometheus_text();
        assert!(text.contains("# TYPE ofence_pairs_considered_total counter"));
        assert!(text.contains("ofence_pairs_considered_total 4"));
        assert!(text.contains("ofence_span_duration_seconds{span=\"pair\"}"));
        assert!(text.contains("ofence_window_stmts_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("ofence_window_stmts_count 1"));
    }

    #[test]
    fn attr_totals_sorted_descending() {
        let rec = Recorder::new();
        {
            let _a = rec.span_with("parse", &[("file", "slow.c")]);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        drop(rec.span_with("parse", &[("file", "fast.c")]));
        let totals = rec.snapshot().attr_totals("file");
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0].0, "slow.c");
        assert!(totals[0].1 >= totals[1].1);
    }

    #[test]
    fn open_spans_do_not_appear_in_snapshot() {
        let rec = Recorder::new();
        let guard = rec.span("still-open");
        assert_eq!(rec.snapshot().spans.len(), 0);
        drop(guard);
        assert_eq!(rec.snapshot().spans.len(), 1);
    }
}
