//! A zero-dependency live metrics endpoint.
//!
//! [`Live`] is the shared state a long-running driver (today: `ofence
//! watch`; tomorrow: the analysis daemon of ROADMAP item 1) publishes
//! into after every analysis run. [`serve`] binds a `std::net::
//! TcpListener` and answers two routes from that state on a background
//! thread:
//!
//! * `GET /metrics` — the latest run's Prometheus text (the exact output
//!   of [`crate::Snapshot::prometheus_text`]), pre-rendered at publish
//!   time so a scrape never observes a half-updated snapshot;
//! * `GET /health` — a small JSON document: run count, last-iteration
//!   duration, cache hit rate, and deviation totals.
//!
//! The server is deliberately minimal — HTTP/1.x, `Connection: close`,
//! one short-lived thread per connection — because its only clients are
//! scrapers (`curl`, Prometheus) hitting it a few times a minute. No
//! external crates, no async runtime.

use crate::request::{MethodQuantiles, RequestTrace, TraceStore};
use crate::{json_string, Snapshot};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

#[derive(Clone, Debug, Default)]
struct LiveState {
    /// Pre-rendered Prometheus text of the latest published snapshot.
    metrics_text: String,
    /// Analysis runs published so far.
    runs: u64,
    /// Wall-clock of the most recent run, in microseconds.
    last_iteration_us: u64,
    /// Deviations reported by the most recent run.
    deviations_total: u64,
    /// Cumulative cache hits / files analyzed across all published runs.
    cache_hits: u64,
    files_analyzed: u64,
    /// Daemon-mode request stats ([`Live::set_server_stats`]); `None`
    /// outside `ofence serve`, and the `/health` body omits them then.
    server: Option<ServerStats>,
    /// Point-in-time gauges ([`Live::set_gauge`], e.g.
    /// `serve_connections_active`). Rendered into `/metrics` and `/health`
    /// only once set, so drivers that never set one (watch, one-shot
    /// analyze) keep byte-identical output.
    gauges: BTreeMap<String, u64>,
    /// Per-method latency quantiles ([`Live::set_method_quantiles`]);
    /// empty outside the daemon, and omitted from all bodies then.
    method_quantiles: Vec<MethodQuantiles>,
}

#[derive(Clone, Copy, Debug, Default)]
struct ServerStats {
    queue_depth: u64,
    coalesced: u64,
    requests: u64,
}

/// Shared live telemetry: the publisher half is the analysis driver, the
/// consumer half is the HTTP server (and anything else holding the Arc).
///
/// All methods take `&self`; the state swap is atomic under one mutex,
/// so a concurrent scrape sees either the previous run's telemetry or
/// the new run's — never a torn mixture.
#[derive(Debug, Default)]
pub struct Live {
    inner: Mutex<LiveState>,
    /// Completed request traces, behind their own lock so recording a
    /// trace never contends with a concurrent scrape.
    traces: Mutex<TraceStore>,
}

impl Live {
    pub fn new() -> Live {
        Live::default()
    }

    /// Publish a finished run: its observability snapshot, the number of
    /// deviations it reported, and its wall-clock duration.
    pub fn publish(&self, snapshot: &Snapshot, deviations_total: u64, iteration_us: u64) {
        let metrics_text = snapshot.prometheus_text();
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.metrics_text = metrics_text;
        inner.runs += 1;
        inner.last_iteration_us = iteration_us;
        inner.deviations_total = deviations_total;
        inner.cache_hits += snapshot.count_of("engine_cache_hits");
        inner.files_analyzed += snapshot.count_of("engine_files_analyzed");
    }

    /// Publish daemon request stats (analysis daemon only): current
    /// queue depth plus cumulative coalesced-join and request counts.
    /// Once set, `/health` carries them.
    pub fn set_server_stats(&self, queue_depth: u64, coalesced: u64, requests: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.server = Some(ServerStats {
            queue_depth,
            coalesced,
            requests,
        });
    }

    /// Publish a point-in-time gauge (e.g. `serve_connections_active`).
    /// Gauges render into `/metrics` and `/health` from the first call
    /// on; drivers that never set one see unchanged output.
    pub fn set_gauge(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.gauges.insert(name.to_string(), value);
    }

    /// Publish per-method request-latency quantiles; they render into
    /// `/metrics` (summary lines) and `/health` (a `methods` object)
    /// once non-empty.
    pub fn set_method_quantiles(&self, quantiles: Vec<MethodQuantiles>) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.method_quantiles = quantiles;
    }

    /// Retain a completed request trace in the bounded recent/slowest
    /// rings behind `/debug/requests` and `/debug/trace/<id>`.
    pub fn record_trace(&self, trace: RequestTrace) {
        let mut traces = self.traces.lock().unwrap_or_else(|e| e.into_inner());
        traces.record(Arc::new(trace));
    }

    /// The full span tree of a captured trace, as JSON; `None` when the
    /// id is unknown or already evicted from both rings.
    pub fn trace_json(&self, request_id: &str) -> Option<String> {
        let traces = self.traces.lock().unwrap_or_else(|e| e.into_inner());
        traces.find(request_id).map(|t| t.tree_json())
    }

    /// The `/debug/requests` body: recent + slowest summaries.
    pub fn traces_summary_json(&self) -> String {
        let traces = self.traces.lock().unwrap_or_else(|e| e.into_inner());
        traces.summaries_json()
    }

    /// Runs published so far.
    pub fn runs(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).runs
    }

    /// The latest `/metrics` body (empty before the first publish),
    /// plus any gauges and per-method quantile summaries set since.
    pub fn metrics_text(&self) -> String {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = inner.metrics_text.clone();
        for (name, value) in &inner.gauges {
            let metric = crate::sanitize_metric_name(&format!("ofence_{name}"));
            out.push_str(&format!("# TYPE {metric} gauge\n{metric} {value}\n"));
        }
        if !inner.method_quantiles.is_empty() {
            out.push_str("# TYPE ofence_serve_method_duration_us summary\n");
            for q in &inner.method_quantiles {
                let method = json_string(&q.method);
                for (label, value) in [("0.5", q.p50_us), ("0.95", q.p95_us), ("0.99", q.p99_us)] {
                    out.push_str(&format!(
                        "ofence_serve_method_duration_us{{method={method},quantile=\"{label}\"}} {value}\n"
                    ));
                }
                out.push_str(&format!(
                    "ofence_serve_method_duration_us_count{{method={method}}} {}\n",
                    q.count
                ));
            }
        }
        out
    }

    /// The `/health` body: one flat JSON object.
    pub fn health_json(&self) -> String {
        let s = self.inner.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let seen = s.cache_hits + s.files_analyzed;
        let hit_rate = if seen > 0 {
            s.cache_hits as f64 / seen as f64
        } else {
            0.0
        };
        let server = match s.server {
            Some(v) => format!(
                ",\"queue_depth\":{},\"coalesced\":{},\"requests\":{}",
                v.queue_depth, v.coalesced, v.requests
            ),
            None => String::new(),
        };
        let mut extra = String::new();
        for (name, value) in &s.gauges {
            extra.push_str(&format!(",{}:{value}", json_string(name)));
        }
        if !s.method_quantiles.is_empty() {
            extra.push_str(",\"methods\":{");
            for (i, q) in s.method_quantiles.iter().enumerate() {
                if i > 0 {
                    extra.push(',');
                }
                extra.push_str(&format!(
                    "{}:{{\"count\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
                    json_string(&q.method),
                    q.count,
                    q.p50_us,
                    q.p95_us,
                    q.p99_us
                ));
            }
            extra.push('}');
        }
        format!(
            "{{\"status\":\"{}\",\"runs\":{},\"last_iteration_us\":{},\"cache_hit_rate\":{:.4},\"deviations_total\":{}{server}{extra}}}",
            if s.runs > 0 { "ok" } else { "starting" },
            s.runs,
            s.last_iteration_us,
            hit_rate,
            s.deviations_total
        )
    }
}

/// Handle on a running metrics server. Dropping it (or calling
/// [`MetricsServer::shutdown`]) stops the listener thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// The actually bound address — with `addr:0` the OS picks the port,
    /// and this is where callers learn it.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the listener thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_and_join();
        }
    }
}

/// Bind `addr` (e.g. `127.0.0.1:9464`, or port `0` to let the OS pick)
/// and serve `GET /metrics` + `GET /health` from `live` on a background
/// thread until the returned handle is shut down or dropped.
pub fn serve(addr: &str, live: Arc<Live>) -> Result<MetricsServer, String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = stop.clone();
    let handle = std::thread::Builder::new()
        .name("ofence-metrics".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if thread_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let live = live.clone();
                // One short-lived thread per connection: a slow or stuck
                // client must not block the next scrape.
                let _ = std::thread::Builder::new()
                    .name("ofence-metrics-conn".into())
                    .spawn(move || handle_connection(stream, &live));
            }
        })
        .map_err(|e| format!("spawn listener thread: {e}"))?;
    Ok(MetricsServer {
        addr: local,
        stop,
        handle: Some(handle),
    })
}

const ROUTES_HINT: &str = "/metrics, /health, /debug/requests, or /debug/trace/<request-id>";

fn handle_connection(mut stream: TcpStream, live: &Live) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let Some((method, path)) = read_request_line(&mut stream) else {
        return; // malformed head: nothing sensible to answer
    };
    let mut allow_header = "";
    let (status, content_type, body) = if method != "GET" {
        allow_header = "Allow: GET\r\n";
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            format!("method {method} not allowed; this endpoint is GET-only\n"),
        )
    } else {
        match path.as_str() {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                live.metrics_text(),
            ),
            "/health" => ("200 OK", "application/json", live.health_json()),
            "/debug/requests" => ("200 OK", "application/json", live.traces_summary_json()),
            p if p.starts_with("/debug/trace/") => {
                let id = &p["/debug/trace/".len()..];
                match live.trace_json(id) {
                    Some(json) => ("200 OK", "application/json", json),
                    None => (
                        "404 Not Found",
                        "text/plain; charset=utf-8",
                        format!("no captured trace for request id `{id}`; see /debug/requests\n"),
                    ),
                }
            }
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                format!("not found; try {ROUTES_HINT}\n"),
            ),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n{allow_header}Connection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// Read the request head (up to 8 KiB) and return the method and path of
/// the request line. `None` only on malformed requests — non-GET methods
/// are returned to the caller so it can answer `405`.
fn read_request_line(stream: &mut TcpStream) -> Option<(String, String)> {
    let mut buf = [0u8; 8192];
    let mut filled = 0usize;
    loop {
        if filled == buf.len() {
            return None; // oversized request head
        }
        let n = stream.read(&mut buf[filled..]).ok()?;
        if n == 0 {
            break;
        }
        filled += n;
        if buf[..filled].windows(4).any(|w| w == b"\r\n\r\n")
            || buf[..filled].windows(2).any(|w| w == b"\n\n")
        {
            break;
        }
    }
    let head = std::str::from_utf8(&buf[..filled]).ok()?;
    let request_line = head.lines().next()?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    // Ignore any query string; scrapers sometimes add one.
    let path = path.split('?').next().unwrap_or(path).to_string();
    Some((method.to_string(), path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has a header/body split");
        (head.to_string(), body.to_string())
    }

    fn sample_snapshot() -> Snapshot {
        let rec = Recorder::new();
        rec.count("watch_iterations", 1);
        rec.count("engine_cache_hits", 3);
        rec.count("engine_files_analyzed", 1);
        drop(rec.span("analyze"));
        rec.snapshot()
    }

    #[test]
    fn serves_metrics_and_health() {
        let live = Arc::new(Live::new());
        live.publish(&sample_snapshot(), 2, 1234);
        let server = serve("127.0.0.1:0", live.clone()).unwrap();
        let (head, body) = get(server.addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("text/plain"), "{head}");
        assert!(body.contains("ofence_watch_iterations_total 1"), "{body}");
        let (head, body) = get(server.addr(), "/health");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"runs\":1"), "{body}");
        assert!(body.contains("\"last_iteration_us\":1234"), "{body}");
        assert!(body.contains("\"cache_hit_rate\":0.75"), "{body}");
        assert!(body.contains("\"deviations_total\":2"), "{body}");
        server.shutdown();
    }

    #[test]
    fn unknown_route_is_404_and_lists_routes() {
        let live = Arc::new(Live::new());
        let server = serve("127.0.0.1:0", live).unwrap();
        let (head, body) = get(server.addr(), "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        for route in ["/metrics", "/health", "/debug/requests", "/debug/trace/"] {
            assert!(body.contains(route), "404 body should list {route}: {body}");
        }
        server.shutdown();
    }

    #[test]
    fn non_get_method_is_405_with_allow_header() {
        let live = Arc::new(Live::new());
        let server = serve("127.0.0.1:0", live).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, _) = response.split_once("\r\n\r\n").unwrap();
        assert!(head.starts_with("HTTP/1.1 405"), "{head}");
        assert!(head.contains("Allow: GET"), "{head}");
        server.shutdown();
    }

    #[test]
    fn debug_routes_serve_captured_traces() {
        let live = Arc::new(Live::new());
        let server = serve("127.0.0.1:0", live.clone()).unwrap();
        // Before any trace: empty rings, and trace lookup 404s.
        let (head, body) = get(server.addr(), "/debug/requests");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "{\"recent\":[],\"slowest\":[]}");
        let (head, _) = get(server.addr(), "/debug/trace/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        live.record_trace(crate::RequestTrace {
            request_id: "r-7".into(),
            method: "analyze".into(),
            latency_us: 4200,
            outcome: "ok".into(),
            coalesced: false,
            run_id: Some("run-1".into()),
            spans: vec![],
        });
        let (_, body) = get(server.addr(), "/debug/requests");
        assert!(body.contains("\"request_id\":\"r-7\""), "{body}");
        assert!(body.contains("\"latency_us\":4200"), "{body}");
        let (head, body) = get(server.addr(), "/debug/trace/r-7");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("\"span_count\":0"), "{body}");
        assert!(body.contains("\"run_id\":\"run-1\""), "{body}");
        server.shutdown();
    }

    #[test]
    fn gauges_and_quantiles_render_only_when_set() {
        let live = Live::new();
        live.publish(&sample_snapshot(), 0, 10);
        let before_metrics = live.metrics_text();
        let before_health = live.health_json();
        assert!(!before_metrics.contains("serve_connections_active"));
        assert!(!before_metrics.contains("quantile"));
        assert!(!before_health.contains("methods"));
        live.set_gauge("serve_connections_active", 3);
        live.set_method_quantiles(vec![crate::MethodQuantiles {
            method: "analyze".into(),
            count: 12,
            p50_us: 100,
            p95_us: 900,
            p99_us: 2000,
        }]);
        let metrics = live.metrics_text();
        assert!(
            metrics.contains("# TYPE ofence_serve_connections_active gauge"),
            "{metrics}"
        );
        assert!(
            metrics.contains("ofence_serve_connections_active 3"),
            "{metrics}"
        );
        assert!(
            metrics.contains(
                "ofence_serve_method_duration_us{method=\"analyze\",quantile=\"0.99\"} 2000"
            ),
            "{metrics}"
        );
        assert!(
            metrics.contains("ofence_serve_method_duration_us_count{method=\"analyze\"} 12"),
            "{metrics}"
        );
        let health = live.health_json();
        assert!(
            health.contains("\"serve_connections_active\":3"),
            "{health}"
        );
        assert!(
            health.contains(
                "\"analyze\":{\"count\":12,\"p50_us\":100,\"p95_us\":900,\"p99_us\":2000}"
            ),
            "{health}"
        );
        // Everything published before the daemon set these is untouched.
        assert!(live.metrics_text().starts_with(&before_metrics));
    }

    #[test]
    fn health_before_first_publish_reports_starting() {
        let live = Arc::new(Live::new());
        let server = serve("127.0.0.1:0", live).unwrap();
        let (head, body) = get(server.addr(), "/health");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("\"status\":\"starting\""), "{body}");
        assert!(body.contains("\"runs\":0"), "{body}");
        server.shutdown();
    }

    #[test]
    fn shutdown_frees_the_port() {
        let live = Arc::new(Live::new());
        let server = serve("127.0.0.1:0", live.clone()).unwrap();
        let addr = server.addr();
        server.shutdown();
        // After shutdown the listener is gone: a fresh bind to the same
        // port succeeds.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "{rebound:?}");
    }

    #[test]
    fn server_stats_appear_in_health_once_set() {
        let live = Arc::new(Live::new());
        live.publish(&sample_snapshot(), 0, 10);
        assert!(!live.health_json().contains("queue_depth"));
        live.set_server_stats(2, 7, 40);
        let body = live.health_json();
        assert!(body.contains("\"queue_depth\":2"), "{body}");
        assert!(body.contains("\"coalesced\":7"), "{body}");
        assert!(body.contains("\"requests\":40"), "{body}");
    }

    #[test]
    fn publish_is_visible_to_subsequent_scrapes() {
        let live = Arc::new(Live::new());
        let server = serve("127.0.0.1:0", live.clone()).unwrap();
        live.publish(&sample_snapshot(), 0, 10);
        live.publish(&sample_snapshot(), 5, 20);
        let (_, body) = get(server.addr(), "/health");
        assert!(body.contains("\"runs\":2"), "{body}");
        assert!(body.contains("\"deviations_total\":5"), "{body}");
        assert!(body.contains("\"last_iteration_us\":20"), "{body}");
        server.shutdown();
    }
}
