//! A zero-dependency live metrics endpoint.
//!
//! [`Live`] is the shared state a long-running driver (today: `ofence
//! watch`; tomorrow: the analysis daemon of ROADMAP item 1) publishes
//! into after every analysis run. [`serve`] binds a `std::net::
//! TcpListener` and answers two routes from that state on a background
//! thread:
//!
//! * `GET /metrics` — the latest run's Prometheus text (the exact output
//!   of [`crate::Snapshot::prometheus_text`]), pre-rendered at publish
//!   time so a scrape never observes a half-updated snapshot;
//! * `GET /health` — a small JSON document: run count, last-iteration
//!   duration, cache hit rate, and deviation totals.
//!
//! The server is deliberately minimal — HTTP/1.x, `Connection: close`,
//! one short-lived thread per connection — because its only clients are
//! scrapers (`curl`, Prometheus) hitting it a few times a minute. No
//! external crates, no async runtime.

use crate::Snapshot;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

#[derive(Clone, Debug, Default)]
struct LiveState {
    /// Pre-rendered Prometheus text of the latest published snapshot.
    metrics_text: String,
    /// Analysis runs published so far.
    runs: u64,
    /// Wall-clock of the most recent run, in microseconds.
    last_iteration_us: u64,
    /// Deviations reported by the most recent run.
    deviations_total: u64,
    /// Cumulative cache hits / files analyzed across all published runs.
    cache_hits: u64,
    files_analyzed: u64,
    /// Daemon-mode request stats ([`Live::set_server_stats`]); `None`
    /// outside `ofence serve`, and the `/health` body omits them then.
    server: Option<ServerStats>,
}

#[derive(Clone, Copy, Debug, Default)]
struct ServerStats {
    queue_depth: u64,
    coalesced: u64,
    requests: u64,
}

/// Shared live telemetry: the publisher half is the analysis driver, the
/// consumer half is the HTTP server (and anything else holding the Arc).
///
/// All methods take `&self`; the state swap is atomic under one mutex,
/// so a concurrent scrape sees either the previous run's telemetry or
/// the new run's — never a torn mixture.
#[derive(Debug, Default)]
pub struct Live {
    inner: Mutex<LiveState>,
}

impl Live {
    pub fn new() -> Live {
        Live::default()
    }

    /// Publish a finished run: its observability snapshot, the number of
    /// deviations it reported, and its wall-clock duration.
    pub fn publish(&self, snapshot: &Snapshot, deviations_total: u64, iteration_us: u64) {
        let metrics_text = snapshot.prometheus_text();
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.metrics_text = metrics_text;
        inner.runs += 1;
        inner.last_iteration_us = iteration_us;
        inner.deviations_total = deviations_total;
        inner.cache_hits += snapshot.count_of("engine_cache_hits");
        inner.files_analyzed += snapshot.count_of("engine_files_analyzed");
    }

    /// Publish daemon request stats (analysis daemon only): current
    /// queue depth plus cumulative coalesced-join and request counts.
    /// Once set, `/health` carries them.
    pub fn set_server_stats(&self, queue_depth: u64, coalesced: u64, requests: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.server = Some(ServerStats {
            queue_depth,
            coalesced,
            requests,
        });
    }

    /// Runs published so far.
    pub fn runs(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).runs
    }

    /// The latest `/metrics` body (empty before the first publish).
    pub fn metrics_text(&self) -> String {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .metrics_text
            .clone()
    }

    /// The `/health` body: one flat JSON object.
    pub fn health_json(&self) -> String {
        let s = self.inner.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let seen = s.cache_hits + s.files_analyzed;
        let hit_rate = if seen > 0 {
            s.cache_hits as f64 / seen as f64
        } else {
            0.0
        };
        let server = match s.server {
            Some(v) => format!(
                ",\"queue_depth\":{},\"coalesced\":{},\"requests\":{}",
                v.queue_depth, v.coalesced, v.requests
            ),
            None => String::new(),
        };
        format!(
            "{{\"status\":\"{}\",\"runs\":{},\"last_iteration_us\":{},\"cache_hit_rate\":{:.4},\"deviations_total\":{}{server}}}",
            if s.runs > 0 { "ok" } else { "starting" },
            s.runs,
            s.last_iteration_us,
            hit_rate,
            s.deviations_total
        )
    }
}

/// Handle on a running metrics server. Dropping it (or calling
/// [`MetricsServer::shutdown`]) stops the listener thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// The actually bound address — with `addr:0` the OS picks the port,
    /// and this is where callers learn it.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the listener thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_and_join();
        }
    }
}

/// Bind `addr` (e.g. `127.0.0.1:9464`, or port `0` to let the OS pick)
/// and serve `GET /metrics` + `GET /health` from `live` on a background
/// thread until the returned handle is shut down or dropped.
pub fn serve(addr: &str, live: Arc<Live>) -> Result<MetricsServer, String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = stop.clone();
    let handle = std::thread::Builder::new()
        .name("ofence-metrics".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if thread_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let live = live.clone();
                // One short-lived thread per connection: a slow or stuck
                // client must not block the next scrape.
                let _ = std::thread::Builder::new()
                    .name("ofence-metrics-conn".into())
                    .spawn(move || handle_connection(stream, &live));
            }
        })
        .map_err(|e| format!("spawn listener thread: {e}"))?;
    Ok(MetricsServer {
        addr: local,
        stop,
        handle: Some(handle),
    })
}

fn handle_connection(mut stream: TcpStream, live: &Live) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let Some(path) = read_request_path(&mut stream) else {
        return;
    };
    let (status, content_type, body) = match path.as_str() {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            live.metrics_text(),
        ),
        "/health" => ("200 OK", "application/json", live.health_json()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; try /metrics or /health\n".to_string(),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// Read the request head (up to 8 KiB) and return the path of the
/// request line. `None` on malformed or non-GET requests.
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut buf = [0u8; 8192];
    let mut filled = 0usize;
    loop {
        if filled == buf.len() {
            return None; // oversized request head
        }
        let n = stream.read(&mut buf[filled..]).ok()?;
        if n == 0 {
            break;
        }
        filled += n;
        if buf[..filled].windows(4).any(|w| w == b"\r\n\r\n")
            || buf[..filled].windows(2).any(|w| w == b"\n\n")
        {
            break;
        }
    }
    let head = std::str::from_utf8(&buf[..filled]).ok()?;
    let request_line = head.lines().next()?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    if method != "GET" {
        return None;
    }
    // Ignore any query string; scrapers sometimes add one.
    Some(path.split('?').next().unwrap_or(path).to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has a header/body split");
        (head.to_string(), body.to_string())
    }

    fn sample_snapshot() -> Snapshot {
        let rec = Recorder::new();
        rec.count("watch_iterations", 1);
        rec.count("engine_cache_hits", 3);
        rec.count("engine_files_analyzed", 1);
        drop(rec.span("analyze"));
        rec.snapshot()
    }

    #[test]
    fn serves_metrics_and_health() {
        let live = Arc::new(Live::new());
        live.publish(&sample_snapshot(), 2, 1234);
        let server = serve("127.0.0.1:0", live.clone()).unwrap();
        let (head, body) = get(server.addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("text/plain"), "{head}");
        assert!(body.contains("ofence_watch_iterations_total 1"), "{body}");
        let (head, body) = get(server.addr(), "/health");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"runs\":1"), "{body}");
        assert!(body.contains("\"last_iteration_us\":1234"), "{body}");
        assert!(body.contains("\"cache_hit_rate\":0.75"), "{body}");
        assert!(body.contains("\"deviations_total\":2"), "{body}");
        server.shutdown();
    }

    #[test]
    fn unknown_route_is_404() {
        let live = Arc::new(Live::new());
        let server = serve("127.0.0.1:0", live).unwrap();
        let (head, _) = get(server.addr(), "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        server.shutdown();
    }

    #[test]
    fn health_before_first_publish_reports_starting() {
        let live = Arc::new(Live::new());
        let server = serve("127.0.0.1:0", live).unwrap();
        let (head, body) = get(server.addr(), "/health");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("\"status\":\"starting\""), "{body}");
        assert!(body.contains("\"runs\":0"), "{body}");
        server.shutdown();
    }

    #[test]
    fn shutdown_frees_the_port() {
        let live = Arc::new(Live::new());
        let server = serve("127.0.0.1:0", live.clone()).unwrap();
        let addr = server.addr();
        server.shutdown();
        // After shutdown the listener is gone: a fresh bind to the same
        // port succeeds.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "{rebound:?}");
    }

    #[test]
    fn server_stats_appear_in_health_once_set() {
        let live = Arc::new(Live::new());
        live.publish(&sample_snapshot(), 0, 10);
        assert!(!live.health_json().contains("queue_depth"));
        live.set_server_stats(2, 7, 40);
        let body = live.health_json();
        assert!(body.contains("\"queue_depth\":2"), "{body}");
        assert!(body.contains("\"coalesced\":7"), "{body}");
        assert!(body.contains("\"requests\":40"), "{body}");
    }

    #[test]
    fn publish_is_visible_to_subsequent_scrapes() {
        let live = Arc::new(Live::new());
        let server = serve("127.0.0.1:0", live.clone()).unwrap();
        live.publish(&sample_snapshot(), 0, 10);
        live.publish(&sample_snapshot(), 5, 20);
        let (_, body) = get(server.addr(), "/health");
        assert!(body.contains("\"runs\":2"), "{body}");
        assert!(body.contains("\"deviations_total\":5"), "{body}");
        assert!(body.contains("\"last_iteration_us\":20"), "{body}");
        server.shutdown();
    }
}
