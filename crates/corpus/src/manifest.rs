//! Ground-truth manifest: what the generator put into the corpus.
//!
//! The real paper could only validate OFence by manually reviewing its
//! output; a synthetic corpus lets us measure recall and precision
//! exactly against this manifest.

use serde::{Deserialize, Serialize};

/// The barrier idiom a code fragment instantiates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternKind {
    /// Listing 1: init fields, `smp_wmb`, set flag / check flag,
    /// `smp_rmb`, read fields.
    InitFlag,
    /// Producer/consumer ring: write slot, `smp_wmb`, bump head.
    RingBuffer,
    /// Figure 5 / Listing 3: seqcount reader/writer.
    Seqcount,
    /// Publish + wake-up call: implicit read barrier, writer stays
    /// unpaired.
    WakeupPublish,
    /// `smp_store_release` / `smp_load_acquire`.
    AcquireRelease,
    /// `smp_mb__before_atomic` + relaxed atomic counter.
    AtomicBarrier,
    /// One writer, several readers.
    MultiReader,
    /// RCU publish/subscribe: `rcu_assign_pointer` / `rcu_dereference`.
    RcuPublish,
    /// Sleep/wake handshake: `smp_store_mb` on the waiter side, `smp_mb`
    /// on the waker side (the classic lost-wakeup protocol).
    SleepWake,
    /// `atomic_inc` upgraded by `smp_mb__after_atomic`.
    AfterAtomic,
    /// Cross-file call chain: the barrier sits in a caller while the
    /// payload accesses live several call levels away, each level in a
    /// different file. Invisible intra-procedurally (the barrier sees a
    /// single shared object); pairs only at `--ipa-depth >=` the chain
    /// depth.
    CrossFileChain,
}

impl PatternKind {
    pub const ALL: [PatternKind; 11] = [
        PatternKind::InitFlag,
        PatternKind::RingBuffer,
        PatternKind::Seqcount,
        PatternKind::WakeupPublish,
        PatternKind::AcquireRelease,
        PatternKind::AtomicBarrier,
        PatternKind::MultiReader,
        PatternKind::RcuPublish,
        PatternKind::SleepWake,
        PatternKind::AfterAtomic,
        PatternKind::CrossFileChain,
    ];

    /// Does this pattern produce a pairing (vs an intentionally unpaired
    /// barrier)?
    pub fn expects_pairing(self) -> bool {
        !matches!(self, PatternKind::WakeupPublish)
    }
}

/// Class of injected bug — mirrors paper Table 3 plus unneeded barriers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BugKind {
    /// Deviation #1: an access on the wrong side of a barrier.
    Misplaced,
    /// Deviation #3: a racy re-read after the read barrier.
    RepeatedRead,
    /// Deviation #2: read barrier used where a write barrier belongs.
    WrongBarrierType,
    /// §5.1: barrier adjacent to an operation with barrier semantics.
    UnneededBarrier,
    /// Dataflow extension: the reader's fence is missing entirely — the
    /// writer stays unpaired and the guarded reads are unordered.
    MissingBarrier,
}

impl BugKind {
    pub const ALL: [BugKind; 5] = [
        BugKind::Misplaced,
        BugKind::RepeatedRead,
        BugKind::WrongBarrierType,
        BugKind::UnneededBarrier,
        BugKind::MissingBarrier,
    ];
}

/// A pairing the analysis is expected to find.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExpectedPairing {
    /// Functions whose barriers belong to the pairing.
    pub functions: Vec<String>,
    /// `(struct, field)` tuples the pairing should match on (subset).
    pub objects: Vec<(String, String)>,
    pub kind: PatternKind,
    /// True for generic-type decoys: a pairing the analysis will likely
    /// report but that is *not* real concurrency (counts as an incorrect
    /// pairing, §6.4).
    pub decoy: bool,
}

/// A bug the generator injected.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedBug {
    pub file: String,
    /// Function containing the buggy access/barrier.
    pub function: String,
    pub kind: BugKind,
    /// The shared object involved (empty strings for unneeded barriers).
    pub strukt: String,
    pub field: String,
}

/// Everything the generator knows about the corpus it produced.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Manifest {
    pub expected_pairings: Vec<ExpectedPairing>,
    pub bugs: Vec<InjectedBug>,
    /// Writer functions intentionally left unpaired (wake-up pattern).
    pub implicit_ipc_writers: Vec<String>,
    /// Total pattern instances per kind.
    pub pattern_counts: std::collections::BTreeMap<String, usize>,
    /// Generator seed, for reproducibility.
    pub seed: u64,
}

impl Manifest {
    pub fn count_bugs(&self, kind: BugKind) -> usize {
        self.bugs.iter().filter(|b| b.kind == kind).count()
    }

    pub fn real_pairings(&self) -> impl Iterator<Item = &ExpectedPairing> {
        self.expected_pairings.iter().filter(|p| !p.decoy)
    }

    pub fn decoy_pairings(&self) -> impl Iterator<Item = &ExpectedPairing> {
        self.expected_pairings.iter().filter(|p| p.decoy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bug_counting() {
        let m = Manifest {
            bugs: vec![
                InjectedBug {
                    file: "a.c".into(),
                    function: "f".into(),
                    kind: BugKind::Misplaced,
                    strukt: "s".into(),
                    field: "x".into(),
                },
                InjectedBug {
                    file: "b.c".into(),
                    function: "g".into(),
                    kind: BugKind::Misplaced,
                    strukt: "t".into(),
                    field: "y".into(),
                },
            ],
            ..Default::default()
        };
        assert_eq!(m.count_bugs(BugKind::Misplaced), 2);
        assert_eq!(m.count_bugs(BugKind::RepeatedRead), 0);
    }

    #[test]
    fn pairing_filters() {
        let m = Manifest {
            expected_pairings: vec![
                ExpectedPairing {
                    functions: vec!["w".into(), "r".into()],
                    objects: vec![],
                    kind: PatternKind::InitFlag,
                    decoy: false,
                },
                ExpectedPairing {
                    functions: vec!["d1".into(), "d2".into()],
                    objects: vec![],
                    kind: PatternKind::InitFlag,
                    decoy: true,
                },
            ],
            ..Default::default()
        };
        assert_eq!(m.real_pairings().count(), 1);
        assert_eq!(m.decoy_pairings().count(), 1);
    }

    #[test]
    fn wakeup_pattern_expects_no_pairing() {
        assert!(!PatternKind::WakeupPublish.expects_pairing());
        assert!(PatternKind::Seqcount.expects_pairing());
    }
}
