//! Pattern emitters: each produces one instance of a kernel barrier idiom
//! as C source, optionally with an injected bug, plus its ground truth.
//!
//! Every instance uses unique struct/function names (`pat<N>_…`) so that
//! shared-object matching cannot accidentally pair unrelated instances —
//! except the generic-type decoys, which deliberately share `struct
//! list_head` to reproduce the paper's incorrect-pairing mechanism (§6.4).

use crate::manifest::{BugKind, ExpectedPairing, InjectedBug, PatternKind};
use rand::Rng;
use std::fmt::Write;

/// One generated pattern instance.
#[derive(Clone, Debug, Default)]
pub struct PatternInstance {
    /// Struct/typedef definitions (duplicated into both files when the
    /// instance is split across files).
    pub structs: String,
    /// Writer-side code.
    pub writer: String,
    /// Reader-side code (may hold several functions).
    pub reader: String,
    /// Expected pairing, if the pattern creates one.
    pub expected: Option<ExpectedPairing>,
    /// Injected bug ground truth (`file` is filled by the generator).
    pub bug: Option<InjectedBug>,
    /// Writer function intentionally unpaired behind a wake-up call.
    pub ipc_writer: Option<String>,
}

/// Emit one instance of `kind` with id `n`, optionally injecting `bug`.
pub fn emit(
    kind: PatternKind,
    n: usize,
    rng: &mut impl Rng,
    bug: Option<BugKind>,
) -> PatternInstance {
    match kind {
        PatternKind::InitFlag => init_flag(n, rng, bug),
        PatternKind::RingBuffer => ring_buffer(n, rng, bug),
        PatternKind::Seqcount => seqcount(n, rng, bug),
        PatternKind::WakeupPublish => wakeup_publish(n, rng, bug),
        PatternKind::AcquireRelease => acquire_release(n, rng, bug),
        PatternKind::AtomicBarrier => atomic_barrier(n, rng, bug),
        PatternKind::MultiReader => multi_reader(n, rng, bug),
        PatternKind::RcuPublish => rcu_publish(n, rng, bug),
        PatternKind::SleepWake => sleep_wake(n, rng, bug),
        PatternKind::AfterAtomic => after_atomic(n, rng, bug),
        // Single-file flattening (depth 2) so `emit` stays total; the
        // generator uses `cross_file_chain` directly to spread the
        // fragments over files.
        PatternKind::CrossFileChain => cross_file_chain(n, 2, bug).flatten(),
    }
}

/// Which bug classes a pattern can host.
pub fn supported_bugs(kind: PatternKind) -> &'static [BugKind] {
    match kind {
        PatternKind::InitFlag => &[
            BugKind::Misplaced,
            BugKind::RepeatedRead,
            BugKind::WrongBarrierType,
            BugKind::UnneededBarrier,
            BugKind::MissingBarrier,
        ],
        PatternKind::RingBuffer => &[
            BugKind::Misplaced,
            BugKind::RepeatedRead,
            BugKind::MissingBarrier,
        ],
        PatternKind::Seqcount => &[BugKind::Misplaced],
        PatternKind::WakeupPublish => &[BugKind::UnneededBarrier],
        PatternKind::AcquireRelease => &[BugKind::Misplaced, BugKind::MissingBarrier],
        PatternKind::AtomicBarrier => &[BugKind::Misplaced],
        // MultiReader cannot host MissingBarrier: the writer would still
        // pair with the remaining fenced readers, so its barrier never
        // shows up as unpaired.
        PatternKind::MultiReader => &[BugKind::Misplaced, BugKind::RepeatedRead],
        PatternKind::RcuPublish => &[BugKind::Misplaced],
        PatternKind::SleepWake => &[BugKind::Misplaced],
        PatternKind::AfterAtomic => &[BugKind::Misplaced, BugKind::MissingBarrier],
        // The chain's only bug class: a payload read smuggled to the
        // wrong side of the fence through a depth-deep callee.
        PatternKind::CrossFileChain => &[BugKind::Misplaced],
    }
}

/// Filler statements operating on locals only — they create statement
/// distance without creating shared objects. The reader-side filler is
/// what produces Figure 7's spread-out read distances.
fn filler(count: usize, seed: usize) -> String {
    let mut s = String::new();
    for i in 0..count {
        match (seed + i) % 3 {
            0 => writeln!(s, "\ttmp = tmp + {};", i + 1).unwrap(),
            1 => writeln!(s, "\ttmp = tmp * 2;").unwrap(),
            _ => writeln!(s, "\tpr_debug(\"step {i}\");").unwrap(),
        }
    }
    s
}

fn expected(
    kind: PatternKind,
    functions: &[String],
    objects: &[(&str, &str)],
) -> Option<ExpectedPairing> {
    Some(ExpectedPairing {
        functions: functions.to_vec(),
        objects: objects
            .iter()
            .map(|(s, f)| (s.to_string(), f.to_string()))
            .collect(),
        kind,
        decoy: false,
    })
}

fn bug_record(function: &str, kind: BugKind, strukt: &str, field: &str) -> InjectedBug {
    InjectedBug {
        file: String::new(),
        function: function.to_string(),
        kind,
        strukt: strukt.to_string(),
        field: field.to_string(),
    }
}

// ---- Pattern 1: init-flag publish (Listing 1) --------------------------

fn init_flag(n: usize, rng: &mut impl Rng, bug: Option<BugKind>) -> PatternInstance {
    let st = format!("pat{n}_obj");
    let writer_fn = format!("pat{n}_publish");
    let reader_fn = format!("pat{n}_consume");
    let nfields = rng.gen_range(2..=4usize);
    let read_gap = rng.gen_range(0..30usize);
    // Local computation between the data writes and the barrier: gives
    // Figure 6 its rising edge (pairings appear as the write window
    // grows towards 5).
    let write_gap = rng.gen_range(0..4usize);
    let fields: Vec<String> = (0..nfields).map(|i| format!("f{i}")).collect();

    let mut structs = format!("struct {st} {{\n");
    for f in &fields {
        writeln!(structs, "\tint {f};").unwrap();
    }
    structs.push_str("\tint ready;\n};\n");

    // Writer.
    let writer_barrier = if bug == Some(BugKind::WrongBarrierType) {
        "smp_rmb" // the injected wrong type
    } else {
        "smp_wmb"
    };
    // Some writers initialize through a same-file helper: pairing them
    // requires callee expansion (§4.2's ±1 call level) — the
    // `no_callee_expansion` ablation loses exactly these.
    let via_helper = bug.is_none() && rng.gen_bool(0.3);
    let helper_fn = format!("pat{n}_fill");
    let mut writer = String::new();
    if via_helper {
        writeln!(writer, "static void {helper_fn}(struct {st} *w, int v)\n{{").unwrap();
        for (i, f) in fields.iter().enumerate() {
            writeln!(writer, "\tw->{f} = v + {i};").unwrap();
        }
        writer.push_str("}\n");
    }
    writeln!(writer, "void {writer_fn}(struct {st} *w, int v)\n{{").unwrap();
    if via_helper {
        writeln!(writer, "\t{helper_fn}(w, v);").unwrap();
    } else {
        for (i, f) in fields.iter().enumerate() {
            writeln!(writer, "\tw->{f} = v + {i};").unwrap();
        }
    }
    for g in 0..write_gap {
        writeln!(writer, "\tv = v + {};", g + 1).unwrap();
    }
    writeln!(writer, "\t{writer_barrier}();").unwrap();
    if bug == Some(BugKind::UnneededBarrier) {
        writeln!(writer, "\tsmp_mb();").unwrap();
    }
    writer.push_str("\tw->ready = 1;\n}\n");

    // Reader.
    let mut reader = format!("int {reader_fn}(struct {st} *r)\n{{\n\tint tmp = 0;\n");
    match bug {
        Some(BugKind::Misplaced) => {
            // Flag checked after the barrier (Patch 1 shape).
            reader.push_str("\tsmp_rmb();\n");
            reader.push_str("\tif (!r->ready)\n\t\treturn 0;\n");
        }
        Some(BugKind::MissingBarrier) => {
            // Guard checked, payload read — but no fence at all.
            reader.push_str("\tif (!r->ready)\n\t\treturn 0;\n");
        }
        _ => {
            reader.push_str("\tif (!r->ready)\n\t\treturn 0;\n");
            reader.push_str("\tsmp_rmb();\n");
        }
    }
    reader.push_str(&filler(read_gap, n));
    for f in &fields {
        writeln!(reader, "\ttmp = tmp + r->{f};").unwrap();
    }
    if bug == Some(BugKind::RepeatedRead) {
        // Racy re-read of the guard flag after the barrier (Listing 2).
        reader.push_str("\tpat_log(r->ready);\n");
    }
    reader.push_str("\treturn tmp;\n}\n");

    let bug_rec = bug.map(|k| match k {
        BugKind::Misplaced => bug_record(&reader_fn, k, &st, "ready"),
        BugKind::RepeatedRead => bug_record(&reader_fn, k, &st, "ready"),
        BugKind::WrongBarrierType => bug_record(&writer_fn, k, "", ""),
        BugKind::UnneededBarrier => bug_record(&writer_fn, k, "", ""),
        BugKind::MissingBarrier => bug_record(&reader_fn, k, &st, "ready"),
    });

    // An injected redundant double barrier splits the writer's windows
    // (each barrier bounds the other), so no pairing can be expected;
    // a fence-less reader likewise leaves the writer unpaired.
    let closest_field = format!("f{}", nfields - 1);
    let expected = if matches!(
        bug,
        Some(BugKind::UnneededBarrier) | Some(BugKind::MissingBarrier)
    ) {
        None
    } else {
        expected(
            PatternKind::InitFlag,
            &[writer_fn, reader_fn],
            &[(&st, "ready"), (&st, &closest_field)],
        )
    };
    PatternInstance {
        structs,
        writer,
        reader,
        expected,
        bug: bug_rec,
        ipc_writer: None,
    }
}

// ---- Pattern 2: ring buffer --------------------------------------------

fn ring_buffer(n: usize, rng: &mut impl Rng, bug: Option<BugKind>) -> PatternInstance {
    let ring = format!("pat{n}_ring");
    let item = format!("pat{n}_item");
    let producer = format!("pat{n}_produce");
    let consumer = format!("pat{n}_consume");
    let read_gap = rng.gen_range(0..35usize);

    let structs = format!(
        "struct {item} {{\n\tint payload;\n}};\nstruct {ring} {{\n\tstruct {item} *slots[16];\n\tint head;\n}};\n"
    );

    let writer = format!(
        "void {producer}(struct {ring} *q, struct {item} *it)\n{{\n\tq->slots[q->head] = it;\n\tsmp_wmb();\n\tq->head++;\n}}\n"
    );

    let mut reader = format!("void {consumer}(struct {ring} *q)\n{{\n\tint tmp = 0;\n");
    match bug {
        Some(BugKind::Misplaced) => {
            // Head read on the wrong side of the read barrier.
            reader.push_str("\tsmp_rmb();\n");
            reader.push_str("\tint h = q->head;\n");
            reader.push_str(&filler(read_gap, n));
            reader.push_str("\tpat_sink(q->slots[h - 1]);\n");
        }
        Some(BugKind::RepeatedRead) => {
            // Index correctly read, then racily re-read (Patch 3 shape).
            reader.push_str("\tint h = q->head;\n");
            reader.push_str("\tsmp_rmb();\n");
            reader.push_str(&filler(read_gap, n));
            reader.push_str("\tif (h)\n\t\tpat_sink(q->slots[q->head - 1]);\n");
        }
        Some(BugKind::MissingBarrier) => {
            // Head guards the slot read, but the fence is gone.
            reader.push_str("\tif (!q->head)\n\t\treturn;\n");
            reader.push_str(&filler(read_gap, n));
            reader.push_str("\tpat_sink(q->slots[q->head - 1]);\n");
        }
        _ => {
            reader.push_str("\tint h = q->head;\n");
            reader.push_str("\tsmp_rmb();\n");
            reader.push_str(&filler(read_gap, n));
            reader.push_str("\tif (h)\n\t\tpat_sink(q->slots[h - 1]);\n");
        }
    }
    reader.push_str("\tpat_log(tmp);\n}\n");

    let bug_rec = bug.map(|k| match k {
        BugKind::Misplaced => bug_record(&consumer, k, &ring, "head"),
        BugKind::RepeatedRead => bug_record(&consumer, k, &ring, "head"),
        BugKind::MissingBarrier => bug_record(&consumer, k, &ring, "head"),
        _ => bug_record(&consumer, k, &ring, ""),
    });

    let exp = if bug == Some(BugKind::MissingBarrier) {
        None
    } else {
        expected(
            PatternKind::RingBuffer,
            &[producer, consumer],
            &[(&ring, "head"), (&ring, "slots")],
        )
    };
    PatternInstance {
        structs,
        writer,
        reader,
        expected: exp,
        bug: bug_rec,
        ipc_writer: None,
    }
}

// ---- Pattern 3: seqcount (Figure 5 / Listing 3) -------------------------

fn seqcount(n: usize, rng: &mut impl Rng, bug: Option<BugKind>) -> PatternInstance {
    let st = format!("pat{n}_stats");
    let seq = format!("pat{n}_seq");
    let writer_fn = format!("pat{n}_update");
    let reader_fn = format!("pat{n}_snapshot");
    let _ = rng;

    let structs =
        format!("static seqcount_t {seq};\nstruct {st} {{\n\tlong bcnt;\n\tlong pcnt;\n}};\n");

    let writer = format!(
        "void {writer_fn}(struct {st} *t, long b, long p)\n{{\n\twrite_seqcount_begin(&{seq});\n\tt->bcnt += b;\n\tt->pcnt += p;\n\twrite_seqcount_end(&{seq});\n}}\n"
    );

    let reader = if bug == Some(BugKind::Misplaced) {
        // One field read outside the retry window: unprotected.
        format!(
            "void {reader_fn}(struct {st} *out, struct {st} *t)\n{{\n\tunsigned int v;\n\tdo {{\n\t\tv = read_seqcount_begin(&{seq});\n\t\tout->bcnt = t->bcnt;\n\t}} while (read_seqcount_retry(&{seq}, v));\n\tout->pcnt = t->pcnt;\n}}\n"
        )
    } else {
        format!(
            "void {reader_fn}(struct {st} *out, struct {st} *t)\n{{\n\tunsigned int v;\n\tdo {{\n\t\tv = read_seqcount_begin(&{seq});\n\t\tout->bcnt = t->bcnt;\n\t\tout->pcnt = t->pcnt;\n\t}} while (read_seqcount_retry(&{seq}, v));\n}}\n"
        )
    };

    let bug_rec = bug.map(|k| bug_record(&reader_fn, k, &st, "pcnt"));

    PatternInstance {
        structs,
        writer,
        reader,
        expected: expected(
            PatternKind::Seqcount,
            &[writer_fn, reader_fn],
            &[(&st, "bcnt"), ("", &seq)],
        ),
        bug: bug_rec,
        ipc_writer: None,
    }
}

// ---- Pattern 4: publish + wake-up (implicit barrier, §4.2 / Patch 4) ----

fn wakeup_publish(n: usize, rng: &mut impl Rng, bug: Option<BugKind>) -> PatternInstance {
    let st = format!("pat{n}_work");
    let writer_fn = format!("pat{n}_submit");
    let worker_fn = format!("pat{n}_worker");
    let _ = rng;

    let structs = format!(
        "struct {st} {{\n\tint payload;\n\tint token;\n\tstruct task_struct *owner;\n}};\n"
    );

    let writer = if bug == Some(BugKind::UnneededBarrier) {
        // Barrier directly before the wake-up call (Patch 4): redundant.
        format!(
            "void {writer_fn}(struct {st} *w, int v)\n{{\n\tw->payload = v;\n\tw->token = 1;\n\tsmp_wmb();\n\twake_up_process(w->owner);\n}}\n"
        )
    } else {
        format!(
            "void {writer_fn}(struct {st} *w, int v)\n{{\n\tw->payload = v;\n\tsmp_wmb();\n\tw->token = 1;\n\twake_up_process(w->owner);\n}}\n"
        )
    };

    // The woken side reads without a barrier — the wake-up ordered it.
    let reader = format!(
        "void {worker_fn}(struct {st} *w)\n{{\n\tif (w->token)\n\t\tpat_log(w->payload);\n}}\n"
    );

    let bug_rec = bug.map(|k| bug_record(&writer_fn, k, "", ""));

    PatternInstance {
        structs,
        writer,
        reader,
        expected: None,
        bug: bug_rec,
        ipc_writer: Some(writer_fn),
    }
}

// ---- Pattern 5: store-release / load-acquire ----------------------------

fn acquire_release(n: usize, rng: &mut impl Rng, bug: Option<BugKind>) -> PatternInstance {
    let st = format!("pat{n}_box");
    let writer_fn = format!("pat{n}_post");
    let reader_fn = format!("pat{n}_poll");
    let read_gap = rng.gen_range(0..20usize);

    let structs = format!("struct {st} {{\n\tint data;\n\tint seq;\n\tint ready;\n}};\n");

    let write_gap = rng.gen_range(0..4usize);
    let mut writer =
        format!("void {writer_fn}(struct {st} *b, int v)\n{{\n\tb->data = v;\n\tb->seq = v + 1;\n");
    for g in 0..write_gap {
        writeln!(writer, "\tv = v + {};", g + 1).unwrap();
    }
    writer.push_str("\tsmp_store_release(&b->ready, 1);\n}\n");

    let mut reader = format!("int {reader_fn}(struct {st} *b)\n{{\n\tint tmp = 0;\n");
    if bug == Some(BugKind::Misplaced) {
        // Data read hoisted above the acquire.
        reader.push_str("\tint d = b->data;\n");
        reader.push_str("\tif (!smp_load_acquire(&b->ready))\n\t\treturn 0;\n");
        reader.push_str(&filler(read_gap, n));
        reader.push_str("\ttmp = d + b->seq;\n");
    } else if bug == Some(BugKind::MissingBarrier) {
        // Plain load of the published flag: no acquire semantics at all.
        reader.push_str("\tif (!b->ready)\n\t\treturn 0;\n");
        reader.push_str(&filler(read_gap, n));
        reader.push_str("\ttmp = b->data + b->seq;\n");
    } else {
        reader.push_str("\tif (!smp_load_acquire(&b->ready))\n\t\treturn 0;\n");
        reader.push_str(&filler(read_gap, n));
        reader.push_str("\ttmp = b->data + b->seq;\n");
    }
    reader.push_str("\treturn tmp;\n}\n");

    let bug_rec = bug.map(|k| match k {
        BugKind::MissingBarrier => bug_record(&reader_fn, k, &st, "ready"),
        _ => bug_record(&reader_fn, k, &st, "data"),
    });

    let exp = if bug == Some(BugKind::MissingBarrier) {
        None
    } else {
        expected(
            PatternKind::AcquireRelease,
            &[writer_fn, reader_fn],
            &[(&st, "ready"), (&st, "data")],
        )
    };
    PatternInstance {
        structs,
        writer,
        reader,
        expected: exp,
        bug: bug_rec,
        ipc_writer: None,
    }
}

// ---- Pattern 6: barrier-before-atomic ------------------------------------

fn atomic_barrier(n: usize, rng: &mut impl Rng, bug: Option<BugKind>) -> PatternInstance {
    let st = format!("pat{n}_stat");
    let writer_fn = format!("pat{n}_account");
    let reader_fn = format!("pat{n}_report");
    let read_gap = rng.gen_range(0..25usize);

    let structs = format!("struct {st} {{\n\tint value;\n\tatomic_t nr;\n}};\n");

    let write_gap = rng.gen_range(0..4usize);
    let mut writer = format!("void {writer_fn}(struct {st} *s, int v)\n{{\n\ts->value = v;\n");
    for g in 0..write_gap {
        writeln!(writer, "\tv = v + {};", g + 1).unwrap();
    }
    writer.push_str("\tsmp_mb__before_atomic();\n\tatomic_inc(&s->nr);\n}\n");

    let mut reader = format!("void {reader_fn}(struct {st} *s)\n{{\n\tint tmp = 0;\n");
    if bug == Some(BugKind::Misplaced) {
        reader.push_str("\ttmp = s->value;\n");
        reader.push_str("\tif (!atomic_read(&s->nr))\n\t\treturn;\n");
        reader.push_str("\tsmp_rmb();\n");
        reader.push_str(&filler(read_gap, n));
        reader.push_str("\tpat_log(tmp);\n");
    } else {
        reader.push_str("\tif (!atomic_read(&s->nr))\n\t\treturn;\n");
        reader.push_str("\tsmp_rmb();\n");
        reader.push_str(&filler(read_gap, n));
        reader.push_str("\ttmp = s->value;\n\tpat_log(tmp);\n");
    }
    reader.push_str("}\n");

    let bug_rec = bug.map(|k| bug_record(&reader_fn, k, &st, "value"));

    PatternInstance {
        structs,
        writer,
        reader,
        expected: expected(
            PatternKind::AtomicBarrier,
            &[writer_fn, reader_fn],
            &[(&st, "value"), (&st, "nr")],
        ),
        bug: bug_rec,
        ipc_writer: None,
    }
}

// ---- Pattern 7: one writer, several readers ------------------------------

fn multi_reader(n: usize, rng: &mut impl Rng, bug: Option<BugKind>) -> PatternInstance {
    let st = format!("pat{n}_shared");
    let writer_fn = format!("pat{n}_install");
    let nreaders = rng.gen_range(2..=3usize);
    let reader_fns: Vec<String> = (0..nreaders).map(|i| format!("pat{n}_reader{i}")).collect();

    let structs = format!("struct {st} {{\n\tint cfg;\n\tint gen;\n}};\n");

    let writer = format!(
        "void {writer_fn}(struct {st} *s, int v)\n{{\n\ts->cfg = v;\n\tsmp_wmb();\n\ts->gen = v;\n}}\n"
    );

    let mut reader = String::new();
    for (i, rf) in reader_fns.iter().enumerate() {
        let buggy = bug.is_some() && i == nreaders - 1;
        let gap = rng.gen_range(0..8usize);
        writeln!(reader, "int {rf}(struct {st} *s)\n{{\n\tint tmp = 0;").unwrap();
        match (buggy, bug) {
            (true, Some(BugKind::Misplaced)) => {
                reader.push_str("\tsmp_rmb();\n");
                reader.push_str("\tif (!s->gen)\n\t\treturn 0;\n");
                reader.push_str(&filler(gap, n + i));
                reader.push_str("\ttmp = s->cfg;\n");
            }
            (true, Some(BugKind::RepeatedRead)) => {
                reader.push_str("\tif (!s->gen)\n\t\treturn 0;\n");
                reader.push_str("\tsmp_rmb();\n");
                reader.push_str(&filler(gap, n + i));
                reader.push_str("\ttmp = s->cfg;\n\tpat_log(s->gen);\n");
            }
            _ => {
                reader.push_str("\tif (!s->gen)\n\t\treturn 0;\n");
                reader.push_str("\tsmp_rmb();\n");
                reader.push_str(&filler(gap, n + i));
                reader.push_str("\ttmp = s->cfg;\n");
            }
        }
        reader.push_str("\treturn tmp;\n}\n");
    }

    let bug_rec = bug.map(|k| bug_record(reader_fns.last().unwrap(), k, &st, "gen"));

    let mut functions = vec![writer_fn];
    functions.extend(reader_fns);
    PatternInstance {
        structs,
        writer,
        reader,
        expected: expected(
            PatternKind::MultiReader,
            &functions,
            &[(&st, "gen"), (&st, "cfg")],
        ),
        bug: bug_rec,
        ipc_writer: None,
    }
}

// ---- Pattern 8: RCU publish/subscribe ------------------------------------

fn rcu_publish(n: usize, rng: &mut impl Rng, bug: Option<BugKind>) -> PatternInstance {
    let item = format!("pat{n}_item");
    let gate = format!("pat{n}_gate");
    let writer_fn = format!("pat{n}_install");
    let reader_fn = format!("pat{n}_lookup");
    let read_gap = rng.gen_range(0..15usize);

    let structs = format!(
        "struct {item} {{\n\tint a;\n\tint b;\n}};\nstruct {gate} {{\n\tstruct {item} *cur;\n}};\n"
    );

    let writer = if bug == Some(BugKind::Misplaced) {
        // One field initialized only *after* publication: readers can see
        // a half-built item.
        format!(
            "void {writer_fn}(struct {gate} *g, struct {item} *it, int v)\n{{\n\tit->a = v;\n\trcu_assign_pointer(g->cur, it);\n\tit->b = v + 1;\n}}\n"
        )
    } else {
        let write_gap = rng.gen_range(0..4usize);
        let mut w = format!(
            "void {writer_fn}(struct {gate} *g, struct {item} *it, int v)\n{{\n\tit->a = v;\n\tit->b = v + 1;\n"
        );
        for g in 0..write_gap {
            writeln!(w, "\tv = v + {};", g + 1).unwrap();
        }
        w.push_str("\trcu_assign_pointer(g->cur, it);\n}\n");
        w
    };

    let mut reader = format!(
        "int {reader_fn}(struct {gate} *g)\n{{\n\tint tmp = 0;\n\tstruct {item} *it;\n\trcu_read_lock();\n\tit = rcu_dereference(g->cur);\n\tif (!it) {{\n\t\trcu_read_unlock();\n\t\treturn 0;\n\t}}\n"
    );
    reader.push_str(&filler(read_gap, n));
    reader.push_str("\ttmp = it->a + it->b;\n\trcu_read_unlock();\n\treturn tmp;\n}\n");

    let bug_rec = bug.map(|k| bug_record(&reader_fn, k, &item, "b"));

    PatternInstance {
        structs,
        writer,
        reader,
        expected: expected(
            PatternKind::RcuPublish,
            &[writer_fn, reader_fn],
            &[(&gate, "cur"), (&item, "a")],
        ),
        bug: bug_rec,
        ipc_writer: None,
    }
}

// ---- Pattern 9: sleep/wake handshake --------------------------------------

fn sleep_wake(n: usize, rng: &mut impl Rng, bug: Option<BugKind>) -> PatternInstance {
    let st = format!("pat{n}_wq");
    let sleeper_fn = format!("pat{n}_wait");
    let waker_fn = format!("pat{n}_kick");
    let _ = rng;

    let structs = format!("struct {st} {{\n\tint waiting;\n\tint work;\n}};\n");

    // Waiter: announce (store + full barrier), then check for work.
    let writer = format!(
        "void {sleeper_fn}(struct {st} *w)\n{{\n\tsmp_store_mb(&w->waiting, 1);\n\tif (!w->work)\n\t\tschedule();\n}}\n"
    );

    // Waker: publish work (full barrier), then check for a waiter. The
    // buggy variant checks the waiter *before* its barrier — the classic
    // lost-wakeup window.
    let reader = if bug == Some(BugKind::Misplaced) {
        format!(
            "void {waker_fn}(struct {st} *w)\n{{\n\tint waiter = w->waiting;\n\tw->work = 1;\n\tsmp_mb();\n\tif (waiter)\n\t\tpat_kick_hw(w);\n}}\n"
        )
    } else {
        format!(
            "void {waker_fn}(struct {st} *w)\n{{\n\tw->work = 1;\n\tsmp_mb();\n\tif (w->waiting)\n\t\tpat_kick_hw(w);\n}}\n"
        )
    };

    let bug_rec = bug.map(|k| bug_record(&waker_fn, k, &st, "waiting"));

    PatternInstance {
        structs,
        writer,
        reader,
        expected: expected(
            PatternKind::SleepWake,
            &[sleeper_fn, waker_fn],
            &[(&st, "waiting"), (&st, "work")],
        ),
        bug: bug_rec,
        ipc_writer: None,
    }
}

// ---- Pattern 10: barrier-after-atomic --------------------------------------

fn after_atomic(n: usize, rng: &mut impl Rng, bug: Option<BugKind>) -> PatternInstance {
    let st = format!("pat{n}_refd");
    let writer_fn = format!("pat{n}_grab");
    let reader_fn = format!("pat{n}_check");
    let read_gap = rng.gen_range(0..10usize);

    let structs = format!("struct {st} {{\n\tatomic_t users;\n\tint live;\n}};\n");

    // Take a reference, upgrade the atomic to a barrier, then mark live.
    let writer = format!(
        "void {writer_fn}(struct {st} *s)\n{{\n\tatomic_inc(&s->users);\n\tsmp_mb__after_atomic();\n\ts->live = 1;\n}}\n"
    );

    let mut reader = format!("int {reader_fn}(struct {st} *s)\n{{\n\tint tmp = 0;\n");
    if bug == Some(BugKind::Misplaced) {
        reader.push_str("\tsmp_rmb();\n");
        reader.push_str("\tif (!s->live)\n\t\treturn 0;\n");
        reader.push_str(&filler(read_gap, n));
        reader.push_str("\ttmp = atomic_read(&s->users);\n");
    } else if bug == Some(BugKind::MissingBarrier) {
        reader.push_str("\tif (!s->live)\n\t\treturn 0;\n");
        reader.push_str(&filler(read_gap, n));
        reader.push_str("\ttmp = atomic_read(&s->users);\n");
    } else {
        reader.push_str("\tif (!s->live)\n\t\treturn 0;\n");
        reader.push_str("\tsmp_rmb();\n");
        reader.push_str(&filler(read_gap, n));
        reader.push_str("\ttmp = atomic_read(&s->users);\n");
    }
    reader.push_str("\treturn tmp;\n}\n");

    let bug_rec = bug.map(|k| bug_record(&reader_fn, k, &st, "live"));

    let exp = if bug == Some(BugKind::MissingBarrier) {
        None
    } else {
        expected(
            PatternKind::AfterAtomic,
            &[writer_fn, reader_fn],
            &[(&st, "live"), (&st, "users")],
        )
    };
    PatternInstance {
        structs,
        writer,
        reader,
        expected: exp,
        bug: bug_rec,
        ipc_writer: None,
    }
}

// ---- Decoys and noise ----------------------------------------------------

/// Generic container types shared across unrelated "subsystems" — the
/// mechanism behind the paper's incorrect pairings (§6.4): `(struct name,
/// field_a, field_b)`.
pub const GENERIC_TYPES: &[(&str, &str, &str)] = &[
    ("list_head", "next", "prev"),
    ("hlist_node", "nxt", "pprev"),
    ("rb_node", "rb_left", "rb_right"),
    ("llist_node", "first", "second"),
    ("kref_base", "holders", "dead"),
];

/// Definition text for a generic container type.
pub fn generic_type_def(type_idx: usize) -> String {
    let (name, a, b) = GENERIC_TYPES[type_idx % GENERIC_TYPES.len()];
    format!("struct {name} {{\n\tstruct {name} *{a};\n\tstruct {name} *{b};\n}};\n")
}

/// Kept for compatibility with older fixtures: the list_head definition.
pub const LIST_HEAD_DEF: &str =
    "struct list_head {\n\tstruct list_head *next;\n\tstruct list_head *prev;\n};\n";

/// One half of a generic-type decoy: a function with a barrier whose only
/// shared objects are fields of a generic container. Two halves in
/// unrelated files will pair even though no real concurrency relates
/// them; the reader half additionally re-reads a field after its barrier
/// so the bogus pairing also yields a bogus patch (the paper's 12
/// incorrect patches out of 15 incorrect pairings).
pub fn decoy_half(n: usize, writer_side: bool, type_idx: usize, far: bool) -> (String, String) {
    let (ty, fa, fb) = GENERIC_TYPES[type_idx % GENERIC_TYPES.len()];
    let fname = if writer_side {
        format!("pat{n}_decoy_attach")
    } else {
        format!("pat{n}_decoy_walk")
    };
    // `far` writers keep their second object several statements away from
    // the barrier: such decoys only pair at wider exploration windows,
    // giving Figure 6 its "slightly more incorrect pairings" tail.
    let gap = if far && writer_side {
        "\tpr_debug(\"a\");\n\tpr_debug(\"b\");\n\tpr_debug(\"c\");\n\tpr_debug(\"d\");\n\tpr_debug(\"e\");\n\tpr_debug(\"f\");\n"
    } else {
        ""
    };
    let code = if writer_side {
        format!(
            "void {fname}(struct {ty} *l, struct {ty} *nw)\n{{\n\tnw->{fb} = l;\n{gap}\tsmp_wmb();\n\tl->{fa} = nw;\n}}\n"
        )
    } else {
        format!(
            "void {fname}(struct {ty} *l)\n{{\n\tif (!l->{fa})\n\t\treturn;\n\tsmp_rmb();\n\tpat_sink(l->{fa}->{fb});\n}}\n"
        )
    };
    (fname, code)
}

/// A decoy reader whose accesses happen to be *consistent* with the decoy
/// writer: the bogus pairing forms but no bogus patch is produced (the
/// paper found 15 incorrect pairings but only 12 incorrect patches).
pub fn decoy_consistent_reader(n: usize, type_idx: usize) -> (String, String) {
    let (ty, fa, fb) = GENERIC_TYPES[type_idx % GENERIC_TYPES.len()];
    let fname = format!("pat{n}_decoy_scan");
    let code = format!(
        "void {fname}(struct {ty} *l)\n{{\n\tstruct {ty} *c = l->{fa};\n\tif (!c)\n\t\treturn;\n\tsmp_rmb();\n\tpat_sink(c->{fb});\n}}\n"
    );
    (fname, code)
}

/// A *benign* re-read decoy: the reader re-reads a field after the
/// barrier, but only after overwriting it itself, so the re-read observes
/// the reader's own store and is not racy. The bounded-window heuristic
/// flags it as a racy re-read; reaching-definitions dataflow sees the
/// intervening store and stays quiet. Returns `(writer_fn, reader_fn,
/// code)` — the pair does form a legitimate pairing.
pub fn reread_decoy(n: usize) -> (String, String, String) {
    let st = format!("pat{n}_rrd");
    let writer_fn = format!("pat{n}_rrd_pub");
    let reader_fn = format!("pat{n}_rrd_take");
    let code = format!(
        "struct {st} {{\n\tint num;\n\tint data;\n}};\n\
         void {writer_fn}(struct {st} *p, int v)\n{{\n\tp->data = v;\n\tsmp_wmb();\n\tp->num = v;\n}}\n\
         int {reader_fn}(struct {st} *p)\n{{\n\tint n = p->num;\n\tsmp_rmb();\n\tif (n) {{\n\t\tp->num = 0;\n\t\treturn p->num + p->data;\n\t}}\n\treturn 0;\n}}\n"
    );
    (writer_fn, reader_fn, code)
}

/// An *unfenced-reader* decoy for the missing-barrier detector: one
/// unpaired write barrier whose objects are also read by two fence-less
/// functions, neither in the guarded-read shape. The outlier rule keeps
/// the detector quiet (no guard test, and the unfenced readers are not
/// outnumbered by fenced siblings); disabling it reports both readers.
pub fn unfenced_decoy(n: usize) -> String {
    let st = format!("pat{n}_ufd");
    format!(
        "struct {st} {{\n\tint lo;\n\tint hi;\n}};\n\
         void {st}_set(struct {st} *p, int v)\n{{\n\tp->lo = v;\n\tsmp_wmb();\n\tp->hi = v + 1;\n}}\n\
         int {st}_sum(struct {st} *p)\n{{\n\treturn p->lo + p->hi;\n}}\n\
         int {st}_diff(struct {st} *p)\n{{\n\treturn p->hi - p->lo;\n}}\n"
    )
}

/// A cross-file call-chain instance (`PatternKind::CrossFileChain`): the
/// barriers sit in the two caller functions while every payload access
/// lives `depth` call levels away, each level meant for a different file.
/// At `--ipa-depth 0` each barrier sees a single shared object (`ready`)
/// and nothing pairs; at `--ipa-depth >= depth` summary composition
/// surfaces the payload fields and the protocol pairs across files.
#[derive(Clone, Debug)]
pub struct ChainInstance {
    /// Struct definition — duplicate into every file holding a fragment.
    pub struct_def: String,
    /// Fragments in placement order: writer caller, reader caller, then
    /// the chain levels outward (writer fill, reader take, and — for the
    /// buggy variant — the wrong-side peek chain).
    pub fragments: Vec<String>,
    pub expected: ExpectedPairing,
    /// Ground truth for the injected deep-callee misplaced read (`file`
    /// is filled by the generator).
    pub bug: Option<InjectedBug>,
}

impl ChainInstance {
    /// Collapse to a single-file [`PatternInstance`] (used by `emit`).
    pub fn flatten(self) -> PatternInstance {
        PatternInstance {
            structs: self.struct_def,
            writer: self.fragments[0].clone(),
            reader: self.fragments[1..].concat(),
            expected: Some(self.expected),
            bug: self.bug,
            ipc_writer: None,
        }
    }
}

/// Emit one cross-file chain with `depth` call edges between each barrier
/// and its payload accesses. The buggy variant reads `d0` *before* the
/// read barrier through its own depth-deep peek chain (and only there),
/// so the misplaced deviation is invisible below `--ipa-depth depth`.
pub fn cross_file_chain(n: usize, depth: usize, bug: Option<BugKind>) -> ChainInstance {
    let depth = depth.max(1);
    let misplaced = bug == Some(BugKind::Misplaced);
    let st = format!("chain{n}_obj");
    let writer_fn = format!("chain{n}_publish");
    let reader_fn = format!("chain{n}_consume");
    let wl = |i: usize| format!("chain{n}_fill{i}");
    let rl = |i: usize| format!("chain{n}_take{i}");
    let pl = |i: usize| format!("chain{n}_peek{i}");

    let struct_def = format!("struct {st} {{\n\tint d0;\n\tint d1;\n\tint ready;\n}};\n");

    let writer = format!(
        "void {writer_fn}(struct {st} *w, int v)\n{{\n\t{fill}(w, v);\n\tsmp_wmb();\n\tw->ready = 1;\n}}\n",
        fill = wl(1)
    );
    let reader = if misplaced {
        format!(
            "void {reader_fn}(struct {st} *r)\n{{\n\tif (!r->ready)\n\t\treturn;\n\t{peek}(r);\n\tsmp_rmb();\n\t{take}(r);\n}}\n",
            peek = pl(1),
            take = rl(1)
        )
    } else {
        format!(
            "void {reader_fn}(struct {st} *r)\n{{\n\tif (!r->ready)\n\t\treturn;\n\tsmp_rmb();\n\t{take}(r);\n}}\n",
            take = rl(1)
        )
    };

    let mut fragments = vec![writer, reader];
    for lvl in 1..=depth {
        let wbody = if lvl == depth {
            "\tw->d0 = v;\n\tw->d1 = v + 1;\n".to_string()
        } else {
            format!("\t{}(w, v);\n", wl(lvl + 1))
        };
        fragments.push(format!(
            "void {}(struct {st} *w, int v)\n{{\n{wbody}}}\n",
            wl(lvl)
        ));
        // The clean take chain reads both payload fields; the buggy one
        // reads only d1 here — d0 moved wholly to the peek chain so the
        // wrong-side read is not a benign re-read.
        let rbody = if lvl == depth {
            if misplaced {
                "\tpat_sink(r->d1);\n".to_string()
            } else {
                "\tpat_sink(r->d0);\n\tpat_sink(r->d1);\n".to_string()
            }
        } else {
            format!("\t{}(r);\n", rl(lvl + 1))
        };
        fragments.push(format!("void {}(struct {st} *r)\n{{\n{rbody}}}\n", rl(lvl)));
        if misplaced {
            let pbody = if lvl == depth {
                "\tpat_sink(r->d0);\n".to_string()
            } else {
                format!("\t{}(r);\n", pl(lvl + 1))
            };
            fragments.push(format!("void {}(struct {st} *r)\n{{\n{pbody}}}\n", pl(lvl)));
        }
    }

    ChainInstance {
        struct_def,
        fragments,
        expected: ExpectedPairing {
            functions: vec![writer_fn, reader_fn.clone()],
            objects: vec![
                (st.clone(), "d0".to_string()),
                (st.clone(), "d1".to_string()),
                (st.clone(), "ready".to_string()),
            ],
            kind: PatternKind::CrossFileChain,
            decoy: false,
        },
        bug: misplaced.then(|| bug_record(&reader_fn, BugKind::Misplaced, &st, "d0")),
    }
}

/// A "lone" barrier: a function whose barrier orders objects that appear
/// nowhere else (typically because the other side uses locks). These stay
/// unpaired, reproducing the paper's ~50% coverage (§6.4).
pub fn lone_barrier(n: usize, i: usize, rng: &mut impl Rng) -> String {
    let st = format!("pat{n}_lone{i}");
    let f = format!("pat{n}_lockside{i}");
    let use_wmb = rng.gen_bool(0.5);
    if use_wmb {
        format!(
            "struct {st} {{\n\tint state;\n\tint epoch;\n}};\nvoid {f}(struct {st} *p, int v)\n{{\n\tspin_lock(&{st}_lock);\n\tp->state = v;\n\tsmp_wmb();\n\tp->epoch = v + 1;\n\tspin_unlock(&{st}_lock);\n}}\n"
        )
    } else {
        format!(
            "struct {st} {{\n\tint state;\n\tint epoch;\n}};\nint {f}(struct {st} *p)\n{{\n\tint s = p->state;\n\tsmp_rmb();\n\treturn s + p->epoch;\n}}\n"
        )
    }
}

/// A barrier-free noise function (keeps the corpus realistic: most kernel
/// functions have no barriers).
pub fn noise_function(n: usize, i: usize, rng: &mut impl Rng) -> String {
    let st = format!("pat{n}_noise{i}");
    let f = format!("pat{n}_helper{i}");
    let ops = rng.gen_range(2..6usize);
    let mut s = format!(
        "struct {st} {{\n\tint a;\n\tint b;\n\tint c;\n}};\nint {f}(struct {st} *p, int k)\n{{\n\tint acc = 0;\n"
    );
    for j in 0..ops {
        match (j + i) % 3 {
            0 => writeln!(s, "\tacc += p->a + k;").unwrap(),
            1 => writeln!(s, "\tp->b = acc;").unwrap(),
            _ => writeln!(s, "\tif (p->c > k)\n\t\tacc -= p->c;").unwrap(),
        }
    }
    s.push_str("\treturn acc;\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn assemble(inst: &PatternInstance) -> String {
        format!("{}{}{}", inst.structs, inst.writer, inst.reader)
    }

    #[test]
    fn all_patterns_parse_clean() {
        for kind in PatternKind::ALL {
            let inst = emit(kind, 1, &mut rng(), None);
            let src = assemble(&inst);
            let parsed = ckit::parse_string("p.c", &src).unwrap();
            assert!(
                parsed.errors.is_empty(),
                "{kind:?} generated unparseable code: {:?}\n{src}",
                parsed.errors
            );
        }
    }

    #[test]
    fn all_bug_variants_parse_clean() {
        for kind in PatternKind::ALL {
            for &bug in supported_bugs(kind) {
                let inst = emit(kind, 2, &mut rng(), Some(bug));
                let src = assemble(&inst);
                let parsed = ckit::parse_string("p.c", &src).unwrap();
                assert!(
                    parsed.errors.is_empty(),
                    "{kind:?}+{bug:?}: {:?}\n{src}",
                    parsed.errors
                );
                assert!(
                    inst.bug.is_some(),
                    "{kind:?}+{bug:?} must record ground truth"
                );
            }
        }
    }

    #[test]
    fn pattern_names_are_unique_per_id() {
        let a = emit(PatternKind::InitFlag, 1, &mut rng(), None);
        let b = emit(PatternKind::InitFlag, 2, &mut rng(), None);
        assert!(a.writer.contains("pat1_publish"));
        assert!(b.writer.contains("pat2_publish"));
        assert!(!assemble(&b).contains("pat1_"));
    }

    #[test]
    fn wakeup_pattern_has_no_expected_pairing() {
        let inst = emit(PatternKind::WakeupPublish, 3, &mut rng(), None);
        assert!(inst.expected.is_none());
        assert_eq!(inst.ipc_writer.as_deref(), Some("pat3_submit"));
    }

    #[test]
    fn decoy_halves_parse_for_every_generic_type() {
        for ty in 0..GENERIC_TYPES.len() {
            let (fa, code_a) = decoy_half(4, true, ty, false);
            let (fb, code_b) = decoy_half(5, false, ty, ty % 2 == 0);
            let src = format!("{}{code_a}{code_b}", generic_type_def(ty));
            let parsed = ckit::parse_string("d.c", &src).unwrap();
            assert!(parsed.errors.is_empty(), "{:?}\n{src}", parsed.errors);
            assert_ne!(fa, fb);
        }
    }

    #[test]
    fn lone_barrier_parses() {
        let src = format!(
            "{}{}",
            lone_barrier(8, 0, &mut rng()),
            lone_barrier(8, 1, &mut rng())
        );
        let parsed = ckit::parse_string("l.c", &src).unwrap();
        assert!(parsed.errors.is_empty(), "{:?}\n{src}", parsed.errors);
    }

    #[test]
    fn noise_parses() {
        let src = noise_function(6, 0, &mut rng());
        let parsed = ckit::parse_string("n.c", &src).unwrap();
        assert!(parsed.errors.is_empty(), "{:?}\n{src}", parsed.errors);
    }

    #[test]
    fn missing_barrier_variants_drop_the_reader_fence() {
        for kind in [
            PatternKind::InitFlag,
            PatternKind::RingBuffer,
            PatternKind::AcquireRelease,
            PatternKind::AfterAtomic,
        ] {
            let inst = emit(kind, 3, &mut rng(), Some(BugKind::MissingBarrier));
            assert!(
                inst.expected.is_none(),
                "{kind:?}: fence-less reader must leave the writer unpaired"
            );
            assert!(
                !inst.reader.contains("smp_rmb") && !inst.reader.contains("smp_load_acquire"),
                "{kind:?} reader kept a fence:\n{}",
                inst.reader
            );
        }
    }

    #[test]
    fn new_decoys_parse() {
        let (wf, rf, code) = reread_decoy(12);
        assert_ne!(wf, rf);
        let src = format!("{code}{}", unfenced_decoy(13));
        let parsed = ckit::parse_string("d.c", &src).unwrap();
        assert!(parsed.errors.is_empty(), "{:?}\n{src}", parsed.errors);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = emit(
            PatternKind::RingBuffer,
            9,
            &mut rng(),
            Some(BugKind::RepeatedRead),
        );
        let b = emit(
            PatternKind::RingBuffer,
            9,
            &mut rng(),
            Some(BugKind::RepeatedRead),
        );
        assert_eq!(assemble(&a), assemble(&b));
    }
}
