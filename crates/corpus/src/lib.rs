//! # ofence-corpus — synthetic kernel corpus with ground truth
//!
//! The OFence paper evaluates on the Linux kernel; this crate substitutes
//! a deterministic generator that emits the same barrier idioms the
//! kernel uses (init-flag publication, ring buffers, seqcount protocols,
//! wake-up paths, acquire/release, barrier-before-atomic), at a
//! configurable scale, with:
//!
//! * a **ground-truth manifest** of expected pairings,
//! * seeded **bug injection** for every deviation class of paper Table 3,
//! * **generic-type decoys** reproducing the incorrect-pairing mechanism
//!   of §6.4,
//! * the paper's own listings and patches as fixtures.
//!
//! ```
//! use ofence_corpus::{generate, CorpusSpec};
//! let corpus = generate(&CorpusSpec::small(42));
//! assert_eq!(corpus.files.len(), 8);
//! assert!(corpus.manifest.expected_pairings.len() > 0);
//! ```

pub mod eval;
pub mod fixtures;
pub mod generator;
pub mod manifest;
pub mod patterns;

pub use eval::{evaluate, EvalSummary, FoundBug, FoundPairing};
pub use generator::{
    generate, inject_deviation, inject_edit, prepend_comment_lines, BugPlan, Corpus, CorpusSpec,
    GenFile,
};
pub use manifest::{BugKind, ExpectedPairing, InjectedBug, Manifest, PatternKind};
