//! Corpus assembly: distribute pattern instances, decoys, noise, and
//! injected bugs over a set of synthetic "kernel" files, recording the
//! ground truth.

use crate::manifest::{BugKind, ExpectedPairing, Manifest, PatternKind};
use crate::patterns::{self, emit, supported_bugs};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated source file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GenFile {
    pub name: String,
    pub content: String,
}

/// How many bugs of each class to inject (paper Table 3 is 8/3/1, plus
/// the 53 unneeded barriers of §6.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BugPlan {
    pub misplaced: usize,
    pub repeated_read: usize,
    pub wrong_type: usize,
    pub unneeded: usize,
    /// Readers whose fence is removed entirely (the dataflow extension's
    /// missing-barrier class — not part of the paper's Table 3).
    pub missing_barrier: usize,
}

impl BugPlan {
    pub fn none() -> BugPlan {
        BugPlan {
            misplaced: 0,
            repeated_read: 0,
            wrong_type: 0,
            unneeded: 0,
            missing_barrier: 0,
        }
    }

    /// The paper's bug counts.
    pub fn paper() -> BugPlan {
        BugPlan {
            misplaced: 8,
            repeated_read: 3,
            wrong_type: 1,
            unneeded: 53,
            missing_barrier: 0,
        }
    }

    pub fn total(&self) -> usize {
        self.misplaced + self.repeated_read + self.wrong_type + self.unneeded + self.missing_barrier
    }

    fn count_mut(&mut self, kind: BugKind) -> &mut usize {
        match kind {
            BugKind::Misplaced => &mut self.misplaced,
            BugKind::RepeatedRead => &mut self.repeated_read,
            BugKind::WrongBarrierType => &mut self.wrong_type,
            BugKind::UnneededBarrier => &mut self.unneeded,
            BugKind::MissingBarrier => &mut self.missing_barrier,
        }
    }
}

/// Corpus shape parameters.
#[derive(Clone, Debug)]
pub struct CorpusSpec {
    pub seed: u64,
    pub files: usize,
    /// Barrier-pattern instances per file.
    pub patterns_per_file: usize,
    /// Barrier-free helper functions per file.
    pub noise_per_file: usize,
    /// Generic-type decoy pairs (each yields one incorrect pairing,
    /// reproducing §6.4's false-positive mechanism). One in five uses a
    /// "consistent" reader: the bogus pairing forms but produces no bogus
    /// patch — the paper saw 15 incorrect pairings but 12 incorrect
    /// patches.
    pub decoy_pairs: usize,
    /// Additional decoys whose writer-side objects sit ~7 statements from
    /// the barrier: invisible at the default 5-statement window, they
    /// surface as extra incorrect pairings when the window grows
    /// (Figure 6's caption).
    pub far_decoy_pairs: usize,
    /// Barrier functions per file whose objects appear nowhere else
    /// (code synchronizing with lock-based counterparts): these stay
    /// unpaired and set the corpus's coverage level (§6.4's ~50%).
    pub lone_per_file: usize,
    /// Fraction of instances whose writer and reader land in different
    /// files (cross-file pairing, like the paper's RPC example).
    pub split_fraction: f64,
    /// Benign re-read decoys: the reader re-reads a field after storing
    /// to it itself. The bounded-window re-read heuristic flags each one;
    /// reaching-definitions dataflow suppresses them all.
    pub reread_decoys: usize,
    /// Unfenced-reader decoys for the missing-barrier detector: an
    /// unpaired write barrier plus two fence-less readers that do *not*
    /// follow the guarded-read shape. The outlier rule keeps them quiet;
    /// the `no_outlier` ablation reports two false positives per decoy.
    pub unfenced_decoys: usize,
    /// Barrier-free files appended after the pattern files. Real kernel
    /// trees are mostly files with no barriers at all; the cache bench
    /// uses this knob so per-file analysis cost dominates the global
    /// pairing phases and warm-cache speedups are visible.
    pub filler_files: usize,
    /// Cross-file call-chain instances: barrier in a caller, payload
    /// accesses `chain_depth` call levels away, every level in a
    /// different file. Invisible at `--ipa-depth 0`.
    pub cross_file_chains: usize,
    /// Call edges between each chain barrier and its payload accesses.
    pub chain_depth: usize,
    /// How many of the chain instances carry a deep-callee misplaced
    /// read (the first `chain_bugs` of them).
    pub chain_bugs: usize,
    pub bugs: BugPlan,
}

impl CorpusSpec {
    /// A small corpus for tests.
    pub fn small(seed: u64) -> CorpusSpec {
        CorpusSpec {
            seed,
            files: 8,
            patterns_per_file: 2,
            noise_per_file: 1,
            decoy_pairs: 1,
            far_decoy_pairs: 0,
            lone_per_file: 0,
            split_fraction: 0.25,
            reread_decoys: 0,
            unfenced_decoys: 0,
            filler_files: 0,
            cross_file_chains: 0,
            chain_depth: 2,
            chain_bugs: 0,
            bugs: BugPlan::none(),
        }
    }

    /// Monorepo throughput tiers shared by `bench --bin scale`, the CI
    /// `scale-smoke` job, and `ofence gen --tier`: a fixed 40-file
    /// barrier core plus filler growth to the named total, mirroring a
    /// kernel tree's shape (barrier code is a thin crust on a large
    /// barrier-free bulk). Accepts `1200`/`1.2k`, `12k`, and `100k`.
    pub fn tier(name: &str, seed: u64) -> Option<CorpusSpec> {
        let total: usize = match name {
            "1200" | "1.2k" => 1_200,
            "12k" => 12_000,
            "100k" => 100_000,
            _ => return None,
        };
        Some(CorpusSpec {
            seed,
            files: 40,
            patterns_per_file: 1,
            noise_per_file: 2,
            decoy_pairs: 2,
            far_decoy_pairs: 0,
            lone_per_file: 1,
            split_fraction: 0.2,
            reread_decoys: 0,
            unfenced_decoys: 0,
            filler_files: total - 40,
            cross_file_chains: 0,
            chain_depth: 2,
            chain_bugs: 0,
            bugs: BugPlan::none(),
        })
    }

    /// Paper-scale corpus: ~600 files with barriers (the paper analyzes
    /// 614), Table 3 bug counts, 15 decoy pairings (§6.4), plus the
    /// dataflow extension's missing-barrier bugs and decoys.
    pub fn paper_scale(seed: u64) -> CorpusSpec {
        CorpusSpec {
            seed,
            files: 600,
            patterns_per_file: 1,
            noise_per_file: 3,
            decoy_pairs: 15,
            far_decoy_pairs: 5,
            lone_per_file: 2,
            split_fraction: 0.2,
            reread_decoys: 6,
            unfenced_decoys: 6,
            filler_files: 0,
            cross_file_chains: 0,
            chain_depth: 2,
            chain_bugs: 0,
            bugs: BugPlan {
                missing_barrier: 6,
                ..BugPlan::paper()
            },
        }
    }
}

/// A generated corpus plus its ground truth.
#[derive(Clone, Debug)]
pub struct Corpus {
    pub files: Vec<GenFile>,
    pub manifest: Manifest,
}

/// Pattern kind frequencies: init-flag publication dominates real kernel
/// barrier usage; wake-up and seqcount are common but rarer.
const KIND_CYCLE: &[PatternKind] = &[
    PatternKind::InitFlag,
    PatternKind::RingBuffer,
    PatternKind::InitFlag,
    PatternKind::AcquireRelease,
    PatternKind::WakeupPublish,
    PatternKind::InitFlag,
    PatternKind::Seqcount,
    PatternKind::RingBuffer,
    PatternKind::AcquireRelease,
    PatternKind::AtomicBarrier,
    PatternKind::MultiReader,
    PatternKind::RcuPublish,
    PatternKind::SleepWake,
    PatternKind::AfterAtomic,
    PatternKind::WakeupPublish,
];

/// Generate a corpus from a spec. Deterministic in `spec.seed`.
pub fn generate(spec: &CorpusSpec) -> Corpus {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let total = spec.files * spec.patterns_per_file;

    // Decide each instance's kind.
    let kinds: Vec<PatternKind> = (0..total)
        .map(|i| KIND_CYCLE[i % KIND_CYCLE.len()])
        .collect();

    // Assign bugs: for each class, pick supporting instances round-robin,
    // spread across the corpus; at most one bug per instance. Unneeded
    // barriers go to wake-up patterns first (§6.3: "mostly found in the
    // single barrier pattern where barriers are followed by a wake up
    // function").
    let mut bug_at: Vec<Option<BugKind>> = vec![None; total];
    let mut remaining = spec.bugs;
    let order = [
        BugKind::UnneededBarrier,
        BugKind::Misplaced,
        BugKind::RepeatedRead,
        BugKind::WrongBarrierType,
        BugKind::MissingBarrier,
    ];
    for kind in order {
        let mut candidates: Vec<usize> = (0..total)
            .filter(|&i| bug_at[i].is_none() && supported_bugs(kinds[i]).contains(&kind))
            .collect();
        let mut step_override = None;
        if kind == BugKind::UnneededBarrier {
            // §6.3: unneeded barriers live almost exclusively in front of
            // wake-up calls — fill wake-up instances first, in order.
            candidates.sort_by_key(|&i| (kinds[i] != PatternKind::WakeupPublish, i));
            step_override = Some(1);
        }
        let want = *remaining.count_mut(kind);
        // Spread assignments over the candidate list.
        let step = step_override.unwrap_or_else(|| (candidates.len() / want.max(1)).max(1));
        let mut assigned = 0;
        let mut idx = 0;
        while assigned < want && idx < candidates.len() {
            bug_at[candidates[idx]] = Some(kind);
            assigned += 1;
            idx += step;
        }
        // Fill any shortfall from the front.
        if assigned < want {
            for &c in &candidates {
                if assigned >= want {
                    break;
                }
                if bug_at[c].is_none() {
                    bug_at[c] = Some(kind);
                    assigned += 1;
                }
            }
        }
    }

    // Emit instances and lay them out over files.
    let mut file_bodies: Vec<String> = (0..spec.files)
        .map(|i| format!("/* synthetic kernel unit {i} — generated, do not edit */\n"))
        .collect();
    let mut manifest = Manifest {
        seed: spec.seed,
        ..Default::default()
    };
    let file_name = |i: usize| format!("gen/unit{i:04}.c");

    for (inst_idx, &kind) in kinds.iter().enumerate() {
        let inst = emit(kind, inst_idx, &mut rng, bug_at[inst_idx]);
        let home = inst_idx % spec.files;
        let split = spec.files > 1 && rng.gen_bool(spec.split_fraction);
        let away = (home + 1) % spec.files;
        if split {
            file_bodies[home].push_str(&inst.structs);
            file_bodies[home].push_str(&inst.writer);
            file_bodies[away].push_str(&inst.structs);
            file_bodies[away].push_str(&inst.reader);
        } else {
            file_bodies[home].push_str(&inst.structs);
            file_bodies[home].push_str(&inst.writer);
            file_bodies[home].push_str(&inst.reader);
        }
        *manifest
            .pattern_counts
            .entry(format!("{kind:?}"))
            .or_default() += 1;
        if let Some(e) = inst.expected {
            manifest.expected_pairings.push(e);
        }
        if let Some(mut b) = inst.bug {
            // The bug lives where its function lives.
            let in_reader = inst.reader.contains(&format!("{}(", b.function));
            b.file = file_name(if split && in_reader { away } else { home });
            manifest.bugs.push(b);
        }
        if let Some(w) = inst.ipc_writer {
            manifest.implicit_ipc_writers.push(w);
        }
    }

    // Decoys: writer half and reader half in different files, cycling
    // over the generic container types so unrelated subsystems appear to
    // share objects.
    let mut decoy_defs: std::collections::HashSet<(usize, usize)> = Default::default();
    for d in 0..spec.decoy_pairs + spec.far_decoy_pairs {
        let a = (d * 7) % spec.files.max(1);
        let b = (a + spec.files / 2 + 1) % spec.files.max(1);
        let id = total + d;
        let ty = d % patterns::GENERIC_TYPES.len();
        let far = d >= spec.decoy_pairs;
        // Far decoys exist only to make the pairing count window-
        // sensitive; their readers are consistent so they add no patches.
        let consistent = far || (spec.decoy_pairs >= 5 && d % 5 == 4);
        let (fa, code_a) = patterns::decoy_half(id, true, ty, far);
        let (fb, code_b) = if consistent {
            patterns::decoy_consistent_reader(id + 10_000, ty)
        } else {
            patterns::decoy_half(id + 10_000, false, ty, far)
        };
        for (fi, code) in [(a, code_a), (b, code_b)] {
            if decoy_defs.insert((fi, ty)) {
                file_bodies[fi].push_str(&patterns::generic_type_def(ty));
            }
            file_bodies[fi].push_str(&code);
        }
        let (tyname, f1, f2) = patterns::GENERIC_TYPES[ty];
        manifest.expected_pairings.push(ExpectedPairing {
            functions: vec![fa, fb],
            objects: vec![
                (tyname.to_string(), f1.to_string()),
                (tyname.to_string(), f2.to_string()),
            ],
            kind: PatternKind::InitFlag,
            decoy: true,
        });
    }

    // Benign re-read decoys: a real pairing whose re-read is preceded by
    // the reader's own store (window heuristic FP, dataflow-clean).
    for d in 0..spec.reread_decoys {
        let fi = (d * 3 + 1) % spec.files.max(1);
        let (wf, rf, code) = patterns::reread_decoy(total + 40_000 + d);
        file_bodies[fi].push_str(&code);
        manifest.expected_pairings.push(ExpectedPairing {
            functions: vec![wf, rf],
            objects: vec![],
            kind: PatternKind::InitFlag,
            decoy: false,
        });
    }

    // Unfenced-reader decoys: exercise the missing-barrier outlier rule.
    for d in 0..spec.unfenced_decoys {
        let fi = (d * 5 + 2) % spec.files.max(1);
        file_bodies[fi].push_str(&patterns::unfenced_decoy(total + 50_000 + d));
    }

    // Cross-file call chains: every fragment (caller, each chain level)
    // in its own file when the corpus has enough files. Ids start at
    // 90_000, above every other generator range.
    let mut chain_defs: std::collections::HashSet<(usize, usize)> = Default::default();
    for c in 0..spec.cross_file_chains {
        let id = 90_000 + c;
        let bug = (c < spec.chain_bugs).then_some(BugKind::Misplaced);
        let inst = patterns::cross_file_chain(id, spec.chain_depth, bug);
        let base = (c * 11) % spec.files.max(1);
        let mut bug_file = None;
        for (k, frag) in inst.fragments.iter().enumerate() {
            let fi = (base + k) % spec.files.max(1);
            if chain_defs.insert((fi, id)) {
                file_bodies[fi].push_str(&inst.struct_def);
            }
            file_bodies[fi].push_str(frag);
            // Fragment 1 is the reader caller — where the injected
            // deep-callee misplaced read is reported.
            if k == 1 {
                bug_file = Some(file_name(fi));
            }
        }
        *manifest
            .pattern_counts
            .entry(format!("{:?}", PatternKind::CrossFileChain))
            .or_default() += 1;
        manifest.expected_pairings.push(inst.expected);
        if let Some(mut b) = inst.bug {
            b.file = bug_file.clone().unwrap_or_default();
            manifest.bugs.push(b);
        }
    }

    // Lone barriers (lock-adjacent code: never pairs) and noise.
    for (fi, body) in file_bodies.iter_mut().enumerate() {
        for li in 0..spec.lone_per_file {
            body.push_str(&patterns::lone_barrier(total + 30_000 + fi, li, &mut rng));
        }
        for ni in 0..spec.noise_per_file {
            body.push_str(&patterns::noise_function(total + 20_000 + fi, ni, &mut rng));
        }
    }

    let mut files: Vec<GenFile> = file_bodies
        .into_iter()
        .enumerate()
        .map(|(i, content)| GenFile {
            name: file_name(i),
            content,
        })
        .collect();

    // Barrier-free filler files: no sites, no pairings, just helper code
    // the frontend has to chew through. Each file draws from its own rng
    // stream seeded by (corpus seed, file index), so generation is O(1)
    // per file regardless of position — the 100k tier costs the same per
    // file as the 1.2k tier, and files could be produced in any order.
    // Ids live at 200_000+, above every other generator and injection
    // range (patterns stop below total+50_000, chains at 90_000+count,
    // inject_edit at 70_000+index, inject_deviation below 89_000), so
    // filler names never collide even at 100k files.
    files.reserve_exact(spec.filler_files);
    for fi in 0..spec.filler_files {
        let mut frng = StdRng::seed_from_u64(
            spec.seed
                ^ (0xf111_e500u64).wrapping_add((fi as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        );
        let mut content = String::with_capacity(4096);
        use std::fmt::Write as _;
        let _ = writeln!(
            content,
            "/* synthetic kernel filler {fi} — generated, do not edit */"
        );
        for ni in 0..10 {
            content.push_str(&patterns::noise_function(200_000 + fi, ni, &mut frng));
        }
        files.push(GenFile {
            name: format!("gen/filler{fi:05}.c"),
            content,
        });
    }

    Corpus { files, manifest }
}

/// Mutate one file of a generated corpus, deterministically in `seed`:
/// appends a barrier-free helper function, so the file's content hash
/// changes without touching any barrier protocol. Returns the edited
/// file's name. Used by warm-cache benchmarks, the watch-mode tests, and
/// the incremental property tests to model a developer edit. Apply at
/// most once per (corpus, seed) — repeating the same seed would emit a
/// duplicate definition.
pub fn inject_edit(corpus: &mut Corpus, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0f3e_c0de);
    let idx = rng.gen_range(0..corpus.files.len());
    let f = &mut corpus.files[idx];
    f.content.push_str(&patterns::noise_function(
        70_000 + idx,
        (seed % 997) as usize,
        &mut rng,
    ));
    f.name.clone()
}

/// Prepend `lines` comment lines to every file of the corpus. Shifts all
/// code down without changing any token, so content-based deviation
/// fingerprints must be invariant under it. Used by the fingerprint
/// stability tests and the CI diff gate.
pub fn prepend_comment_lines(corpus: &mut Corpus, lines: usize) {
    for f in &mut corpus.files {
        let mut header = String::with_capacity(lines * 24 + f.content.len());
        for i in 0..lines {
            header.push_str(&format!("/* provenance pad {i} */\n"));
        }
        header.push_str(&f.content);
        f.content = header;
    }
}

/// Append one brand-new misplaced-access deviation to a file of the
/// corpus, deterministically in `seed`: a fresh init-flag pattern whose
/// reader touches the payload before checking the flag. Records the bug
/// and its expected pairing in the manifest and returns the ground truth.
/// The diff engine must classify exactly this one finding as new.
pub fn inject_deviation(corpus: &mut Corpus, seed: u64) -> crate::manifest::InjectedBug {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0bad_f1a6_0de7_1a7e);
    // Ids above every generator range so names never collide with the
    // base corpus (patterns stop at 70_000 + files from inject_edit).
    let id = 80_000 + (seed % 9_000) as usize;
    let inst = emit(
        PatternKind::InitFlag,
        id,
        &mut rng,
        Some(BugKind::Misplaced),
    );
    let idx = rng.gen_range(0..corpus.files.len());
    let f = &mut corpus.files[idx];
    f.content.push_str(&inst.structs);
    f.content.push_str(&inst.writer);
    f.content.push_str(&inst.reader);
    let mut bug = inst.bug.expect("InitFlag supports Misplaced");
    bug.file = f.name.clone();
    if let Some(e) = inst.expected {
        corpus.manifest.expected_pairings.push(e);
    }
    corpus.manifest.bugs.push(bug.clone());
    bug
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_file_count() {
        let corpus = generate(&CorpusSpec::small(1));
        assert_eq!(corpus.files.len(), 8);
    }

    #[test]
    fn every_file_parses() {
        let corpus = generate(&CorpusSpec::small(2));
        for f in &corpus.files {
            let parsed = ckit::parse_string(&f.name, &f.content).unwrap();
            assert!(
                parsed.errors.is_empty(),
                "{}: {:?}\n{}",
                f.name,
                parsed.errors,
                f.content
            );
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = generate(&CorpusSpec::small(42));
        let b = generate(&CorpusSpec::small(42));
        assert_eq!(a.files, b.files);
        assert_eq!(a.manifest.bugs, b.manifest.bugs);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&CorpusSpec::small(1));
        let b = generate(&CorpusSpec::small(2));
        assert_ne!(a.files, b.files);
    }

    #[test]
    fn bug_plan_is_honored_exactly() {
        let mut spec = CorpusSpec::small(3);
        spec.files = 30;
        spec.patterns_per_file = 2;
        spec.bugs = BugPlan {
            misplaced: 8,
            repeated_read: 3,
            wrong_type: 1,
            unneeded: 5,
            missing_barrier: 2,
        };
        let corpus = generate(&spec);
        assert_eq!(corpus.manifest.count_bugs(BugKind::Misplaced), 8);
        assert_eq!(corpus.manifest.count_bugs(BugKind::RepeatedRead), 3);
        assert_eq!(corpus.manifest.count_bugs(BugKind::WrongBarrierType), 1);
        assert_eq!(corpus.manifest.count_bugs(BugKind::UnneededBarrier), 5);
        assert_eq!(corpus.manifest.count_bugs(BugKind::MissingBarrier), 2);
    }

    #[test]
    fn bug_files_exist_and_contain_function() {
        let mut spec = CorpusSpec::small(4);
        spec.files = 12;
        spec.bugs = BugPlan {
            misplaced: 3,
            repeated_read: 2,
            wrong_type: 1,
            unneeded: 2,
            missing_barrier: 1,
        };
        let corpus = generate(&spec);
        for bug in &corpus.manifest.bugs {
            let f = corpus
                .files
                .iter()
                .find(|f| f.name == bug.file)
                .unwrap_or_else(|| panic!("file {} missing", bug.file));
            assert!(
                f.content.contains(&format!("{}(", bug.function)),
                "{} not in {}",
                bug.function,
                bug.file
            );
        }
    }

    #[test]
    fn decoys_recorded() {
        let corpus = generate(&CorpusSpec::small(5));
        assert_eq!(corpus.manifest.decoy_pairings().count(), 1);
    }

    #[test]
    fn paper_scale_counts() {
        let spec = CorpusSpec::paper_scale(0);
        // 12 ordering bugs + 53 unneeded + 6 missing-barrier extension.
        assert_eq!(spec.bugs.total(), 71);
        assert_eq!(spec.files, 600);
    }

    #[test]
    fn filler_files_are_barrier_free_and_parse() {
        let mut spec = CorpusSpec::small(11);
        spec.filler_files = 4;
        let corpus = generate(&spec);
        assert_eq!(corpus.files.len(), 8 + 4);
        let fillers: Vec<_> = corpus
            .files
            .iter()
            .filter(|f| f.name.starts_with("gen/filler"))
            .collect();
        assert_eq!(fillers.len(), 4);
        for f in fillers {
            assert!(!f.content.contains("smp_"), "{} has a barrier", f.name);
            let parsed = ckit::parse_string(&f.name, &f.content).unwrap();
            assert!(parsed.errors.is_empty(), "{}: {:?}", f.name, parsed.errors);
        }
        // The manifest's ground truth is untouched by filler.
        let base = generate(&CorpusSpec::small(11));
        assert_eq!(
            corpus.manifest.expected_pairings.len(),
            base.manifest.expected_pairings.len()
        );
    }

    #[test]
    fn tier_specs_share_one_shape() {
        assert!(CorpusSpec::tier("2400", 1).is_none());
        let t12 = CorpusSpec::tier("1200", 1).unwrap();
        let t12k = CorpusSpec::tier("12k", 1).unwrap();
        let t100k = CorpusSpec::tier("100k", 1).unwrap();
        assert_eq!(t12.files + t12.filler_files, 1_200);
        assert_eq!(t12k.files + t12k.filler_files, 12_000);
        assert_eq!(t100k.files + t100k.filler_files, 100_000);
        // "1.2k" is an alias.
        let alias = CorpusSpec::tier("1.2k", 1).unwrap();
        assert_eq!(alias.filler_files, t12.filler_files);
        // The barrier core is tier-independent: only filler grows, so
        // ground truth (pairings, bugs) is identical across tiers.
        let a = generate(&CorpusSpec {
            filler_files: 0,
            ..t12.clone()
        });
        let b = generate(&CorpusSpec {
            filler_files: 0,
            ..t100k.clone()
        });
        assert_eq!(
            a.manifest.expected_pairings.len(),
            b.manifest.expected_pairings.len()
        );
        // Filler generation is per-file seeded: a tier prefix is stable
        // under growth, so a corpus is a strict extension of smaller ones.
        let small = generate(&CorpusSpec {
            filler_files: 3,
            ..t12.clone()
        });
        let big = generate(&CorpusSpec {
            filler_files: 6,
            ..t12.clone()
        });
        assert_eq!(&big.files[..small.files.len()], &small.files[..]);
    }

    #[test]
    fn inject_edit_changes_exactly_one_file() {
        let base = generate(&CorpusSpec::small(12));
        let mut edited = base.clone();
        let name = inject_edit(&mut edited, 7);
        let mut changed = 0;
        for (a, b) in base.files.iter().zip(&edited.files) {
            assert_eq!(a.name, b.name);
            if a.content != b.content {
                changed += 1;
                assert_eq!(a.name, name);
                assert!(b.content.starts_with(a.content.as_str()));
                let parsed = ckit::parse_string(&b.name, &b.content).unwrap();
                assert!(parsed.errors.is_empty(), "{}: {:?}", b.name, parsed.errors);
            }
        }
        assert_eq!(changed, 1);
        // Deterministic in the seed.
        let mut again = base.clone();
        assert_eq!(inject_edit(&mut again, 7), name);
        assert_eq!(again.files, edited.files);
    }

    #[test]
    fn prepend_comment_lines_only_shifts() {
        let base = generate(&CorpusSpec::small(13));
        let mut padded = base.clone();
        prepend_comment_lines(&mut padded, 100);
        for (a, b) in base.files.iter().zip(&padded.files) {
            assert_eq!(a.name, b.name);
            assert!(b.content.ends_with(a.content.as_str()));
            assert_eq!(
                b.content.lines().count(),
                a.content.lines().count() + 100,
                "{}",
                a.name
            );
            let parsed = ckit::parse_string(&b.name, &b.content).unwrap();
            assert!(parsed.errors.is_empty(), "{}: {:?}", b.name, parsed.errors);
        }
        // The manifest (line-free ground truth) is untouched.
        assert_eq!(base.manifest.bugs, padded.manifest.bugs);
    }

    #[test]
    fn inject_deviation_adds_exactly_one_bug() {
        let base = generate(&CorpusSpec::small(14));
        let mut edited = base.clone();
        let bug = inject_deviation(&mut edited, 21);
        assert_eq!(bug.kind, BugKind::Misplaced);
        assert_eq!(edited.manifest.bugs.len(), base.manifest.bugs.len() + 1);
        assert_eq!(
            edited.manifest.expected_pairings.len(),
            base.manifest.expected_pairings.len() + 1
        );
        let f = edited
            .files
            .iter()
            .find(|f| f.name == bug.file)
            .expect("bug file exists");
        assert!(f.content.contains(&format!("{}(", bug.function)));
        let parsed = ckit::parse_string(&f.name, &f.content).unwrap();
        assert!(parsed.errors.is_empty(), "{}: {:?}", f.name, parsed.errors);
        // Exactly one file changed, and deterministically in the seed.
        let changed = base
            .files
            .iter()
            .zip(&edited.files)
            .filter(|(a, b)| a.content != b.content)
            .count();
        assert_eq!(changed, 1);
        let mut again = base.clone();
        assert_eq!(inject_deviation(&mut again, 21), bug);
        assert_eq!(again.files, edited.files);
    }

    #[test]
    fn cross_file_chains_span_files_and_record_truth() {
        let mut spec = CorpusSpec::small(15);
        spec.files = 10;
        spec.cross_file_chains = 3;
        spec.chain_depth = 2;
        spec.chain_bugs = 1;
        let corpus = generate(&spec);
        let base = generate(&CorpusSpec::small(15));
        // Ground truth: one pairing per chain, one misplaced bug.
        let chains: Vec<_> = corpus
            .manifest
            .expected_pairings
            .iter()
            .filter(|p| p.kind == PatternKind::CrossFileChain)
            .collect();
        assert_eq!(chains.len(), 3);
        assert_eq!(corpus.manifest.bugs.len(), base.manifest.bugs.len() + 1);
        let bug = corpus.manifest.bugs.last().unwrap();
        assert_eq!(bug.kind, BugKind::Misplaced);
        assert!(bug.function.starts_with("chain90000_"));
        // The barrier callers and the payload leaves live in different
        // files: no file holds both a chain's publish caller and its
        // deepest fill.
        for c in 0..3usize {
            let id = 90_000 + c;
            let caller = format!("void chain{id}_publish(");
            let leaf = format!("void chain{id}_fill2(");
            for f in &corpus.files {
                assert!(
                    !(f.content.contains(&caller) && f.content.contains(&leaf)),
                    "{} holds caller and leaf of chain {id}",
                    f.name
                );
            }
        }
        // Everything still parses.
        for f in &corpus.files {
            let parsed = ckit::parse_string(&f.name, &f.content).unwrap();
            assert!(parsed.errors.is_empty(), "{}: {:?}", f.name, parsed.errors);
        }
        // Bug file ground truth points at the reader caller's file.
        let bf = corpus
            .files
            .iter()
            .find(|f| f.name == bug.file)
            .expect("bug file exists");
        assert!(bf.content.contains(&format!("{}(", bug.function)));
    }

    #[test]
    fn decoy_knobs_emit_code_and_pairings() {
        let mut spec = CorpusSpec::small(9);
        spec.reread_decoys = 2;
        spec.unfenced_decoys = 2;
        let corpus = generate(&spec);
        let all: String = corpus.files.iter().map(|f| f.content.as_str()).collect();
        assert_eq!(all.matches("_rrd_take").count(), 2);
        assert_eq!(all.matches("_ufd_sum").count(), 2);
        // Re-read decoys are legitimate pairings and are recorded as such.
        let base = generate(&CorpusSpec::small(9));
        assert_eq!(
            corpus.manifest.real_pairings().count(),
            base.manifest.real_pairings().count() + 2
        );
        for f in &corpus.files {
            let parsed = ckit::parse_string(&f.name, &f.content).unwrap();
            assert!(parsed.errors.is_empty(), "{}: {:?}", f.name, parsed.errors);
        }
    }
}
