//! Evaluation: compare analysis output against the ground-truth manifest.
//!
//! The comparison is expressed over plain strings (function names, object
//! tuples, bug-class names) so this crate stays independent of the
//! analyzer — the bench harness converts `ofence` results into
//! [`FoundBug`]/[`FoundPairing`] records.

use crate::manifest::{BugKind, Manifest};
use serde::{Deserialize, Serialize};

/// A deviation reported by the analyzer, reduced to comparable facts.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FoundBug {
    pub function: String,
    pub kind: BugKind,
    /// Involved object, when reported.
    pub strukt: String,
    pub field: String,
}

/// A pairing reported by the analyzer: the set of functions involved.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FoundPairing {
    pub functions: Vec<String>,
}

/// Recall/precision summary.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct EvalSummary {
    // Bugs.
    pub bugs_injected: usize,
    pub bugs_found: usize,
    /// Reported deviations with no matching injection (false positives).
    pub bug_false_positives: usize,
    pub bug_recall: f64,
    pub bug_precision: f64,
    /// Per bug-class (injected, found).
    pub per_kind: Vec<(String, usize, usize)>,

    // Pairings.
    pub pairings_expected: usize,
    pub pairings_found: usize,
    /// Reported pairings that match a decoy (incorrect pairings, §6.4).
    pub decoy_pairings_found: usize,
    /// Reported pairings matching neither a real instance nor a decoy.
    pub unexplained_pairings: usize,
    pub pairing_recall: f64,
}

/// Match reported findings against the manifest.
pub fn evaluate(
    manifest: &Manifest,
    found_bugs: &[FoundBug],
    found_pairings: &[FoundPairing],
) -> EvalSummary {
    let mut summary = EvalSummary {
        bugs_injected: manifest.bugs.len(),
        ..Default::default()
    };

    // --- bugs ---
    let mut matched_injections = vec![false; manifest.bugs.len()];
    let mut fp = 0usize;
    for fb in found_bugs {
        let hit = manifest.bugs.iter().enumerate().find(|(i, b)| {
            !matched_injections[*i]
                && b.kind == fb.kind
                && b.function == fb.function
                && (b.strukt.is_empty() || b.strukt == fb.strukt)
                && (b.field.is_empty() || b.field == fb.field)
        });
        match hit {
            Some((i, _)) => matched_injections[i] = true,
            None => fp += 1,
        }
    }
    summary.bugs_found = matched_injections.iter().filter(|&&m| m).count();
    summary.bug_false_positives = fp;
    summary.bug_recall = ratio(summary.bugs_found, summary.bugs_injected);
    summary.bug_precision = ratio(summary.bugs_found, found_bugs.len());
    for kind in BugKind::ALL {
        let injected = manifest.count_bugs(kind);
        let found = manifest
            .bugs
            .iter()
            .zip(&matched_injections)
            .filter(|(b, &m)| m && b.kind == kind)
            .count();
        if injected > 0 || found > 0 {
            summary
                .per_kind
                .push((format!("{kind:?}"), injected, found));
        }
    }

    // --- pairings ---
    // A reported pairing covers an instance when its function set
    // intersects the instance's functions in ≥ 2 functions (writer + at
    // least one reader).
    let covers = |exp: &crate::manifest::ExpectedPairing, fp: &FoundPairing| {
        exp.functions
            .iter()
            .filter(|f| fp.functions.contains(f))
            .count()
            >= 2
    };
    summary.pairings_expected = manifest.real_pairings().count();
    summary.pairings_found = manifest
        .real_pairings()
        .filter(|exp| found_pairings.iter().any(|fp| covers(exp, fp)))
        .count();
    summary.decoy_pairings_found = manifest
        .decoy_pairings()
        .filter(|exp| found_pairings.iter().any(|fp| covers(exp, fp)))
        .count();
    summary.unexplained_pairings = found_pairings
        .iter()
        .filter(|fp| !manifest.expected_pairings.iter().any(|exp| covers(exp, fp)))
        .count();
    summary.pairing_recall = ratio(summary.pairings_found, summary.pairings_expected);
    summary
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{ExpectedPairing, InjectedBug, PatternKind};

    fn manifest() -> Manifest {
        Manifest {
            bugs: vec![InjectedBug {
                file: "a.c".into(),
                function: "reader".into(),
                kind: BugKind::Misplaced,
                strukt: "s".into(),
                field: "flag".into(),
            }],
            expected_pairings: vec![
                ExpectedPairing {
                    functions: vec!["writer".into(), "reader".into()],
                    objects: vec![],
                    kind: PatternKind::InitFlag,
                    decoy: false,
                },
                ExpectedPairing {
                    functions: vec!["d_a".into(), "d_b".into()],
                    objects: vec![],
                    kind: PatternKind::InitFlag,
                    decoy: true,
                },
            ],
            ..Default::default()
        }
    }

    #[test]
    fn perfect_match() {
        let s = evaluate(
            &manifest(),
            &[FoundBug {
                function: "reader".into(),
                kind: BugKind::Misplaced,
                strukt: "s".into(),
                field: "flag".into(),
            }],
            &[FoundPairing {
                functions: vec!["writer".into(), "reader".into()],
            }],
        );
        assert_eq!(s.bugs_found, 1);
        assert_eq!(s.bug_false_positives, 0);
        assert!((s.bug_recall - 1.0).abs() < 1e-9);
        assert_eq!(s.pairings_found, 1);
        assert_eq!(s.decoy_pairings_found, 0);
    }

    #[test]
    fn miss_and_false_positive() {
        let s = evaluate(
            &manifest(),
            &[FoundBug {
                function: "other".into(),
                kind: BugKind::RepeatedRead,
                strukt: "t".into(),
                field: "x".into(),
            }],
            &[],
        );
        assert_eq!(s.bugs_found, 0);
        assert_eq!(s.bug_false_positives, 1);
        assert_eq!(s.bug_recall, 0.0);
    }

    #[test]
    fn decoy_pairing_counted_separately() {
        let s = evaluate(
            &manifest(),
            &[],
            &[
                FoundPairing {
                    functions: vec!["d_a".into(), "d_b".into()],
                },
                FoundPairing {
                    functions: vec!["x".into(), "y".into()],
                },
            ],
        );
        assert_eq!(s.decoy_pairings_found, 1);
        assert_eq!(s.unexplained_pairings, 1);
        assert_eq!(s.pairings_found, 0);
    }

    #[test]
    fn wildcard_fields_match() {
        let mut m = manifest();
        m.bugs[0].strukt = String::new();
        m.bugs[0].field = String::new();
        let s = evaluate(
            &m,
            &[FoundBug {
                function: "reader".into(),
                kind: BugKind::Misplaced,
                strukt: "anything".into(),
                field: "whatever".into(),
            }],
            &[],
        );
        assert_eq!(s.bugs_found, 1);
    }
}
