//! Paper fixtures: the listings and patches from the OFence paper,
//! transcribed as analyzable C. Used by integration tests and examples to
//! check that the reproduction reaches the paper's conclusions on the
//! paper's own examples.

/// Listing 1 — the canonical init-flag pattern (correct).
pub const LISTING1: &str = r#"
struct my_struct {
	int init;
	int y;
};

void reader(struct my_struct *a)
{
	if (!a->init)
		return;
	smp_rmb();
	f(a->y);
}

void writer(struct my_struct *b)
{
	b->y = 1;
	smp_wmb();
	b->init = 1;
}
"#;

/// Listing 3 — the ARP subsystem's seqcount usage (correct; simplified to
/// the accesses that matter, per-cpu iteration elided).
pub const LISTING3: &str = r#"
static seqcount_t xt_recseq;

struct xt_counters {
	long bcnt;
	long pcnt;
};

void get_counters(struct xt_counters *counter, struct xt_counters *tmp)
{
	unsigned int v;
	long bcnt;
	long pcnt;
	do {
		v = read_seqcount_begin(&xt_recseq);
		bcnt = tmp->bcnt;
		pcnt = tmp->pcnt;
	} while (read_seqcount_retry(&xt_recseq, v));
	counter->bcnt = bcnt;
	counter->pcnt = pcnt;
}

void do_add_counters(struct xt_counters *t, struct xt_counters *paddc)
{
	unsigned int a;
	a = xt_write_recseq_begin(&xt_recseq);
	t->bcnt += paddc->bcnt;
	t->pcnt += paddc->pcnt;
	xt_write_recseq_end(&xt_recseq);
}
"#;

/// Patch 1 (buggy original) — the RPC misplaced memory access:
/// `rq_reply_bytes_recd` is read *after* the read barrier in
/// `call_decode`, so the CPU may prefetch `rq_private_buf.len` before the
/// flag check.
pub const PATCH1_BUGGY: &str = r#"
struct rpc_buf {
	int len;
};

struct rpc_rqst {
	struct rpc_buf rq_private_buf;
	struct rpc_buf rq_rcv_buf;
	int rq_reply_bytes_recd;
};

void xprt_complete_rqst(struct rpc_rqst *req, int copied)
{
	req->rq_private_buf.len = copied;
	smp_wmb();
	req->rq_reply_bytes_recd = copied;
}

void call_decode(struct rpc_rqst *req)
{
	smp_rmb();
	if (!req->rq_reply_bytes_recd)
		goto out;
	req->rq_rcv_buf.len = req->rq_private_buf.len;
out:
	return;
}
"#;

/// Patch 1 (fixed) — the flag check moved before the barrier.
pub const PATCH1_FIXED: &str = r#"
struct rpc_buf {
	int len;
};

struct rpc_rqst {
	struct rpc_buf rq_private_buf;
	struct rpc_buf rq_rcv_buf;
	int rq_reply_bytes_recd;
};

void xprt_complete_rqst(struct rpc_rqst *req, int copied)
{
	req->rq_private_buf.len = copied;
	smp_wmb();
	req->rq_reply_bytes_recd = copied;
}

void call_decode(struct rpc_rqst *req)
{
	if (!req->rq_reply_bytes_recd)
		goto out;
	smp_rmb();
	req->rq_rcv_buf.len = req->rq_private_buf.len;
out:
	return;
}
"#;

/// Patch 3 (buggy original) — the socket reuseport re-read:
/// `reuse->num_socks` is correctly read before the read barrier and then
/// racily re-read after it, possibly indexing uninitialized slots.
pub const PATCH3_BUGGY: &str = r#"
struct sock {
	int id;
};

struct sock_reuseport {
	int num_socks;
	int flags;
	struct sock *socks[16];
};

int reuseport_add_sock(struct sock_reuseport *reuse, struct sock *sk)
{
	reuse->socks[reuse->num_socks] = sk;
	reuse->flags = 1;
	smp_wmb();
	reuse->num_socks++;
	return 0;
}

struct sock *reuseport_select_sock(struct sock_reuseport *reuse)
{
	int socks = reuse->num_socks;
	int fl = reuse->flags;
	smp_rmb();
	if (socks && fl)
		return reuse->socks[reuse->num_socks - 1];
	return 0;
}
"#;

/// Patch 4 (buggy original) — the I/O qos unneeded barrier:
/// `wake_up_process` already has barrier semantics.
pub const PATCH4_BUGGY: &str = r#"
struct task_struct {
	int pid;
};

struct rq_wait_data {
	int got_token;
	struct task_struct *task;
};

static int rq_qos_wake_function(struct rq_wait_data *data)
{
	data->got_token = 1;
	smp_wmb();
	wake_up_process(data->task);
	return 1;
}
"#;

/// Patch 5 (before annotation) — the poll wake-up path missing
/// READ_ONCE/WRITE_ONCE on `pwq->triggered`.
pub const PATCH5_UNANNOTATED: &str = r#"
struct poll_wqueues {
	int triggered;
	int polling_task;
};

static int pollwake(struct poll_wqueues *pwq)
{
	pwq->polling_task = 1;
	smp_wmb();
	pwq->triggered = 1;
	return 0;
}

static int poll_schedule_timeout(struct poll_wqueues *pwq)
{
	int rc = -1;
	if (!pwq->triggered)
		rc = schedule_hrtimeout_range(pwq->polling_task);
	smp_rmb();
	pat_log(pwq->polling_task);
	return rc;
}
"#;

/// Listing 4 — the bnx2x false positive: `sp_state` written on both sides
/// of the write barrier (bit set before, bit cleared after). OFence is
/// documented to mis-handle this pattern.
pub const LISTING4_BNX2X: &str = r#"
struct bnx2x {
	unsigned long sp_state;
	int stats_pending;
};

void bnx2x_sp_event(struct bnx2x *bp)
{
	bp->stats_pending = 1;
	set_bit(1, &bp->sp_state);
	smp_wmb();
	clear_bit(2, &bp->sp_state);
}

void bnx2x_sp_reader(struct bnx2x *bp)
{
	if (bp->sp_state)
		return;
	smp_rmb();
	pat_log(bp->stats_pending);
}
"#;

/// Listing 2 — re-read of a racy flag used in a condition.
pub const LISTING2: &str = r#"
struct ev_type {
	int field;
	int data;
};

void ev_writer(struct ev_type *a)
{
	a->data = 2;
	smp_wmb();
	a->field = 1;
}

void ev_reader(struct ev_type *a)
{
	if (a->field)
		return;
	smp_rmb();
	subfunction(a->field);
	pat_log(a->data);
}
"#;

/// Missing-barrier case study: the perf ring buffer's reader consumed
/// `data_head` and then the event records without a read fence, while the
/// writer publishes records with `smp_wmb()` before advancing the head
/// (fixed upstream by inserting `smp_rmb()` in the reader). Transcribed to
/// the analyzable subset; the fence-less reader is the one OFence's pairing
/// alone cannot see — the writer simply stays unpaired.
pub const PERF_RB_MISSING_RMB: &str = r#"
struct perf_rb {
	int data_head;
	int events;
};

void perf_output_put(struct perf_rb *rb, int ev)
{
	rb->events = ev;
	smp_wmb();
	rb->data_head = rb->data_head + 1;
}

void perf_read_events(struct perf_rb *rb)
{
	if (!rb->data_head)
		return;
	pat_sink(rb->events);
}
"#;

/// The upstream fix: `smp_rmb()` between the head read and the data read.
pub const PERF_RB_FIXED: &str = r#"
struct perf_rb {
	int data_head;
	int events;
};

void perf_output_put(struct perf_rb *rb, int ev)
{
	rb->events = ev;
	smp_wmb();
	rb->data_head = rb->data_head + 1;
}

void perf_read_events(struct perf_rb *rb)
{
	if (!rb->data_head)
		return;
	smp_rmb();
	pat_sink(rb->events);
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fixtures_parse() {
        for (name, src) in [
            ("LISTING1", LISTING1),
            ("LISTING2", LISTING2),
            ("LISTING3", LISTING3),
            ("LISTING4", LISTING4_BNX2X),
            ("PATCH1_BUGGY", PATCH1_BUGGY),
            ("PATCH1_FIXED", PATCH1_FIXED),
            ("PATCH3_BUGGY", PATCH3_BUGGY),
            ("PATCH4_BUGGY", PATCH4_BUGGY),
            ("PATCH5_UNANNOTATED", PATCH5_UNANNOTATED),
            ("PERF_RB_MISSING_RMB", PERF_RB_MISSING_RMB),
            ("PERF_RB_FIXED", PERF_RB_FIXED),
        ] {
            let parsed = ckit::parse_string(name, src).unwrap();
            assert!(parsed.errors.is_empty(), "{name}: {:?}", parsed.errors);
        }
    }
}
