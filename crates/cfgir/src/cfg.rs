//! Statement-level control-flow graphs.
//!
//! One node per atomic statement (expression statement, declaration,
//! branch condition, return). OFence's distance metric counts statements,
//! so this is exactly the granularity the analysis needs — finer (basic
//! blocks of instructions) would change the numbers, coarser would lose
//! the barrier positions.

use ckit::ast::{self, Stmt, StmtKind};
use ckit::span::Span;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

pub type NodeId = usize;

/// Kind of a CFG node.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum NodeKind {
    Entry,
    Exit,
    /// An expression statement.
    Expr(ast::Expr),
    /// A local declaration (initializers count as writes).
    Decl(ast::DeclStmt),
    /// A branch condition (`if`/`while`/`do-while`/`for`/`switch`).
    Cond(ast::Expr),
    /// `return [expr]`.
    Return(Option<ast::Expr>),
    /// A `case`/`default` label (no computation).
    CaseLabel,
    /// Inline assembly (opaque; no tracked accesses).
    Asm,
    /// A `goto` (no computation; single successor is the label target).
    Goto(ckit::Name),
    /// A named label.
    Label(ckit::Name),
}

impl NodeKind {
    /// The expression evaluated at this node, if any.
    pub fn expr(&self) -> Option<&ast::Expr> {
        match self {
            NodeKind::Expr(e) | NodeKind::Cond(e) | NodeKind::Return(Some(e)) => Some(e),
            _ => None,
        }
    }

    /// Is this a "real" statement for distance counting? Labels and
    /// gotos are free: developers don't think of them as memory-access
    /// carrying statements.
    pub fn counts_for_distance(&self) -> bool {
        !matches!(
            self,
            NodeKind::Entry
                | NodeKind::Exit
                | NodeKind::CaseLabel
                | NodeKind::Goto(_)
                | NodeKind::Label(_)
        )
    }
}

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Node {
    pub kind: NodeKind,
    pub span: Span,
    pub succs: Vec<NodeId>,
    pub preds: Vec<NodeId>,
}

/// A function's CFG.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Cfg {
    /// Function name.
    pub name: String,
    pub nodes: Vec<Node>,
    pub entry: NodeId,
    pub exit: NodeId,
}

impl Cfg {
    /// Build the CFG of a function body.
    pub fn build(func: &ast::FunctionDef) -> Cfg {
        let mut b = Builder {
            nodes: vec![
                Node {
                    kind: NodeKind::Entry,
                    span: func.sig.span,
                    succs: vec![],
                    preds: vec![],
                },
                Node {
                    kind: NodeKind::Exit,
                    span: Span::new(func.span.hi.saturating_sub(1), func.span.hi),
                    succs: vec![],
                    preds: vec![],
                },
            ],
            labels: HashMap::new(),
            goto_fixups: Vec::new(),
            breaks: Vec::new(),
            continues: Vec::new(),
        };
        let frontier = b.lower_stmts(&func.body, vec![ENTRY]);
        b.connect_all(&frontier, EXIT);
        // Patch gotos whose label appeared later.
        for (node, label) in std::mem::take(&mut b.goto_fixups) {
            let target = b.labels.get(&label).copied().unwrap_or(EXIT);
            b.connect(node, target);
        }
        Cfg {
            name: func.sig.name.to_string(),
            nodes: b.nodes,
            entry: ENTRY,
            exit: EXIT,
        }
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Iterate node ids in creation (roughly program) order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> {
        0..self.nodes.len()
    }
}

const ENTRY: NodeId = 0;
const EXIT: NodeId = 1;

struct Builder {
    nodes: Vec<Node>,
    labels: HashMap<ckit::Name, NodeId>,
    goto_fixups: Vec<(NodeId, ckit::Name)>,
    breaks: Vec<Vec<NodeId>>,
    continues: Vec<Vec<NodeId>>,
}

impl Builder {
    fn add(&mut self, kind: NodeKind, span: Span, preds: &[NodeId]) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node {
            kind,
            span,
            succs: vec![],
            preds: vec![],
        });
        for &p in preds {
            self.connect(p, id);
        }
        id
    }

    fn connect(&mut self, from: NodeId, to: NodeId) {
        if !self.nodes[from].succs.contains(&to) {
            self.nodes[from].succs.push(to);
            self.nodes[to].preds.push(from);
        }
    }

    fn connect_all(&mut self, from: &[NodeId], to: NodeId) {
        for &f in from {
            self.connect(f, to);
        }
    }

    fn lower_stmts(&mut self, stmts: &[Stmt], mut frontier: Vec<NodeId>) -> Vec<NodeId> {
        for s in stmts {
            frontier = self.lower_stmt(s, frontier);
        }
        frontier
    }

    /// Lower one statement. `frontier` is the set of nodes whose control
    /// flow falls into this statement; the return value is the new
    /// fall-through frontier (empty after `return`/`goto`/…).
    fn lower_stmt(&mut self, stmt: &Stmt, frontier: Vec<NodeId>) -> Vec<NodeId> {
        match &stmt.kind {
            StmtKind::Expr(e) => {
                let n = self.add(NodeKind::Expr(e.clone()), stmt.span, &frontier);
                vec![n]
            }
            StmtKind::Decl(d) => {
                let n = self.add(NodeKind::Decl(d.clone()), stmt.span, &frontier);
                vec![n]
            }
            StmtKind::Block(stmts) => self.lower_stmts(stmts, frontier),
            StmtKind::Empty => frontier,
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.add(NodeKind::Cond(cond.clone()), cond.span, &frontier);
                let then_exit = self.lower_stmt(then_branch, vec![c]);
                let mut out = then_exit;
                match else_branch {
                    Some(e) => {
                        let else_exit = self.lower_stmt(e, vec![c]);
                        out.extend(else_exit);
                    }
                    None => out.push(c),
                }
                out
            }
            StmtKind::While { cond, body } => {
                let c = self.add(NodeKind::Cond(cond.clone()), cond.span, &frontier);
                self.breaks.push(vec![]);
                self.continues.push(vec![]);
                let body_exit = self.lower_stmt(body, vec![c]);
                self.connect_all(&body_exit, c);
                let continues = self.continues.pop().unwrap();
                self.connect_all(&continues, c);
                let mut out = self.breaks.pop().unwrap();
                out.push(c);
                out
            }
            StmtKind::DoWhile { body, cond } => {
                self.breaks.push(vec![]);
                self.continues.push(vec![]);
                // Body entry: remember where to loop back to. We need the
                // first node of the body; lower into a placeholder frontier
                // then find it via a pre-node.
                let head = self.add(NodeKind::Label("<do>".into()), stmt.span, &frontier);
                let body_exit = self.lower_stmt(body, vec![head]);
                let c = self.add(NodeKind::Cond(cond.clone()), cond.span, &body_exit);
                let continues = self.continues.pop().unwrap();
                self.connect_all(&continues, c);
                self.connect(c, head);
                let mut out = self.breaks.pop().unwrap();
                out.push(c);
                out
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                let mut cur = frontier;
                if let Some(i) = init {
                    cur = self.lower_stmt(i, cur);
                }
                let c = match cond {
                    Some(cond) => self.add(NodeKind::Cond(cond.clone()), cond.span, &cur),
                    None => self.add(NodeKind::Label("<for>".into()), stmt.span, &cur),
                };
                self.breaks.push(vec![]);
                self.continues.push(vec![]);
                let body_exit = self.lower_stmt(body, vec![c]);
                let continues = self.continues.pop().unwrap();
                let mut step_preds = body_exit;
                step_preds.extend(continues);
                let back = match step {
                    Some(s) => self.add(NodeKind::Expr(s.clone()), s.span, &step_preds),
                    None => {
                        // no step: loop straight back
                        self.connect_all(&step_preds, c);
                        c
                    }
                };
                if step.is_some() {
                    self.connect(back, c);
                }
                let mut out = self.breaks.pop().unwrap();
                if cond.is_some() {
                    out.push(c);
                }
                out
            }
            StmtKind::Switch { cond, body } => {
                let c = self.add(NodeKind::Cond(cond.clone()), cond.span, &frontier);
                self.breaks.push(vec![]);
                // Lower the body with an empty fall-in frontier; case
                // labels connect themselves to the switch head.
                let body_exit = self.lower_switch_body(body, c);
                let mut out = self.breaks.pop().unwrap();
                out.extend(body_exit);
                // If no `default:` label exists, control may skip the body.
                if !switch_has_default(body) {
                    out.push(c);
                }
                out
            }
            StmtKind::Case { .. } => {
                // A case label outside a switch body lowering (shouldn't
                // happen); treat as its inner statement.
                if let StmtKind::Case { stmt: inner, .. } = &stmt.kind {
                    self.lower_stmt(inner, frontier)
                } else {
                    unreachable!()
                }
            }
            StmtKind::Goto(label) => {
                let n = self.add(NodeKind::Goto(label.clone()), stmt.span, &frontier);
                match self.labels.get(label) {
                    Some(&target) => self.connect(n, target),
                    None => self.goto_fixups.push((n, label.clone())),
                }
                vec![]
            }
            StmtKind::Label { name, stmt: inner } => {
                let n = self.add(NodeKind::Label(name.clone()), stmt.span, &frontier);
                self.labels.insert(name.clone(), n);
                self.lower_stmt(inner, vec![n])
            }
            StmtKind::Asm { .. } => {
                // Opaque statement: counts for distance, carries no
                // analyzable expression.
                let n = self.add(NodeKind::Asm, stmt.span, &frontier);
                vec![n]
            }
            StmtKind::Return(e) => {
                let n = self.add(NodeKind::Return(e.clone()), stmt.span, &frontier);
                self.connect(n, EXIT);
                vec![]
            }
            StmtKind::Break => {
                if let Some(breaks) = self.breaks.last_mut() {
                    breaks.extend(frontier);
                } else {
                    self.connect_all(&frontier, EXIT);
                }
                vec![]
            }
            StmtKind::Continue => {
                if let Some(conts) = self.continues.last_mut() {
                    conts.extend(frontier);
                } else {
                    self.connect_all(&frontier, EXIT);
                }
                vec![]
            }
        }
    }

    /// Lower a switch body: each `case`/`default` entry point becomes a
    /// successor of the switch condition; statements between labels chain
    /// as fall-through.
    fn lower_switch_body(&mut self, body: &Stmt, switch_head: NodeId) -> Vec<NodeId> {
        let stmts: Vec<&Stmt> = match &body.kind {
            StmtKind::Block(stmts) => stmts.iter().collect(),
            _ => vec![body],
        };
        let mut frontier: Vec<NodeId> = vec![];
        for s in stmts {
            frontier = self.lower_switch_stmt(s, frontier, switch_head);
        }
        frontier
    }

    fn lower_switch_stmt(
        &mut self,
        stmt: &Stmt,
        frontier: Vec<NodeId>,
        switch_head: NodeId,
    ) -> Vec<NodeId> {
        if let StmtKind::Case { stmt: inner, .. } = &stmt.kind {
            let label = self.add(NodeKind::CaseLabel, stmt.span, &frontier);
            self.connect(switch_head, label);
            // Nested chains of `case 1: case 2: stmt`.
            return self.lower_switch_stmt(inner, vec![label], switch_head);
        }
        self.lower_stmt(stmt, frontier)
    }
}

fn switch_has_default(body: &Stmt) -> bool {
    fn check(stmt: &Stmt) -> bool {
        match &stmt.kind {
            StmtKind::Case { value: None, .. } => true,
            StmtKind::Case {
                stmt: inner,
                value: Some(_),
            } => check(inner),
            StmtKind::Block(stmts) => stmts.iter().any(check),
            _ => false,
        }
    }
    check(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckit::parse_string;

    fn cfg_of(src: &str) -> Cfg {
        let out = parse_string("t.c", src).unwrap();
        assert!(out.errors.is_empty(), "{:?}", out.errors);
        let f = out.unit.functions().next().expect("function");
        Cfg::build(f)
    }

    fn reachable_count(cfg: &Cfg) -> usize {
        let mut seen = vec![false; cfg.nodes.len()];
        let mut stack = vec![cfg.entry];
        seen[cfg.entry] = true;
        let mut count = 0;
        while let Some(n) = stack.pop() {
            count += 1;
            for &s in &cfg.nodes[n].succs {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        count
    }

    #[test]
    fn straight_line() {
        let cfg = cfg_of("void f(int a) { a = 1; a = 2; a = 3; }");
        // entry, 3 stmts, exit
        assert_eq!(cfg.nodes.len(), 5);
        assert_eq!(reachable_count(&cfg), 5);
        // Linear chain.
        let mut cur = cfg.entry;
        for _ in 0..4 {
            assert_eq!(cfg.node(cur).succs.len(), 1);
            cur = cfg.node(cur).succs[0];
        }
        assert_eq!(cur, cfg.exit);
    }

    #[test]
    fn if_without_else_has_two_paths() {
        let cfg = cfg_of("void f(int a) { if (a) a = 1; a = 2; }");
        let cond = cfg
            .ids()
            .find(|&i| matches!(cfg.node(i).kind, NodeKind::Cond(_)))
            .unwrap();
        assert_eq!(cfg.node(cond).succs.len(), 2);
    }

    #[test]
    fn if_else_joins() {
        let cfg = cfg_of("void f(int a) { if (a) a = 1; else a = 2; a = 3; }");
        // The join statement (a = 3) must have two predecessors.
        let join = cfg
            .ids()
            .filter(|&i| matches!(cfg.node(i).kind, NodeKind::Expr(_)))
            .last()
            .unwrap();
        assert_eq!(cfg.node(join).preds.len(), 2);
    }

    #[test]
    fn early_return_cuts_flow() {
        let cfg = cfg_of("void f(int a) { if (!a) return; a = 1; }");
        let ret = cfg
            .ids()
            .find(|&i| matches!(cfg.node(i).kind, NodeKind::Return(_)))
            .unwrap();
        assert_eq!(cfg.node(ret).succs, vec![cfg.exit]);
        // a = 1 has only the condition as predecessor.
        let assign = cfg
            .ids()
            .filter(|&i| matches!(cfg.node(i).kind, NodeKind::Expr(_)))
            .last()
            .unwrap();
        assert_eq!(cfg.node(assign).preds.len(), 1);
    }

    #[test]
    fn while_loop_back_edge() {
        let cfg = cfg_of("void f(int n) { while (n) n--; }");
        let cond = cfg
            .ids()
            .find(|&i| matches!(cfg.node(i).kind, NodeKind::Cond(_)))
            .unwrap();
        let body = cfg
            .ids()
            .find(|&i| matches!(cfg.node(i).kind, NodeKind::Expr(_)))
            .unwrap();
        assert!(cfg.node(cond).succs.contains(&body));
        assert!(cfg.node(body).succs.contains(&cond));
        assert!(cfg.node(cond).succs.contains(&cfg.exit));
    }

    #[test]
    fn do_while_runs_body_first() {
        let cfg = cfg_of("void f(int n) { do { n--; } while (n); }");
        // Entry's successor chain must hit the body before the condition.
        let first_real = cfg.node(cfg.entry).succs[0];
        // `<do>` head label, then body.
        let mut cur = first_real;
        while !matches!(cfg.node(cur).kind, NodeKind::Expr(_) | NodeKind::Cond(_)) {
            cur = cfg.node(cur).succs[0];
        }
        assert!(matches!(cfg.node(cur).kind, NodeKind::Expr(_)));
    }

    #[test]
    fn for_loop_structure() {
        let cfg = cfg_of("void f(int n) { for (int i = 0; i < n; i++) n--; }");
        let decl = cfg
            .ids()
            .find(|&i| matches!(cfg.node(i).kind, NodeKind::Decl(_)))
            .unwrap();
        let cond = cfg
            .ids()
            .find(|&i| matches!(cfg.node(i).kind, NodeKind::Cond(_)))
            .unwrap();
        assert!(cfg.node(decl).succs.contains(&cond));
        // Condition exits the loop and enters the body.
        assert_eq!(cfg.node(cond).succs.len(), 2);
    }

    #[test]
    fn break_exits_loop() {
        let cfg = cfg_of("void f(int n) { while (1) { if (n) break; n++; } n = 7; }");
        // The final statement must be reachable.
        let last = cfg
            .ids()
            .filter(|&i| matches!(cfg.node(i).kind, NodeKind::Expr(_)))
            .last()
            .unwrap();
        assert!(!cfg.node(last).preds.is_empty());
    }

    #[test]
    fn continue_targets_condition() {
        let cfg = cfg_of("void f(int n) { while (n) { if (n == 2) continue; n--; } }");
        let cond = cfg
            .ids()
            .find(|&i| matches!(cfg.node(i).kind, NodeKind::Cond(_)))
            .unwrap();
        // while-cond has >= 2 preds: entry-side and the continue/back edges.
        assert!(cfg.node(cond).preds.len() >= 2);
    }

    #[test]
    fn goto_forward() {
        let cfg = cfg_of("void f(int a) { if (a) goto out; a = 1; out: a = 2; }");
        let goto = cfg
            .ids()
            .find(|&i| matches!(cfg.node(i).kind, NodeKind::Goto(_)))
            .unwrap();
        let label = cfg
            .ids()
            .find(|&i| matches!(&cfg.node(i).kind, NodeKind::Label(l) if l == "out"))
            .unwrap();
        assert!(cfg.node(goto).succs.contains(&label));
    }

    #[test]
    fn goto_backward() {
        let cfg = cfg_of("void f(int a) { again: a--; if (a) goto again; }");
        let goto = cfg
            .ids()
            .find(|&i| matches!(cfg.node(i).kind, NodeKind::Goto(_)))
            .unwrap();
        let label = cfg
            .ids()
            .find(|&i| matches!(&cfg.node(i).kind, NodeKind::Label(l) if l == "again"))
            .unwrap();
        assert!(cfg.node(goto).succs.contains(&label));
    }

    #[test]
    fn switch_cases_branch_from_head() {
        let cfg = cfg_of(
            "void f(int a) { switch (a) { case 1: a = 1; break; case 2: a = 2; break; default: a = 9; } }",
        );
        let cond = cfg
            .ids()
            .find(|&i| matches!(cfg.node(i).kind, NodeKind::Cond(_)))
            .unwrap();
        // three case labels
        assert_eq!(cfg.node(cond).succs.len(), 3);
    }

    #[test]
    fn switch_without_default_can_skip() {
        let cfg = cfg_of("void f(int a) { switch (a) { case 1: a = 1; } a = 5; }");
        let cond = cfg
            .ids()
            .find(|&i| matches!(cfg.node(i).kind, NodeKind::Cond(_)))
            .unwrap();
        let last = cfg
            .ids()
            .filter(|&i| matches!(cfg.node(i).kind, NodeKind::Expr(_)))
            .last()
            .unwrap();
        // Path from switch head directly to the statement after the switch.
        assert!(cfg.node(last).preds.contains(&cond) || cfg.node(last).preds.len() >= 2);
    }

    #[test]
    fn switch_fallthrough_chains() {
        let cfg = cfg_of("void f(int a) { switch (a) { case 1: a = 1; case 2: a = 2; } }");
        let first = cfg
            .ids()
            .find(|&i| matches!(cfg.node(i).kind, NodeKind::Expr(_)))
            .unwrap();
        // a = 1 falls through into the `case 2:` label node.
        let succ = cfg.node(first).succs[0];
        assert!(matches!(cfg.node(succ).kind, NodeKind::CaseLabel));
    }

    #[test]
    fn infinite_loop_body_reachable() {
        let cfg = cfg_of("void f(int n) { for (;;) { n++; } }");
        let body = cfg
            .ids()
            .find(|&i| matches!(cfg.node(i).kind, NodeKind::Expr(_)))
            .unwrap();
        assert!(!cfg.node(body).preds.is_empty());
    }

    #[test]
    fn all_nonexit_nodes_reachable() {
        let cfg = cfg_of(
            "int f(int a) { int r = 0; if (a > 0) { r = 1; } else if (a < 0) { r = -1; } for (int i = 0; i < a; i++) r += i; return r; }",
        );
        assert_eq!(reachable_count(&cfg), cfg.nodes.len());
    }
}
