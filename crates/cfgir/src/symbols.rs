//! Per-file symbol tables: struct layouts, typedefs, functions, globals.

use ckit::ast::{self, Item, TranslationUnit, Type};
use std::collections::HashMap;

/// Symbols of one translation unit.
#[derive(Clone, Debug, Default)]
pub struct FileSymbols {
    /// struct/union name → field name → type.
    pub structs: HashMap<String, HashMap<String, Type>>,
    /// typedef name → underlying type.
    pub typedefs: HashMap<String, Type>,
    /// function name → signature (params + return type).
    pub functions: HashMap<String, FnSig>,
    /// global variable name → type.
    pub globals: HashMap<String, Type>,
    /// enum constant names (they type as `int`).
    pub enum_consts: HashMap<String, String>,
}

/// A function's type signature, as the type resolver needs it.
#[derive(Clone, Debug, PartialEq)]
pub struct FnSig {
    pub ret: Type,
    pub params: Vec<(String, Type)>,
    pub is_static: bool,
    pub has_body: bool,
}

impl FileSymbols {
    /// Build the symbol table for a unit.
    pub fn build(unit: &TranslationUnit) -> FileSymbols {
        let mut sym = FileSymbols::default();
        for item in &unit.items {
            match item {
                Item::Struct(s) => {
                    let fields = s
                        .fields
                        .iter()
                        .map(|f| (f.name.to_string(), f.ty.clone()))
                        .collect();
                    // Anonymous structs get a synthetic name so their fields
                    // remain reachable (rare around barriers).
                    let name = if s.name.is_empty() {
                        format!("<anon@{}>", s.span.lo)
                    } else {
                        s.name.to_string()
                    };
                    sym.structs.insert(name, fields);
                }
                Item::Enum(e) => {
                    for (v, _) in &e.variants {
                        sym.enum_consts.insert(v.to_string(), e.name.to_string());
                    }
                }
                Item::Typedef(t) => {
                    sym.typedefs.insert(t.name.to_string(), t.ty.clone());
                }
                Item::Function(f) => {
                    sym.functions.insert(
                        f.sig.name.to_string(),
                        FnSig {
                            ret: f.sig.ret.clone(),
                            params: f
                                .sig
                                .params
                                .iter()
                                .map(|p| (p.name.to_string(), p.ty.clone()))
                                .collect(),
                            is_static: f.sig.is_static,
                            has_body: true,
                        },
                    );
                }
                Item::Prototype(sig) => {
                    // A body seen earlier wins over a later prototype.
                    sym.functions
                        .entry(sig.name.to_string())
                        .or_insert_with(|| FnSig {
                            ret: sig.ret.clone(),
                            params: sig
                                .params
                                .iter()
                                .map(|p| (p.name.to_string(), p.ty.clone()))
                                .collect(),
                            is_static: sig.is_static,
                            has_body: false,
                        });
                }
                Item::Global(g) => {
                    for d in &g.decls {
                        sym.globals.insert(d.name.to_string(), d.ty.clone());
                    }
                }
            }
        }
        sym
    }

    /// Resolve typedef chains down to a concrete type. Cycle-safe.
    pub fn resolve(&self, ty: &Type) -> Type {
        let mut current = ty.clone();
        let mut fuel = 16;
        loop {
            match current {
                Type::Named(ref name) => {
                    if fuel == 0 {
                        return current;
                    }
                    fuel -= 1;
                    match self.typedefs.get(name.as_str()) {
                        Some(inner) => current = inner.clone(),
                        None => return current,
                    }
                }
                Type::Ptr(inner) => return self.resolve(&inner).ptr(),
                Type::Array(inner, len) => return Type::Array(Box::new(self.resolve(&inner)), len),
                other => return other,
            }
        }
    }

    /// Type of `strukt.field`, resolving typedefs on the field type.
    pub fn field_type(&self, strukt: &str, field: &str) -> Option<Type> {
        self.structs.get(strukt)?.get(field).cloned()
    }

    /// Struct that an expression of type `ty` points at / is, after
    /// resolving typedefs and stripping pointers/arrays.
    pub fn pointee_struct(&self, ty: &Type) -> Option<String> {
        let resolved = self.resolve(ty);
        match resolved.base() {
            Type::Struct { name, .. } => Some(name.to_string()),
            _ => None,
        }
    }
}

/// Collect every local declaration in a function body into a flat map.
///
/// OFence's walks are not lexically scoped, so a flat last-declaration-wins
/// map is the right fidelity: kernel functions essentially never shadow a
/// local with a *different struct type*, and the analysis only consumes
/// struct identities.
pub fn collect_locals(body: &[ast::Stmt]) -> HashMap<String, Type> {
    let mut locals = HashMap::new();
    fn go(stmts: &[ast::Stmt], locals: &mut HashMap<String, Type>) {
        for s in stmts {
            visit(s, locals);
        }
    }
    fn visit(s: &ast::Stmt, locals: &mut HashMap<String, Type>) {
        use ast::StmtKind::*;
        match &s.kind {
            Decl(d) => {
                for decl in &d.decls {
                    if !decl.name.is_empty() {
                        locals.insert(decl.name.to_string(), decl.ty.clone());
                    }
                }
            }
            Block(stmts) => go(stmts, locals),
            If {
                then_branch,
                else_branch,
                ..
            } => {
                visit(then_branch, locals);
                if let Some(e) = else_branch {
                    visit(e, locals);
                }
            }
            While { body, .. } | DoWhile { body, .. } | Switch { body, .. } => visit(body, locals),
            For { init, body, .. } => {
                if let Some(i) = init {
                    visit(i, locals);
                }
                visit(body, locals);
            }
            Case { stmt, .. } | Label { stmt, .. } => visit(stmt, locals),
            _ => {}
        }
    }
    go(body, &mut locals);
    locals
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckit::parse_string;

    fn symbols(src: &str) -> FileSymbols {
        let out = parse_string("t.c", src).unwrap();
        assert!(out.errors.is_empty(), "{:?}", out.errors);
        FileSymbols::build(&out.unit)
    }

    #[test]
    fn struct_fields_indexed() {
        let sym = symbols("struct req { int len; struct buf *b; };");
        assert_eq!(sym.field_type("req", "len"), Some(Type::int()));
        assert_eq!(sym.field_type("req", "b"), Some(Type::strukt("buf").ptr()));
        assert_eq!(sym.field_type("req", "missing"), None);
    }

    #[test]
    fn typedef_chain_resolution() {
        let sym =
            symbols("struct raw { int x; };\ntypedef struct raw raw_t;\ntypedef raw_t alias_t;");
        let resolved = sym.resolve(&Type::Named("alias_t".into()));
        assert_eq!(resolved, Type::strukt("raw"));
    }

    #[test]
    fn typedef_pointer_resolution() {
        let sym = symbols("struct raw { int x; };\ntypedef struct raw *raw_p;");
        assert_eq!(
            sym.pointee_struct(&Type::Named("raw_p".into())),
            Some("raw".to_string())
        );
    }

    #[test]
    fn functions_indexed() {
        let sym =
            symbols("static struct req *get_req(int id);\nint handle(struct req *r) { return 0; }");
        let get = sym.functions.get("get_req").unwrap();
        assert!(!get.has_body);
        assert_eq!(get.ret, Type::strukt("req").ptr());
        let handle = sym.functions.get("handle").unwrap();
        assert!(handle.has_body);
        assert_eq!(handle.params[0].0, "r");
    }

    #[test]
    fn globals_and_enums() {
        let sym = symbols("enum mode { OFF, ON };\nstatic struct req *pending;");
        assert_eq!(sym.enum_consts.get("ON"), Some(&"mode".to_string()));
        assert_eq!(sym.globals.get("pending"), Some(&Type::strukt("req").ptr()));
    }

    #[test]
    fn locals_collected_from_nested_blocks() {
        let out = parse_string(
            "t.c",
            "void f(void) { int a; if (a) { struct s *p; } for (int i = 0; i < 2; i++) { long q; } }",
        )
        .unwrap();
        let f = out.unit.functions().next().unwrap();
        let locals = collect_locals(&f.body);
        assert_eq!(locals.get("a"), Some(&Type::int()));
        assert_eq!(locals.get("p"), Some(&Type::strukt("s").ptr()));
        assert!(locals.contains_key("i"));
        assert!(locals.contains_key("q"));
    }
}
