//! Corpus-wide call graph and its SCC condensation.
//!
//! The inter-procedural summary pass composes per-function summaries
//! along call edges. Recursion (direct or mutual) would make naive
//! composition diverge, so composition runs over the *condensation* of
//! the call graph: strongly connected components collapsed to single
//! nodes, yielding a DAG that can be processed callees-first.
//!
//! Nodes are plain `usize` handles registered by the caller (typically
//! `(file, function)` pairs flattened to an index), so this module stays
//! independent of how functions are named or resolved.

/// A directed call graph over function handles `0..len`.
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    /// `edges[caller]` lists callee nodes (duplicates allowed; the
    /// condensation dedups).
    edges: Vec<Vec<usize>>,
}

impl CallGraph {
    /// A graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        CallGraph {
            edges: vec![Vec::new(); n],
        }
    }

    pub fn len(&self) -> usize {
        self.edges.len()
    }

    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Record a call edge. Self-edges are kept: they mark a trivially
    /// cyclic SCC.
    pub fn add_call(&mut self, caller: usize, callee: usize) {
        self.edges[caller].push(callee);
    }

    pub fn callees(&self, caller: usize) -> &[usize] {
        &self.edges[caller]
    }

    /// Tarjan's strongly-connected-components algorithm (iterative — call
    /// chains in real corpora can be deep enough to overflow the stack).
    /// Returns the condensation; SCC ids come out in reverse topological
    /// order (an SCC's callees always have *smaller* ids), which is
    /// exactly the order bottom-up summary composition wants.
    pub fn condense(&self) -> Condensation {
        let n = self.edges.len();
        const UNVISITED: usize = usize::MAX;
        let mut index = vec![UNVISITED; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut scc_of = vec![UNVISITED; n];
        let mut sccs: Vec<Vec<usize>> = Vec::new();

        // Explicit DFS frames: (node, next child position).
        let mut frames: Vec<(usize, usize)> = Vec::new();
        for root in 0..n {
            if index[root] != UNVISITED {
                continue;
            }
            frames.push((root, 0));
            index[root] = next_index;
            lowlink[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;

            while let Some(frame) = frames.last_mut() {
                let v = frame.0;
                if frame.1 < self.edges[v].len() {
                    let w = self.edges[v][frame.1];
                    frame.1 += 1;
                    if index[w] == UNVISITED {
                        index[w] = next_index;
                        lowlink[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                    if lowlink[v] == index[v] {
                        let mut members = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            scc_of[w] = sccs.len();
                            members.push(w);
                            if w == v {
                                break;
                            }
                        }
                        members.sort_unstable();
                        sccs.push(members);
                    }
                }
            }
        }

        // Condensed DAG edges, deduped. Self-loops inside an SCC are
        // recorded as `cyclic` instead of edges.
        let mut cyclic = vec![false; sccs.len()];
        for (i, members) in sccs.iter().enumerate() {
            if members.len() > 1 {
                cyclic[i] = true;
            }
        }
        let mut dag: Vec<Vec<usize>> = vec![Vec::new(); sccs.len()];
        for v in 0..n {
            for &w in &self.edges[v] {
                let (sv, sw) = (scc_of[v], scc_of[w]);
                if sv == sw {
                    cyclic[sv] = true; // covers single-node self-calls
                } else if !dag[sv].contains(&sw) {
                    dag[sv].push(sw);
                }
            }
        }
        Condensation {
            scc_of,
            sccs,
            edges: dag,
            cyclic,
        }
    }
}

/// The call graph with SCCs collapsed: a DAG over component ids.
#[derive(Clone, Debug)]
pub struct Condensation {
    /// Node handle -> SCC id.
    pub scc_of: Vec<usize>,
    /// SCC id -> member node handles (sorted).
    pub sccs: Vec<Vec<usize>>,
    /// DAG edges between SCC ids (deduped, no self-loops).
    pub edges: Vec<Vec<usize>>,
    /// True when the component contains a cycle (≥2 members, or a
    /// self-call) — composition must treat its members as one unit.
    pub cyclic: Vec<bool>,
}

impl Condensation {
    /// SCC ids callees-first: every edge `a -> b` has `b` before `a`.
    /// Tarjan already emits components in this order, so this is just
    /// `0..sccs.len()`, kept as a method to document the invariant.
    pub fn topo_order(&self) -> impl Iterator<Item = usize> {
        0..self.sccs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_chain_condenses_to_singletons() {
        // 0 -> 1 -> 2
        let mut g = CallGraph::with_nodes(3);
        g.add_call(0, 1);
        g.add_call(1, 2);
        let c = g.condense();
        assert_eq!(c.sccs.len(), 3);
        assert!(c.cyclic.iter().all(|&b| !b));
        // Callees-first: 2's SCC precedes 1's precedes 0's.
        assert!(c.scc_of[2] < c.scc_of[1]);
        assert!(c.scc_of[1] < c.scc_of[0]);
        for scc in c.topo_order() {
            for &succ in &c.edges[scc] {
                assert!(succ < scc, "edge {scc} -> {succ} breaks topo order");
            }
        }
    }

    #[test]
    fn self_call_is_a_cyclic_singleton() {
        let mut g = CallGraph::with_nodes(2);
        g.add_call(0, 0);
        g.add_call(0, 1);
        let c = g.condense();
        assert_eq!(c.sccs.len(), 2);
        assert!(c.cyclic[c.scc_of[0]]);
        assert!(!c.cyclic[c.scc_of[1]]);
    }

    #[test]
    fn mutual_recursion_collapses() {
        // 0 <-> 1, both call 2.
        let mut g = CallGraph::with_nodes(3);
        g.add_call(0, 1);
        g.add_call(1, 0);
        g.add_call(0, 2);
        g.add_call(1, 2);
        let c = g.condense();
        assert_eq!(c.sccs.len(), 2);
        assert_eq!(c.scc_of[0], c.scc_of[1]);
        assert!(c.cyclic[c.scc_of[0]]);
        let cycle = c.scc_of[0];
        assert_eq!(c.sccs[cycle], vec![0, 1]);
        // One deduped DAG edge cycle -> {2}.
        assert_eq!(c.edges[cycle], vec![c.scc_of[2]]);
    }

    #[test]
    fn diamond_keeps_all_edges() {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let mut g = CallGraph::with_nodes(4);
        g.add_call(0, 1);
        g.add_call(0, 2);
        g.add_call(1, 3);
        g.add_call(2, 3);
        let c = g.condense();
        assert_eq!(c.sccs.len(), 4);
        assert_eq!(c.edges[c.scc_of[0]].len(), 2);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        let n = 50_000;
        let mut g = CallGraph::with_nodes(n);
        for i in 0..n - 1 {
            g.add_call(i, i + 1);
        }
        let c = g.condense();
        assert_eq!(c.sccs.len(), n);
    }
}
