//! Bounded breadth-first walks over a CFG.
//!
//! OFence explores a bounded number of *statements* before/after a barrier
//! (§4.2): 5 around write barriers, 50 around read barriers, stopping at
//! other barriers and at atomics with barrier semantics. This module
//! provides the distance-annotated BFS those explorations are built on.

use crate::cfg::{Cfg, NodeId};
use std::collections::VecDeque;

/// Walk direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// Follow successor edges (statements after the start).
    Fwd,
    /// Follow predecessor edges (statements before the start).
    Bwd,
}

/// Per-node verdict from the visit callback.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// Keep going through this node.
    Continue,
    /// Visit this node but do not walk past it (e.g. another barrier).
    Stop,
    /// Skip this node entirely and do not walk past it.
    Prune,
}

/// Breadth-first walk from `start` (exclusive) up to `max_dist` statements
/// away. The callback receives each node with its statement distance
/// (1-based: the adjacent statement has distance 1). Nodes that do not
/// count for distance (labels, case markers) are traversed for free.
pub fn walk(
    cfg: &Cfg,
    start: NodeId,
    dir: Dir,
    max_dist: u32,
    mut f: impl FnMut(NodeId, u32) -> Step,
) {
    let mut seen = vec![false; cfg.nodes.len()];
    seen[start] = true;
    let mut queue: VecDeque<(NodeId, u32)> = VecDeque::new();
    enqueue_neighbors(cfg, start, dir, 0, &mut queue, &mut seen);
    while let Some((node, dist_so_far)) = queue.pop_front() {
        let counts = cfg.node(node).kind.counts_for_distance();
        let dist = if counts { dist_so_far + 1 } else { dist_so_far };
        if dist > max_dist {
            continue;
        }
        let verdict = if counts {
            f(node, dist)
        } else {
            Step::Continue
        };
        match verdict {
            Step::Continue => enqueue_neighbors(cfg, node, dir, dist, &mut queue, &mut seen),
            Step::Stop | Step::Prune => {}
        }
    }
}

fn enqueue_neighbors(
    cfg: &Cfg,
    node: NodeId,
    dir: Dir,
    dist: u32,
    queue: &mut VecDeque<(NodeId, u32)>,
    seen: &mut [bool],
) {
    let neighbors = match dir {
        Dir::Fwd => &cfg.node(node).succs,
        Dir::Bwd => &cfg.node(node).preds,
    };
    for &n in neighbors {
        if !seen[n] {
            seen[n] = true;
            queue.push_back((n, dist));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::NodeKind;
    use ckit::parse_string;

    fn cfg_of(src: &str) -> Cfg {
        let out = parse_string("t.c", src).unwrap();
        assert!(out.errors.is_empty());
        let cfg = Cfg::build(out.unit.functions().next().unwrap());
        cfg
    }

    /// Node id of the statement whose printed expression contains `text`.
    fn node_containing(cfg: &Cfg, src: &str, text: &str) -> NodeId {
        cfg.ids()
            .find(|&i| {
                let n = cfg.node(i);
                !matches!(n.kind, NodeKind::Entry | NodeKind::Exit)
                    && n.span.slice(src).contains(text)
            })
            .unwrap_or_else(|| panic!("no node containing {text:?}"))
    }

    #[test]
    fn forward_distances_linear() {
        let src = "void f(int a) { a = 1; a = 2; a = 3; a = 4; }";
        let cfg = cfg_of(src);
        let start = node_containing(&cfg, src, "a = 1");
        let mut dists = Vec::new();
        walk(&cfg, start, Dir::Fwd, 10, |n, d| {
            if matches!(cfg.node(n).kind, NodeKind::Expr(_)) {
                dists.push((cfg.node(n).span.slice(src).to_string(), d));
            }
            Step::Continue
        });
        assert_eq!(
            dists,
            vec![
                ("a = 2;".to_string(), 1),
                ("a = 3;".to_string(), 2),
                ("a = 4;".to_string(), 3),
            ]
        );
    }

    #[test]
    fn backward_distances_linear() {
        let src = "void f(int a) { a = 1; a = 2; a = 3; }";
        let cfg = cfg_of(src);
        let start = node_containing(&cfg, src, "a = 3");
        let mut dists = Vec::new();
        walk(&cfg, start, Dir::Bwd, 10, |n, d| {
            if matches!(cfg.node(n).kind, NodeKind::Expr(_)) {
                dists.push((cfg.node(n).span.slice(src).to_string(), d));
            }
            Step::Continue
        });
        assert_eq!(
            dists,
            vec![("a = 2;".to_string(), 1), ("a = 1;".to_string(), 2)]
        );
    }

    #[test]
    fn max_dist_bounds_walk() {
        let src = "void f(int a) { a = 1; a = 2; a = 3; a = 4; a = 5; }";
        let cfg = cfg_of(src);
        let start = node_containing(&cfg, src, "a = 1");
        let mut count = 0;
        walk(&cfg, start, Dir::Fwd, 2, |_, _| {
            count += 1;
            Step::Continue
        });
        assert_eq!(count, 2);
    }

    #[test]
    fn stop_blocks_expansion() {
        let src = "void f(int a) { a = 1; a = 2; a = 3; }";
        let cfg = cfg_of(src);
        let start = node_containing(&cfg, src, "a = 1");
        let mut seen = Vec::new();
        walk(&cfg, start, Dir::Fwd, 10, |n, _| {
            seen.push(cfg.node(n).span.slice(src).to_string());
            if cfg.node(n).span.slice(src).contains("a = 2") {
                Step::Stop
            } else {
                Step::Continue
            }
        });
        assert_eq!(seen, vec!["a = 2;".to_string()]);
    }

    #[test]
    fn branches_explored_both_sides() {
        let src = "void f(int a) { a = 0; if (a) { a = 1; } else { a = 2; } }";
        let cfg = cfg_of(src);
        let start = node_containing(&cfg, src, "a = 0");
        let mut stmts = Vec::new();
        walk(&cfg, start, Dir::Fwd, 10, |n, d| {
            if matches!(cfg.node(n).kind, NodeKind::Expr(_)) {
                stmts.push((cfg.node(n).span.slice(src).to_string(), d));
            }
            Step::Continue
        });
        // Both branch arms are distance 2 (condition is distance 1).
        assert!(stmts.contains(&("a = 1;".to_string(), 2)));
        assert!(stmts.contains(&("a = 2;".to_string(), 2)));
    }

    #[test]
    fn loop_does_not_revisit() {
        let src = "void f(int n) { n = 0; while (n < 3) { n++; } n = 9; }";
        let cfg = cfg_of(src);
        let start = node_containing(&cfg, src, "n = 0");
        let mut count = 0;
        walk(&cfg, start, Dir::Fwd, 100, |_, _| {
            count += 1;
            Step::Continue
        });
        // cond, n++, n = 9 — each exactly once.
        assert_eq!(count, 3);
    }

    #[test]
    fn labels_are_free() {
        let src = "void f(int a) { a = 1; goto out; out: a = 2; }";
        let cfg = cfg_of(src);
        let start = node_containing(&cfg, src, "a = 1");
        let mut dists = Vec::new();
        walk(&cfg, start, Dir::Fwd, 10, |n, d| {
            if matches!(cfg.node(n).kind, NodeKind::Expr(_)) {
                dists.push(d);
            }
            Step::Continue
        });
        // goto + label don't count: a = 2 is at distance 1.
        assert_eq!(dists, vec![1]);
    }
}
