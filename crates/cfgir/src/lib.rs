//! # cfgir — the Smatch-like analysis substrate
//!
//! Per-function statement-level control-flow graphs, symbol tables, and
//! expression type resolution over [`ckit`] ASTs. This is the layer the
//! OFence analysis (crate `ofence`) is built on, mirroring the role Smatch
//! plays for the original tool: provide a CFG per function plus enough
//! type information to identify `(struct, field)` tuples.
//!
//! ```
//! let parsed = ckit::parse_string("t.c", "struct s { int x; };\nvoid f(struct s *p) { p->x = 1; }").unwrap();
//! let lowered = cfgir::LoweredFile::lower(&parsed);
//! assert_eq!(lowered.cfgs.len(), 1);
//! ```

pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod symbols;
pub mod types;
pub mod walk;

pub use callgraph::{CallGraph, Condensation};
pub use cfg::{Cfg, Node, NodeId, NodeKind};
pub use dataflow::{
    def_use_chains, dominators, post_dominators, reaching_definitions, Def, DomTree, ReachingDefs,
    Use,
};
pub use symbols::{FileSymbols, FnSig};
pub use types::TypeEnv;
pub use walk::{walk, Dir, Step};

use ckit::ParsedFile;

/// A fully lowered translation unit: symbol table plus one CFG per
/// function with a body.
pub struct LoweredFile<'a> {
    pub parsed: &'a ParsedFile,
    pub symbols: FileSymbols,
    /// CFGs in source order, aligned with `functions`.
    pub cfgs: Vec<Cfg>,
    /// The function definitions, same order as `cfgs`.
    pub functions: Vec<&'a ckit::ast::FunctionDef>,
}

impl<'a> LoweredFile<'a> {
    /// Lower a parsed file: build symbols and all CFGs.
    pub fn lower(parsed: &'a ParsedFile) -> LoweredFile<'a> {
        let rec = obs::Recorder::new();
        Self::lower_traced(parsed, &rec)
    }

    /// Lower a parsed file, recording a per-file `cfg` span (with
    /// per-function attribution) and construction counters.
    pub fn lower_traced(parsed: &'a ParsedFile, rec: &obs::Recorder) -> LoweredFile<'a> {
        let file = parsed.map.file.as_str();
        let _span = rec.span_with("cfg", &[("file", file)]);
        let symbols = FileSymbols::build(&parsed.unit);
        let functions: Vec<_> = parsed.unit.functions().collect();
        let cfgs: Vec<Cfg> = functions
            .iter()
            .map(|f| {
                let _fn_span =
                    rec.span_with("cfg-build", &[("file", file), ("function", &f.sig.name)]);
                Cfg::build(f)
            })
            .collect();
        rec.count("cfgir_cfgs_built", cfgs.len() as u64);
        rec.count(
            "cfgir_nodes",
            cfgs.iter().map(|c| c.ids().count() as u64).sum(),
        );
        LoweredFile {
            parsed,
            symbols,
            cfgs,
            functions,
        }
    }

    /// Index of the function named `name`.
    pub fn function_index(&self, name: &str) -> Option<usize> {
        self.functions.iter().position(|f| f.sig.name == name)
    }

    /// Typing environment for function `idx`.
    pub fn env(&self, idx: usize) -> TypeEnv<'_> {
        TypeEnv::for_function(&self.symbols, self.functions[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_builds_all_cfgs() {
        let parsed = ckit::parse_string(
            "t.c",
            "struct s { int x; };\nvoid a(struct s *p) { p->x = 1; }\nint b(void) { return 2; }",
        )
        .unwrap();
        let lowered = LoweredFile::lower(&parsed);
        assert_eq!(lowered.cfgs.len(), 2);
        assert_eq!(lowered.function_index("b"), Some(1));
        assert_eq!(lowered.function_index("missing"), None);
        assert!(lowered.symbols.structs.contains_key("s"));
    }
}
