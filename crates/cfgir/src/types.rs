//! Expression type resolution.
//!
//! Resolves the struct identity behind member accesses — the heart of the
//! paper's `(typeof(struct), nameof(field))` shared-object tuples. Aliasing
//! through local pointer variables is handled by tracking declaration
//! types; typedef chains are resolved through [`FileSymbols`].

use crate::symbols::FileSymbols;
use ckit::ast::{BinOp, Expr, ExprKind, Type, UnOp};
use std::collections::HashMap;

/// Typing environment of one function.
pub struct TypeEnv<'a> {
    pub file: &'a FileSymbols,
    /// Parameter and local variable types (flat; see
    /// [`crate::symbols::collect_locals`]).
    pub vars: HashMap<String, Type>,
}

impl<'a> TypeEnv<'a> {
    /// Build the environment for a function definition.
    pub fn for_function(file: &'a FileSymbols, func: &ckit::ast::FunctionDef) -> TypeEnv<'a> {
        let mut vars = crate::symbols::collect_locals(&func.body);
        for p in &func.sig.params {
            vars.entry(p.name.to_string())
                .or_insert_with(|| p.ty.clone());
        }
        TypeEnv { file, vars }
    }

    /// Type of an expression, if derivable.
    pub fn type_of(&self, e: &Expr) -> Option<Type> {
        match &e.kind {
            ExprKind::Ident(name) => {
                if let Some(t) = self.vars.get(name.as_str()) {
                    return Some(t.clone());
                }
                if let Some(t) = self.file.globals.get(name.as_str()) {
                    return Some(t.clone());
                }
                if self.file.enum_consts.contains_key(name.as_str()) {
                    return Some(Type::int());
                }
                None
            }
            ExprKind::IntLit { .. } | ExprKind::CharLit(_) => Some(Type::int()),
            ExprKind::FloatLit(_) => Some(Type::Double),
            ExprKind::StrLit(_) => Some(
                Type::Int {
                    unsigned: false,
                    rank: ckit::ast::IntRank::Char,
                }
                .ptr(),
            ),
            ExprKind::Member { base, field, arrow } => {
                let base_ty = self.type_of(base)?;
                let resolved = self.file.resolve(&base_ty);
                // For `->` the base must be a pointer; for `.` it must not.
                // We don't enforce this (macro-expanded code lies), we just
                // strip as needed.
                let _ = arrow;
                let strukt = match resolved.base() {
                    Type::Struct { name, .. } => name.clone(),
                    _ => return None,
                };
                let fty = self.file.field_type(&strukt, field)?;
                Some(self.file.resolve(&fty))
            }
            ExprKind::Index(base, _) => {
                let base_ty = self.type_of(base)?;
                match self.file.resolve(&base_ty) {
                    Type::Ptr(inner) | Type::Array(inner, _) => Some(*inner),
                    _ => None,
                }
            }
            ExprKind::Unary(UnOp::Deref, inner) => {
                let t = self.type_of(inner)?;
                match self.file.resolve(&t) {
                    Type::Ptr(inner) | Type::Array(inner, _) => Some(*inner),
                    _ => None,
                }
            }
            ExprKind::Unary(UnOp::Addr, inner) => Some(self.type_of(inner)?.ptr()),
            ExprKind::Unary(_, inner) | ExprKind::Post(_, inner) => self.type_of(inner),
            ExprKind::Binary(op, a, b) => match op {
                BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Gt
                | BinOp::Le
                | BinOp::Ge
                | BinOp::And
                | BinOp::Or => Some(Type::int()),
                // Pointer arithmetic keeps the pointer type.
                _ => {
                    let ta = self.type_of(a);
                    if let Some(Type::Ptr(_)) = ta.as_ref().map(|t| self.file.resolve(t)) {
                        ta
                    } else {
                        self.type_of(b).or(ta)
                    }
                }
            },
            ExprKind::Assign(_, lhs, _) => self.type_of(lhs),
            ExprKind::Ternary {
                then_expr,
                else_expr,
                ..
            } => self.type_of(then_expr).or_else(|| self.type_of(else_expr)),
            ExprKind::Call { callee, args } => {
                if let Some(name) = callee.as_ident() {
                    // READ_ONCE/WRITE_ONCE/smp_load_acquire return their
                    // target's type.
                    if matches!(
                        name,
                        "READ_ONCE"
                            | "WRITE_ONCE"
                            | "smp_load_acquire"
                            | "rcu_dereference"
                            | "rcu_dereference_check"
                            | "rcu_dereference_protected"
                            | "rcu_dereference_raw"
                            | "srcu_dereference"
                            | "rcu_access_pointer"
                    ) {
                        let target = args.first()?;
                        // smp_load_acquire takes &x.
                        let t = self.type_of(target)?;
                        return match (name, self.file.resolve(&t)) {
                            ("smp_load_acquire", Type::Ptr(inner)) => Some(*inner),
                            (_, other) => Some(other),
                        };
                    }
                    if let Some(sig) = self.file.functions.get(name) {
                        return Some(self.file.resolve(&sig.ret));
                    }
                }
                None
            }
            ExprKind::Cast(ty, _) => Some(self.file.resolve(ty)),
            ExprKind::SizeofType(_) | ExprKind::SizeofExpr(_) => Some(Type::Int {
                unsigned: true,
                rank: ckit::ast::IntRank::Long,
            }),
            ExprKind::Comma(_, b) => self.type_of(b),
            ExprKind::InitList(_) => None,
            ExprKind::StmtExpr(stmts) => {
                // The value is the last expression statement.
                for s in stmts.iter().rev() {
                    if let ckit::ast::StmtKind::Expr(e) = &s.kind {
                        return self.type_of(e);
                    }
                }
                None
            }
        }
    }

    /// Struct name of the object a member access touches:
    /// for `a->b.c`, asked about the `.c` member, returns the struct that
    /// contains field `c`.
    pub fn member_struct(&self, base: &Expr) -> Option<String> {
        let t = self.type_of(base)?;
        self.file.pointee_struct(&t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckit::parse_string;

    fn env_and_fn(src: &str) -> (FileSymbols, ckit::ast::FunctionDef) {
        let out = parse_string("t.c", src).unwrap();
        assert!(out.errors.is_empty(), "{:?}", out.errors);
        let sym = FileSymbols::build(&out.unit);
        let f = out.unit.functions().next().unwrap().clone();
        (sym, f)
    }

    /// Find the first expression in the function satisfying `pred` and
    /// return its resolved type.
    fn type_of_first(src: &str, pred: impl Fn(&Expr) -> bool) -> Option<Type> {
        let (sym, f) = env_and_fn(src);
        let env = TypeEnv::for_function(&sym, &f);
        let mut found = None;
        for s in &f.body {
            s.walk_exprs(&mut |e| {
                if found.is_none() && pred(e) {
                    found = Some(env.type_of(e));
                }
            });
        }
        found.flatten()
    }

    #[test]
    fn param_member_type() {
        let t = type_of_first(
            "struct req { int len; };\nvoid f(struct req *r) { r->len = 1; }",
            |e| matches!(&e.kind, ExprKind::Member { .. }),
        );
        assert_eq!(t, Some(Type::int()));
    }

    #[test]
    fn local_pointer_alias() {
        let t = type_of_first(
            "struct req { int len; };\nvoid f(struct req *r) { struct req *alias = r; alias->len = 1; }",
            |e| matches!(&e.kind, ExprKind::Member { .. }),
        );
        assert_eq!(t, Some(Type::int()));
    }

    #[test]
    fn nested_member_chain() {
        let src = "struct buf { int len; };\nstruct req { struct buf b; };\nvoid f(struct req *r) { r->b.len = 1; }";
        let t = type_of_first(
            src,
            |e| matches!(&e.kind, ExprKind::Member { field, .. } if field == "len"),
        );
        assert_eq!(t, Some(Type::int()));
    }

    #[test]
    fn member_struct_of_nested_chain() {
        let src = "struct buf { int len; };\nstruct req { struct buf b; };\nvoid f(struct req *r) { r->b.len = 1; }";
        let (sym, f) = env_and_fn(src);
        let env = TypeEnv::for_function(&sym, &f);
        let mut strukt = None;
        for s in &f.body {
            s.walk_exprs(&mut |e| {
                if let ExprKind::Member { base, field, .. } = &e.kind {
                    if field == "len" {
                        strukt = env.member_struct(base);
                    }
                }
            });
        }
        assert_eq!(strukt, Some("buf".to_string()));
    }

    #[test]
    fn typedef_pointer_member() {
        let src =
            "struct raw { int x; };\ntypedef struct raw raw_t;\nvoid f(raw_t *p) { p->x = 1; }";
        let t = type_of_first(src, |e| matches!(&e.kind, ExprKind::Member { .. }));
        assert_eq!(t, Some(Type::int()));
    }

    #[test]
    fn array_index_of_struct_ptrs() {
        let src = "struct sock { int id; };\nstruct reuse { struct sock *socks[16]; };\nvoid f(struct reuse *r) { r->socks[0]->id = 1; }";
        let t = type_of_first(
            src,
            |e| matches!(&e.kind, ExprKind::Member { field, .. } if field == "id"),
        );
        assert_eq!(t, Some(Type::int()));
    }

    #[test]
    fn call_return_type() {
        let src =
            "struct req { int len; };\nstruct req *get(void);\nvoid f(void) { get()->len = 1; }";
        let t = type_of_first(src, |e| matches!(&e.kind, ExprKind::Member { .. }));
        assert_eq!(t, Some(Type::int()));
    }

    #[test]
    fn read_once_preserves_type() {
        let src = "struct ev { struct task *t; };\nstruct task { int pid; };\nvoid f(struct ev *e) { struct task *x = READ_ONCE(e->t); x->pid = 1; }";
        let t = type_of_first(
            src,
            |e| matches!(&e.kind, ExprKind::Member { field, .. } if field == "pid"),
        );
        assert_eq!(t, Some(Type::int()));
    }

    #[test]
    fn cast_type() {
        let src = "struct req { int len; };\nvoid f(void *p) { ((struct req *)p)->len = 1; }";
        let t = type_of_first(src, |e| matches!(&e.kind, ExprKind::Member { .. }));
        assert_eq!(t, Some(Type::int()));
    }

    #[test]
    fn deref_member() {
        let src = "struct req { int len; };\nvoid f(struct req **pp) { (*pp)->len = 1; }";
        let t = type_of_first(src, |e| matches!(&e.kind, ExprKind::Member { .. }));
        assert_eq!(t, Some(Type::int()));
    }

    #[test]
    fn unknown_base_is_none() {
        let src = "void f(void *p) { int x = mystery()->len; }";
        let t = type_of_first(src, |e| matches!(&e.kind, ExprKind::Member { .. }));
        assert_eq!(t, None);
    }

    #[test]
    fn global_variable_type() {
        let src = "struct cfg { int mode; };\nstatic struct cfg global_cfg;\nvoid f(void) { global_cfg.mode = 1; }";
        let t = type_of_first(src, |e| matches!(&e.kind, ExprKind::Member { .. }));
        assert_eq!(t, Some(Type::int()));
    }
}
