//! Intra-procedural dataflow analyses over a [`Cfg`].
//!
//! Three classic frameworks, sized for the small per-function CFGs this
//! workspace builds:
//!
//! * **dominator / post-dominator trees** (iterative Cooper–Harvey–Kennedy
//!   over a reverse-postorder numbering),
//! * **reaching definitions** (forward may-analysis over caller-supplied
//!   definition sites, so the framework stays agnostic of what a
//!   "variable" is — `crates/core` instantiates it with shared-object
//!   keys),
//! * **def-use chains** derived from the reaching-definitions solution.
//!
//! All three tolerate unreachable nodes (the CFG builder keeps statements
//! after a `return`): such nodes are reported as unreachable and excluded
//! from dominance and dataflow facts.

use crate::cfg::{Cfg, NodeId};

/// A dominator (or post-dominator) tree.
///
/// For dominators the root is the CFG entry and edges are successor
/// edges; for post-dominators the root is the exit and edges are
/// predecessor edges.
#[derive(Clone, Debug)]
pub struct DomTree {
    root: NodeId,
    /// Immediate dominator per node; `idom[root] == root`, unreachable
    /// nodes are `None`.
    idom: Vec<Option<NodeId>>,
}

impl DomTree {
    /// The immediate dominator of `n` (`None` for the root and for nodes
    /// unreachable from it).
    pub fn idom(&self, n: NodeId) -> Option<NodeId> {
        if n == self.root {
            return None;
        }
        self.idom[n]
    }

    /// Is `n` reachable from the tree's root along the analyzed edges?
    pub fn is_reachable(&self, n: NodeId) -> bool {
        n == self.root || self.idom[n].is_some()
    }

    /// Does `a` dominate `b` (reflexively)? `false` if either node is
    /// unreachable.
    pub fn dominates(&self, a: NodeId, b: NodeId) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.root {
                return false;
            }
            cur = self.idom[cur].expect("reachable non-root has an idom");
        }
    }

    /// `a` dominates `b` and `a != b`.
    pub fn strictly_dominates(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.dominates(a, b)
    }
}

/// Dominator tree rooted at the CFG entry.
pub fn dominators(cfg: &Cfg) -> DomTree {
    build_dom_tree(cfg, cfg.entry, |n| &cfg.node(n).succs)
}

/// Post-dominator tree rooted at the CFG exit.
pub fn post_dominators(cfg: &Cfg) -> DomTree {
    build_dom_tree(cfg, cfg.exit, |n| &cfg.node(n).preds)
}

fn build_dom_tree<'a>(
    cfg: &'a Cfg,
    root: NodeId,
    fwd: impl Fn(NodeId) -> &'a Vec<NodeId>,
) -> DomTree {
    let n = cfg.nodes.len();
    // Reverse postorder from the root along `fwd` edges.
    let rpo = reverse_postorder(n, root, &fwd);
    let mut rpo_num = vec![usize::MAX; n];
    for (i, &node) in rpo.iter().enumerate() {
        rpo_num[node] = i;
    }
    // Predecessors along the analyzed direction.
    let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for &node in &rpo {
        for &s in fwd(node) {
            preds[s].push(node);
        }
    }
    let mut idom: Vec<Option<NodeId>> = vec![None; n];
    idom[root] = Some(root);
    let mut changed = true;
    while changed {
        changed = false;
        for &node in rpo.iter().skip(1) {
            let mut new_idom: Option<NodeId> = None;
            for &p in &preds[node] {
                if idom[p].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, &rpo_num, cur, p),
                });
            }
            if let Some(ni) = new_idom {
                if idom[node] != Some(ni) {
                    idom[node] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    // Normalize: the root's stored idom stays `Some(root)` internally but
    // `idom()` reports `None`; unreachable nodes keep `None`.
    DomTree { root, idom }
}

fn intersect(idom: &[Option<NodeId>], rpo_num: &[usize], mut a: NodeId, mut b: NodeId) -> NodeId {
    while a != b {
        while rpo_num[a] > rpo_num[b] {
            a = idom[a].expect("processed node has an idom");
        }
        while rpo_num[b] > rpo_num[a] {
            b = idom[b].expect("processed node has an idom");
        }
    }
    a
}

fn reverse_postorder<'a>(
    n: usize,
    root: NodeId,
    fwd: &impl Fn(NodeId) -> &'a Vec<NodeId>,
) -> Vec<NodeId> {
    let mut seen = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with an explicit edge cursor per frame.
    let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
    seen[root] = true;
    while let Some(&mut (node, ref mut cursor)) = stack.last_mut() {
        let edges = fwd(node);
        if *cursor < edges.len() {
            let next = edges[*cursor];
            *cursor += 1;
            if !seen[next] {
                seen[next] = true;
                stack.push((next, 0));
            }
        } else {
            post.push(node);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// A definition site: node `node` (re)defines the value named by `key`.
///
/// The key type is caller-chosen: a local variable name, a
/// `(struct, field)` pair, anything with equality.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Def<K> {
    pub node: NodeId,
    pub key: K,
}

/// A use site: node `node` reads the value named by `key`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Use<K> {
    pub node: NodeId,
    pub key: K,
}

/// The reaching-definitions solution: for every node, which definition
/// sites (by index into the `defs` slice passed to
/// [`reaching_definitions`]) may reach the *entry* of that node.
#[derive(Clone, Debug)]
pub struct ReachingDefs {
    words: usize,
    in_sets: Vec<u64>,
}

impl ReachingDefs {
    /// Does definition `def_index` reach the entry of `node`?
    pub fn reaches(&self, def_index: usize, node: NodeId) -> bool {
        let bit = self.in_sets[node * self.words + def_index / 64];
        bit >> (def_index % 64) & 1 == 1
    }

    /// Indices of all definitions reaching the entry of `node`.
    pub fn defs_reaching(&self, node: NodeId) -> Vec<usize> {
        let mut out = Vec::new();
        for w in 0..self.words {
            let mut bits = self.in_sets[node * self.words + w];
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push(w * 64 + b);
                bits &= bits - 1;
            }
        }
        out
    }
}

/// Forward may-analysis: a definition reaches a node if some path from
/// the definition to the node contains no other definition of the same
/// key. Definitions in unreachable code never reach anything.
pub fn reaching_definitions<K: PartialEq>(cfg: &Cfg, defs: &[Def<K>]) -> ReachingDefs {
    let n = cfg.nodes.len();
    let words = defs.len().div_ceil(64).max(1);
    let mut gen_sets = vec![0u64; n * words];
    let mut kill = vec![0u64; n * words];
    for (i, d) in defs.iter().enumerate() {
        gen_sets[d.node * words + i / 64] |= 1 << (i % 64);
        for (j, other) in defs.iter().enumerate() {
            if j != i && other.key == d.key {
                kill[d.node * words + j / 64] |= 1 << (j % 64);
            }
        }
    }
    // A node both generating and killing a def keeps its own generation.
    for w in 0..n * words {
        kill[w] &= !gen_sets[w];
    }
    let rpo = reverse_postorder(n, cfg.entry, &|id| &cfg.node(id).succs);
    let mut in_sets = vec![0u64; n * words];
    let mut out_sets = vec![0u64; n * words];
    let mut changed = true;
    while changed {
        changed = false;
        for &node in &rpo {
            let mut new_in = vec![0u64; words];
            for &p in &cfg.node(node).preds {
                for w in 0..words {
                    new_in[w] |= out_sets[p * words + w];
                }
            }
            for w in 0..words {
                let new_out = gen_sets[node * words + w] | (new_in[w] & !kill[node * words + w]);
                if new_in[w] != in_sets[node * words + w] || new_out != out_sets[node * words + w] {
                    changed = true;
                    in_sets[node * words + w] = new_in[w];
                    out_sets[node * words + w] = new_out;
                }
            }
        }
    }
    ReachingDefs { words, in_sets }
}

/// A (definition, use) link: the use at `uses[chain.1]` may observe the
/// value written by `defs[chain.0]`.
pub type DefUseChain = (usize, usize);

/// Def-use chains from the reaching-definitions solution. A use at node
/// `n` links to every definition of the same key reaching the entry of
/// `n` (reads in a statement happen before that statement's own writes).
pub fn def_use_chains<K: PartialEq>(
    cfg: &Cfg,
    defs: &[Def<K>],
    uses: &[Use<K>],
) -> Vec<DefUseChain> {
    let rd = reaching_definitions(cfg, defs);
    let mut chains = Vec::new();
    for (ui, u) in uses.iter().enumerate() {
        for (di, d) in defs.iter().enumerate() {
            if d.key == u.key && rd.reaches(di, u.node) {
                chains.push((di, ui));
            }
        }
    }
    chains
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::NodeKind;
    use ckit::parse_string;

    fn cfg_of(src: &str) -> Cfg {
        let out = parse_string("t.c", src).unwrap();
        assert!(out.errors.is_empty(), "{:?}", out.errors);
        let cfg = Cfg::build(out.unit.functions().next().unwrap());
        cfg
    }

    /// Node id of the statement whose source text contains `text`.
    fn node_containing(cfg: &Cfg, src: &str, text: &str) -> NodeId {
        cfg.ids()
            .find(|&i| {
                let n = cfg.node(i);
                !matches!(n.kind, NodeKind::Entry | NodeKind::Exit)
                    && n.span.slice(src).contains(text)
            })
            .unwrap_or_else(|| panic!("no node containing {text:?}"))
    }

    #[test]
    fn straight_line_dominators() {
        let src = "void f(int a) { a = 1; a = 2; a = 3; }";
        let cfg = cfg_of(src);
        let dom = dominators(&cfg);
        let n1 = node_containing(&cfg, src, "a = 1");
        let n2 = node_containing(&cfg, src, "a = 2");
        let n3 = node_containing(&cfg, src, "a = 3");
        assert!(dom.dominates(n1, n2));
        assert!(dom.dominates(n1, n3));
        assert!(dom.dominates(n2, n3));
        assert!(!dom.dominates(n3, n1));
        assert_eq!(dom.idom(n2), Some(n1));
        assert!(dom.dominates(cfg.entry, n3));
        assert_eq!(dom.idom(cfg.entry), None);
    }

    #[test]
    fn diamond_joins_at_entry_branch() {
        let src = "void f(int a) { a = 0; if (a) { a = 1; } else { a = 2; } a = 3; }";
        let cfg = cfg_of(src);
        let dom = dominators(&cfg);
        let cond = cfg
            .ids()
            .find(|&i| matches!(cfg.node(i).kind, NodeKind::Cond(_)))
            .unwrap();
        let t = node_containing(&cfg, src, "a = 1");
        let e = node_containing(&cfg, src, "a = 2");
        let join = node_containing(&cfg, src, "a = 3");
        assert!(dom.dominates(cond, t));
        assert!(dom.dominates(cond, e));
        // Neither arm dominates the join; the condition does.
        assert!(!dom.dominates(t, join));
        assert!(!dom.dominates(e, join));
        assert_eq!(dom.idom(join), Some(cond));
    }

    #[test]
    fn post_dominators_mirror() {
        let src = "void f(int a) { a = 0; if (a) { a = 1; } else { a = 2; } a = 3; }";
        let cfg = cfg_of(src);
        let pdom = post_dominators(&cfg);
        let t = node_containing(&cfg, src, "a = 1");
        let join = node_containing(&cfg, src, "a = 3");
        assert!(pdom.dominates(join, t));
        assert!(pdom.dominates(cfg.exit, t));
        assert!(!pdom.dominates(t, join));
    }

    #[test]
    fn loop_head_dominates_body() {
        let src = "void f(int n) { n = 0; while (n < 3) { n++; } n = 9; }";
        let cfg = cfg_of(src);
        let dom = dominators(&cfg);
        let head = node_containing(&cfg, src, "n < 3");
        let body = node_containing(&cfg, src, "n++");
        let after = node_containing(&cfg, src, "n = 9");
        assert!(dom.dominates(head, body));
        assert!(dom.dominates(head, after));
        assert!(!dom.dominates(body, after));
    }

    #[test]
    fn unreachable_nodes_are_excluded() {
        let src = "int f(int a) { a = 1; return a; a = 2; }";
        let cfg = cfg_of(src);
        let dom = dominators(&cfg);
        let live = node_containing(&cfg, src, "a = 1");
        let dead = node_containing(&cfg, src, "a = 2");
        assert!(dom.is_reachable(live));
        assert!(!dom.is_reachable(dead));
        assert!(!dom.dominates(live, dead));
        assert!(!dom.dominates(dead, live));
    }

    #[test]
    fn reaching_defs_straight_line_kill() {
        let src = "void f(int a, int b) { a = 1; b = a; a = 2; b = a; }";
        let cfg = cfg_of(src);
        let d1 = node_containing(&cfg, src, "a = 1");
        let d2 = node_containing(&cfg, src, "a = 2");
        let u1 = cfg
            .ids()
            .filter(|&i| cfg.node(i).span.slice(src).contains("b = a"))
            .min()
            .unwrap();
        let u2 = cfg
            .ids()
            .filter(|&i| cfg.node(i).span.slice(src).contains("b = a"))
            .max()
            .unwrap();
        let defs = vec![Def { node: d1, key: "a" }, Def { node: d2, key: "a" }];
        let rd = reaching_definitions(&cfg, &defs);
        // First use sees only the first def; second use only the second.
        assert!(rd.reaches(0, u1));
        assert!(!rd.reaches(1, u1));
        assert!(!rd.reaches(0, u2));
        assert!(rd.reaches(1, u2));
    }

    #[test]
    fn reaching_defs_merge_at_join() {
        let src = "void f(int a, int c) { if (c) { a = 1; } else { a = 2; } c = a; }";
        let cfg = cfg_of(src);
        let d1 = node_containing(&cfg, src, "a = 1");
        let d2 = node_containing(&cfg, src, "a = 2");
        let join = node_containing(&cfg, src, "c = a");
        let defs = vec![Def { node: d1, key: "a" }, Def { node: d2, key: "a" }];
        let rd = reaching_definitions(&cfg, &defs);
        assert!(rd.reaches(0, join));
        assert!(rd.reaches(1, join));
        assert_eq!(rd.defs_reaching(join), vec![0, 1]);
    }

    #[test]
    fn reaching_defs_through_loop_back_edge() {
        let src = "void f(int n, int s) { n = 0; while (n < 3) { s = n; n = n + 1; } }";
        let cfg = cfg_of(src);
        let d_init = node_containing(&cfg, src, "n = 0");
        let d_inc = node_containing(&cfg, src, "n = n + 1");
        let use_in_body = node_containing(&cfg, src, "s = n");
        let defs = vec![
            Def {
                node: d_init,
                key: "n",
            },
            Def {
                node: d_inc,
                key: "n",
            },
        ];
        let rd = reaching_definitions(&cfg, &defs);
        // Both the initialization and the increment reach the body read.
        assert!(rd.reaches(0, use_in_body));
        assert!(rd.reaches(1, use_in_body));
    }

    #[test]
    fn def_use_chains_link_across_branch() {
        let src = "void f(int a, int c) { a = 1; if (c) { a = 2; } c = a; }";
        let cfg = cfg_of(src);
        let d1 = node_containing(&cfg, src, "a = 1");
        let d2 = node_containing(&cfg, src, "a = 2");
        let u = node_containing(&cfg, src, "c = a");
        let defs = vec![Def { node: d1, key: "a" }, Def { node: d2, key: "a" }];
        let uses = vec![Use { node: u, key: "a" }];
        let chains = def_use_chains(&cfg, &defs, &uses);
        assert!(chains.contains(&(0, 0)));
        assert!(chains.contains(&(1, 0)));
    }

    #[test]
    fn intervening_def_breaks_chain() {
        let src = "void f(int a, int c) { a = 1; a = 2; c = a; }";
        let cfg = cfg_of(src);
        let d1 = node_containing(&cfg, src, "a = 1");
        let d2 = node_containing(&cfg, src, "a = 2");
        let u = node_containing(&cfg, src, "c = a");
        let defs = vec![Def { node: d1, key: "a" }, Def { node: d2, key: "a" }];
        let uses = vec![Use { node: u, key: "a" }];
        let chains = def_use_chains(&cfg, &defs, &uses);
        assert_eq!(chains, vec![(1, 0)]);
    }

    #[test]
    fn many_defs_cross_word_boundary() {
        // More than 64 defs exercises the multi-word bitset path.
        let mut body = String::new();
        for i in 0..70 {
            body.push_str(&format!("a = {i}; "));
        }
        body.push_str("b = a;");
        let src = format!("void f(int a, int b) {{ {body} }}");
        let cfg = cfg_of(&src);
        let u = node_containing(&cfg, &src, "b = a");
        let defs: Vec<Def<&str>> = (0..70)
            .map(|i| Def {
                node: node_containing(&cfg, &src, &format!("a = {i};")),
                key: "a",
            })
            .collect();
        let rd = reaching_definitions(&cfg, &defs);
        // Only the last assignment survives.
        assert_eq!(rd.defs_reaching(u), vec![69]);
    }
}
