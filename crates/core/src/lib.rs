//! # ofence — pairing memory barriers to find concurrency bugs
//!
//! A from-scratch Rust reproduction of *"OFence: Pairing Barriers to Find
//! Concurrency Bugs in the Linux Kernel"* (Lepers, Giet, Lawall,
//! Zwaenepoel — EuroSys 2023).
//!
//! The analysis pipeline:
//!
//! 1. [`sites`] finds memory barriers (kernel Table 1 primitives plus the
//!    seqcount API) and extracts the `(struct, field)` **shared objects**
//!    accessed in a bounded statement window around each barrier.
//! 2. [`pairing`] pairs barriers that order the same objects (Algorithm 1),
//!    inferring which functions may run concurrently.
//! 3. [`deviation`] checks paired code for misplaced accesses, wrong
//!    barrier types, racy re-reads, and unneeded barriers (§5).
//! 4. [`patch`] turns every finding into a self-explanatory unified diff.
//! 5. [`annotate`] adds missing `READ_ONCE`/`WRITE_ONCE` annotations (§7).
//! 6. [`engine`] drives whole-corpus runs: parallel, incremental, with
//!    [`report::Stats`] matching the paper's evaluation numbers.
//!
//! Every run is observable: the engine threads an [`obs::Recorder`]
//! through the pipeline, so [`AnalysisResult::obs`] carries per-phase
//! spans (parse / cfg / extract / pair / check) with per-file
//! attribution plus decision counters — exportable as a Chrome trace or
//! Prometheus text. [`explain`] replays the pairing decision for a
//! single barrier, and [`json`] serializes results to a stable schema.
//!
//! ```
//! use ofence::{AnalysisConfig, Engine, SourceFile};
//!
//! let files = vec![SourceFile::new("demo.c", r#"
//! struct m { int init; int y; };
//! void reader(struct m *a) { if (!a->init) return; smp_rmb(); f(a->y); }
//! void writer(struct m *b) { b->y = 1; smp_wmb(); b->init = 1; }
//! "#)];
//! let result = Engine::new(AnalysisConfig::default()).analyze(&files);
//! assert_eq!(result.pairing.pairings.len(), 1);
//! ```

pub mod annotate;
pub mod cache;
pub mod config;
pub mod deviation;
pub mod diffing;
pub mod engine;
pub mod explain;
pub mod extract;
pub mod fingerprint;
pub mod history;
pub mod ir;
pub mod json;
pub mod missing;
pub mod pairing;
pub mod patch;
pub mod perf;
pub mod pool;
pub mod report;
pub mod sarif;
pub mod server;
pub mod session;
pub mod sites;
pub mod summary;
pub mod walk;

pub use obs;

pub use cache::LoadOutcome;
pub use config::AnalysisConfig;
pub use deviation::{Deviation, DeviationKind};
pub use diffing::{classify, Baseline, DiffReport, FailOn};
pub use engine::{AnalysisResult, Engine, SourceFile};
pub use explain::{explain_site, explain_site_with, Explanation};
pub use fingerprint::{finding_records, FindingRecord};
pub use history::RunRecord;
pub use ir::*;
pub use patch::{apply_edits, Patch};
pub use perf::{GateOutcome, PerfRecord};
pub use report::{DistanceHistogram, Stats};
pub use sarif::to_sarif;
pub use session::{Session, SessionOptions};
pub use summary::{ComposedIndex, FnSummary, WindowCall, SUMMARY_VERSION};
pub use walk::collect_sources;
