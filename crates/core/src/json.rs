//! Stable JSON serialization of [`AnalysisResult`].
//!
//! `ofence analyze --json` used to dump an ad-hoc subset of the result;
//! tooling built on it broke whenever a field moved. This module defines
//! the versioned schema documented in `docs/SCHEMA.md`: a top-level
//! `schema_version` integer, the same `stats` / `pairings` / `deviations`
//! keys as before (so existing consumers keep working), plus the full
//! site list, unpaired reasons, patches, annotations, per-file summaries,
//! and the run's observability data (per-phase timings and counters).
//!
//! Compatibility rule: within a `schema_version`, keys are only added,
//! never renamed or removed. Renames/removals bump the version.
//!
//! Schema v2 adds finding provenance: a top-level `run_id`, a `findings`
//! array of [`crate::fingerprint::FindingRecord`]s, and a `fingerprint` +
//! `finding` pair injected into every `deviations` / `annotations` entry.
//! All v1 keys are preserved unchanged.
//!
//! Schema v3 adds inter-procedural provenance: site accesses and finding
//! records gain a `via_calls` array (the callee chain the summary
//! composition pass walked to reach the access). The field is omitted
//! when empty, so depth-0 reports are byte-identical to v2 apart from
//! the version number. All v2 keys are preserved unchanged.

use crate::engine::AnalysisResult;
use crate::fingerprint::finding_records;
use crate::ir::UnpairedReason;

/// Bump on any backwards-incompatible change to [`AnalysisResult::to_json`].
/// v2: stable fingerprints on every finding, `run_id`, `findings` array.
/// v3: `via_calls` call-chain provenance on accesses and findings.
pub const SCHEMA_VERSION: u32 = 3;

impl AnalysisResult {
    /// The full result as a `serde_json::Value` following the documented
    /// stable schema (see `docs/SCHEMA.md`).
    pub fn to_json(&self) -> serde_json::Value {
        let files: Vec<serde_json::Value> = self
            .files
            .iter()
            .map(|fa| {
                serde_json::json!({
                    "name": fa.name,
                    "barriers": fa.sites.len(),
                    "functions": fa.functions.len(),
                    "parse_errors": fa.parse_error_count,
                })
            })
            .collect();
        let unpaired: Vec<serde_json::Value> = self
            .pairing
            .unpaired
            .iter()
            .map(|(id, reason)| {
                serde_json::json!({
                    "id": id.0,
                    "reason": match reason {
                        UnpairedReason::ImplicitIpc => "implicit_ipc",
                        UnpairedReason::NoMatch => "no_match",
                    },
                })
            })
            .collect();
        // Schema v2: every finding entry carries its stable fingerprint
        // plus the full diffable record (what `ofence diff` consumes).
        let dev_records = finding_records(&self.deviations, &self.sites, &self.files);
        let ann_records = finding_records(&self.annotations, &self.sites, &self.files);
        let with_provenance =
            |items: &[crate::deviation::Deviation],
             records: &[crate::fingerprint::FindingRecord]| {
                items
                    .iter()
                    .zip(records)
                    .map(|(d, r)| {
                        let mut v = serde_json::to_value(d);
                        if let serde_json::Value::Object(ref mut obj) = v {
                            obj.insert(
                                "fingerprint".to_string(),
                                serde_json::to_value(&r.fingerprint),
                            );
                            obj.insert("finding".to_string(), serde_json::to_value(r));
                        }
                        v
                    })
                    .collect::<Vec<serde_json::Value>>()
            };
        serde_json::json!({
            "schema_version": SCHEMA_VERSION,
            "run_id": self.run_id,
            "stats": self.stats,
            "sites": self.sites,
            "pairings": self.pairing.pairings,
            "unpaired": unpaired,
            "findings": dev_records,
            "deviations": with_provenance(&self.deviations, &dev_records),
            "patches": self.patches,
            "annotations": with_provenance(&self.annotations, &ann_records),
            "annotation_patches": self.annotation_patches,
            "files": files,
            "observability": {
                "phase_us": self.stats.phase_us,
                "slowest_files": self.stats.slowest_files,
                "counters": self.obs.counters,
                "cache": {
                    "hits": self.obs.count_of("engine_cache_hits"),
                    "loads": self.obs.count_of("cache_loads"),
                    "evictions": self.obs.count_of("cache_evictions"),
                },
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::config::AnalysisConfig;
    use crate::engine::{Engine, SourceFile};

    fn demo_files() -> Vec<SourceFile> {
        vec![SourceFile::new(
            "demo.c",
            r#"struct m { int init; int y; };
void reader(struct m *a) { if (!a->init) return; smp_rmb(); f(a->y); }
void writer(struct m *b) { b->y = 1; smp_wmb(); b->init = 1; }
"#,
        )]
    }

    #[test]
    fn schema_has_all_top_level_keys() {
        let r = Engine::new(AnalysisConfig::default()).analyze(&demo_files());
        let v = r.to_json();
        for key in [
            "schema_version",
            "run_id",
            "stats",
            "sites",
            "pairings",
            "unpaired",
            "findings",
            "deviations",
            "patches",
            "annotations",
            "annotation_patches",
            "files",
            "observability",
        ] {
            assert!(
                v.as_object().unwrap().contains_key(key),
                "missing key {key}"
            );
        }
        assert_eq!(v["schema_version"], super::SCHEMA_VERSION);
        assert_eq!(v["sites"].as_array().unwrap().len(), 2);
        assert_eq!(v["pairings"].as_array().unwrap().len(), 1);
        assert_eq!(v["files"].as_array().unwrap().len(), 1);
        assert!(v["run_id"].as_str().unwrap().starts_with("run-"));
    }

    #[test]
    fn v2_findings_carry_fingerprints() {
        let r = Engine::new(AnalysisConfig::default()).analyze(&demo_files());
        let v = r.to_json();
        // Every deviation and annotation entry carries fingerprint + the
        // full finding record, and the report parses back through the
        // diff engine's document reader.
        for list in ["deviations", "annotations"] {
            for entry in v[list].as_array().unwrap() {
                assert_eq!(entry["fingerprint"].as_str().unwrap().len(), 16);
                assert_eq!(entry["finding"]["fingerprint"], entry["fingerprint"]);
            }
        }
        let records = crate::diffing::records_from_json(&v).unwrap();
        assert_eq!(records.len(), r.deviations.len());
    }

    #[test]
    fn json_roundtrips_through_text() {
        let r = Engine::new(AnalysisConfig::default()).analyze(&demo_files());
        let text = serde_json::to_string_pretty(&r.to_json()).unwrap();
        let back: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back["schema_version"], super::SCHEMA_VERSION);
        assert!(back["observability"]["phase_us"].as_object().is_some());
    }

    #[test]
    fn observability_counters_present() {
        let r = Engine::new(AnalysisConfig::default()).analyze(&demo_files());
        let v = r.to_json();
        let counters = v["observability"]["counters"].as_object().unwrap();
        assert!(counters.contains_key("ckit_files_parsed"), "{counters:?}");
        assert!(
            counters.contains_key("extract_barriers_found"),
            "{counters:?}"
        );
    }

    #[test]
    fn observability_cache_section_present() {
        let files = demo_files();
        let mut engine = Engine::new(AnalysisConfig::default());
        engine.analyze(&files);
        let r = engine.analyze(&files); // warm: everything from cache
        let v = r.to_json();
        assert_eq!(v["observability"]["cache"]["hits"], 1);
        assert_eq!(v["observability"]["cache"]["loads"], 0);
        assert_eq!(v["observability"]["cache"]["evictions"], 0);
    }
}
