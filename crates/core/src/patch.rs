//! Patch synthesis — paper §5.4.
//!
//! Every deviation becomes a span-based edit list over the original
//! source, rendered as a unified diff with the paper-style explanation in
//! the header ("the patch documents which shared objects were used to
//! pair the barriers and the type of constraint that was fixed").

use crate::deviation::{Deviation, DeviationKind};
use crate::ir::Side;
use crate::sites::{FileAnalysis, FunctionInfo};
use ckit::ast::{Stmt, StmtKind};
use ckit::span::Span;
use serde::{Deserialize, Serialize};

/// A single replace-span edit. Deletion is an empty replacement;
/// insertion is an empty span.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edit {
    pub span: Span,
    pub replacement: String,
}

/// A generated patch.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Patch {
    pub file: String,
    pub title: String,
    /// Why the original code was erroneous (embedded in the diff header).
    pub explanation: String,
    pub edits: Vec<Edit>,
    /// Rendered unified diff.
    pub diff: String,
}

/// Apply edits to a source string. Edits must not overlap; returns `None`
/// if they do (a bug upstream, surfaced rather than corrupting output).
pub fn apply_edits(source: &str, edits: &[Edit]) -> Option<String> {
    let mut sorted: Vec<&Edit> = edits.iter().collect();
    sorted.sort_by_key(|e| (e.span.lo, e.span.hi));
    for pair in sorted.windows(2) {
        if pair[1].span.lo < pair[0].span.hi {
            return None;
        }
    }
    let mut out = String::with_capacity(source.len());
    let mut pos = 0usize;
    for e in sorted {
        let lo = e.span.lo as usize;
        let hi = e.span.hi as usize;
        if lo > source.len() || hi > source.len() || lo < pos {
            return None;
        }
        out.push_str(&source[pos..lo]);
        out.push_str(&e.replacement);
        pos = hi;
    }
    out.push_str(&source[pos..]);
    Some(out)
}

/// Render a unified diff (line-based LCS, 3 lines of context).
pub fn line_diff(old: &str, new: &str, file: &str) -> String {
    let a: Vec<&str> = old.lines().collect();
    let b: Vec<&str> = new.lines().collect();
    // LCS DP (files are small; O(n*m) is fine, guarded by a cap).
    if a.len() * b.len() > 4_000_000 {
        return format!("--- a/{file}\n+++ b/{file}\n(diff too large)\n");
    }
    let n = a.len();
    let m = b.len();
    let mut dp = vec![0u32; (n + 1) * (m + 1)];
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            dp[idx(i, j)] = if a[i] == b[j] {
                dp[idx(i + 1, j + 1)] + 1
            } else {
                dp[idx(i + 1, j)].max(dp[idx(i, j + 1)])
            };
        }
    }
    // Build op list: (kind, old_line, new_line) where kind ∈ {' ', '-', '+'}.
    let mut ops: Vec<(char, usize, usize)> = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if a[i] == b[j] {
            ops.push((' ', i, j));
            i += 1;
            j += 1;
        } else if dp[idx(i + 1, j)] >= dp[idx(i, j + 1)] {
            ops.push(('-', i, j));
            i += 1;
        } else {
            ops.push(('+', i, j));
            j += 1;
        }
    }
    while i < n {
        ops.push(('-', i, j));
        i += 1;
    }
    while j < m {
        ops.push(('+', i, j));
        j += 1;
    }
    // Group into hunks with 3 lines of context.
    const CTX: usize = 3;
    let mut out = format!("--- a/{file}\n+++ b/{file}\n");
    let changes: Vec<usize> = ops
        .iter()
        .enumerate()
        .filter(|(_, (k, _, _))| *k != ' ')
        .map(|(p, _)| p)
        .collect();
    if changes.is_empty() {
        return out;
    }
    let mut hunk_start = changes[0].saturating_sub(CTX);
    let mut hunk_end = (changes[0] + CTX + 1).min(ops.len());
    let mut hunks: Vec<(usize, usize)> = Vec::new();
    for &c in &changes[1..] {
        if c.saturating_sub(CTX) <= hunk_end {
            hunk_end = (c + CTX + 1).min(ops.len());
        } else {
            hunks.push((hunk_start, hunk_end));
            hunk_start = c.saturating_sub(CTX);
            hunk_end = (c + CTX + 1).min(ops.len());
        }
    }
    hunks.push((hunk_start, hunk_end));
    for (s, e) in hunks {
        let old_start = ops[s].1 + 1;
        let new_start = ops[s].2 + 1;
        let old_count = ops[s..e].iter().filter(|(k, _, _)| *k != '+').count();
        let new_count = ops[s..e].iter().filter(|(k, _, _)| *k != '-').count();
        out.push_str(&format!(
            "@@ -{old_start},{old_count} +{new_start},{new_count} @@\n"
        ));
        for &(k, oi, nj) in &ops[s..e] {
            let text = match k {
                '-' | ' ' => a.get(oi).copied().unwrap_or(""),
                _ => b.get(nj).copied().unwrap_or(""),
            };
            out.push(k);
            out.push_str(text);
            out.push('\n');
        }
    }
    out
}

/// Synthesize a patch for a deviation against its file's analysis.
///
/// Returns `None` when a fix cannot be expressed as a safe span edit
/// (the deviation is still reported, just without an automatic patch).
pub fn synthesize(dev: &Deviation, fa: &FileAnalysis) -> Option<Patch> {
    let func = fa.functions.iter().find(|f| f.name == dev.site.function)?;
    let edits = match &dev.kind {
        DeviationKind::Misplaced { correct_side } => misplaced_edits(dev, fa, func, *correct_side)?,
        DeviationKind::WrongBarrierType { replacement } => {
            vec![Edit {
                span: dev.site.span,
                replacement: format!("{}()", replacement.name()),
            }]
        }
        DeviationKind::RepeatedRead { first_read_span } => {
            repeated_read_edits(dev, fa, func, *first_read_span)?
        }
        DeviationKind::UnneededBarrier { .. } => {
            let stmt = enclosing_stmt(&func.def.body, dev.site.span)?;
            vec![delete_line_edit(&fa.source, stmt.span)]
        }
        DeviationKind::MissingOnce { .. } => return None, // handled by annotate
        DeviationKind::MissingBarrier { fence, .. } => {
            // Insert the fence on its own line just above the statement
            // holding the first dependent (payload) load. The guard load
            // is before it by construction, so the fence lands between
            // the two — re-analysis then pairs the writer and the
            // diagnostic disappears (machine verification).
            let payload_span = dev.access_span?;
            let stmt = enclosing_stmt(&func.def.body, payload_span)?;
            let at = line_start(&fa.source, stmt.span.lo);
            let indent = line_indent(&fa.source, stmt.span.lo);
            vec![Edit {
                span: Span::new(at, at),
                replacement: format!("{indent}{fence}();\n"),
            }]
        }
    };
    let new_source = apply_edits(&fa.source, &edits)?;
    let diff = line_diff(&fa.source, &new_source, &fa.name);
    Some(Patch {
        file: fa.name.clone(),
        title: title_for(dev),
        explanation: dev.explanation.clone(),
        edits,
        diff,
    })
}

fn title_for(dev: &Deviation) -> String {
    let what = match &dev.kind {
        DeviationKind::Misplaced { .. } => "fix misplaced memory access",
        DeviationKind::WrongBarrierType { .. } => "use the correct barrier type",
        DeviationKind::RepeatedRead { .. } => "avoid racy re-read",
        DeviationKind::UnneededBarrier { .. } => "remove unneeded barrier",
        DeviationKind::MissingOnce { .. } => "annotate concurrent access",
        DeviationKind::MissingBarrier { .. } => "insert missing read fence",
    };
    format!(
        "{}: {} in {}()",
        dev.site.file_name, what, dev.site.function
    )
}

/// Move the statement containing the misplaced access to the other side
/// of the barrier statement.
fn misplaced_edits(
    dev: &Deviation,
    fa: &FileAnalysis,
    func: &FunctionInfo,
    correct_side: Side,
) -> Option<Vec<Edit>> {
    let access_span = dev.access_span?;
    let moved = enclosing_stmt(&func.def.body, access_span)?;
    let barrier_stmt = enclosing_stmt(&func.def.body, dev.site.span)?;
    if moved.span.contains(barrier_stmt.span) {
        // The access lives in a construct wrapping the barrier (e.g. the
        // loop condition); moving it would drag the barrier along.
        return None;
    }
    // Data-dependency guard: moving the statement above code that assigns
    // a variable it reads (e.g. hoisting `it->a` above
    // `it = rcu_dereference(...)`) would produce wrong code. Such
    // deviations are reported without an automatic patch ("may require
    // manual intervention", §5.4).
    if correct_side == Side::Before && moved.span.lo > barrier_stmt.span.lo {
        let gap = Span::new(barrier_stmt.span.lo, moved.span.lo);
        if moved_reads_assigned_in_gap(&func.def.body, moved, gap) {
            return None;
        }
    }
    let stmt_text = full_line_text(&fa.source, moved.span);
    let delete = delete_line_edit(&fa.source, moved.span);
    // When the barrier sits in a do-while condition (the seqcount retry
    // idiom), "before the barrier" means the end of the loop body — not
    // before the whole loop, which would leave the access unprotected.
    let dowhile = find_dowhile_cond(&func.def.body, dev.site.span);
    let insert_at = match (correct_side, dowhile) {
        (Side::Before, Some(dw)) => {
            // Line of the closing `} while (...)` — insert just above it.
            line_start(&fa.source, body_end(dw))
        }
        (Side::Before, None) => line_start(&fa.source, barrier_stmt.span.lo),
        (Side::After, _) => line_end(&fa.source, barrier_stmt.span.hi).saturating_add(1),
    };
    // Moving into a loop body adds one indentation level ("checking the
    // orderings and fixing them is easy to perform automatically, but may
    // require manual intervention to fix styling issues" — §5.4; we fix
    // the common case).
    let text = if matches!((correct_side, dowhile), (Side::Before, Some(_))) {
        stmt_text
            .lines()
            .map(|l| format!("\t{l}"))
            .collect::<Vec<_>>()
            .join("\n")
    } else {
        stmt_text
    };
    let insert = Edit {
        span: Span::new(insert_at, insert_at),
        replacement: format!("{text}\n"),
    };
    // Inserting inside the deleted range would corrupt; guard.
    if delete.span.contains(insert.span) {
        return None;
    }
    Some(vec![delete, insert])
}

/// Replace the re-read expression with the previously read value.
fn repeated_read_edits(
    dev: &Deviation,
    fa: &FileAnalysis,
    func: &FunctionInfo,
    first_read_span: Span,
) -> Option<Vec<Edit>> {
    let reread_span = dev.access_span?;
    if reread_span == first_read_span {
        return None;
    }
    // Find the variable that received the first read.
    if let Some(var) = receiving_variable(&func.def.body, first_read_span) {
        return Some(vec![Edit {
            span: reread_span,
            replacement: var,
        }]);
    }
    // No variable: hoist the first read into a fresh local before its
    // statement and reuse it at both sites.
    let first_stmt = enclosing_stmt(&func.def.body, first_read_span)?;
    let obj = dev.object.as_ref()?;
    let var = format!("__{}", obj.field);
    let read_text = first_read_span.slice(&fa.source).to_string();
    let indent = line_indent(&fa.source, first_stmt.span.lo);
    let insert_at = line_start(&fa.source, first_stmt.span.lo);
    Some(vec![
        Edit {
            span: Span::new(insert_at, insert_at),
            replacement: format!("{indent}typeof({read_text}) {var} = {read_text};\n"),
        },
        Edit {
            span: first_read_span,
            replacement: var.clone(),
        },
        Edit {
            span: reread_span,
            replacement: var,
        },
    ])
}

/// The variable a read was stored into: `int n = READ;` or `n = READ;`.
fn receiving_variable(body: &[Stmt], read_span: Span) -> Option<String> {
    let stmt = enclosing_stmt(body, read_span)?;
    match &stmt.kind {
        StmtKind::Decl(d) => {
            for decl in &d.decls {
                if let Some(init) = &decl.init {
                    if init.span.contains(read_span) && !decl.name.is_empty() {
                        return Some(decl.name.to_string());
                    }
                }
            }
            None
        }
        StmtKind::Expr(e) => {
            if let ckit::ast::ExprKind::Assign(ckit::ast::AssignOp::Assign, lhs, rhs) = &e.kind {
                if rhs.span.contains(read_span) {
                    return lhs.as_ident().map(str::to_string);
                }
            }
            None
        }
        _ => None,
    }
}

/// Does the statement to move read any local variable that is assigned or
/// declared by statements inside `gap` (the region it would be hoisted
/// over)?
fn moved_reads_assigned_in_gap(body: &[Stmt], moved: &Stmt, gap: Span) -> bool {
    use ckit::ast::ExprKind;
    // Variables assigned/declared within the gap.
    let mut assigned: std::collections::HashSet<String> = Default::default();
    fn collect_assigned(s: &Stmt, gap: Span, out: &mut std::collections::HashSet<String>) {
        if s.span.hi <= gap.lo || s.span.lo >= gap.hi {
            return;
        }
        if let StmtKind::Decl(d) = &s.kind {
            for decl in &d.decls {
                out.insert(decl.name.to_string());
            }
        }
        s.walk_exprs(&mut |e| {
            if e.span.lo >= gap.lo && e.span.hi <= gap.hi {
                if let ckit::ast::ExprKind::Assign(_, lhs, _) = &e.kind {
                    if let Some(name) = lhs.as_ident() {
                        out.insert(name.to_string());
                    }
                }
            }
        });
        // Recurse into compound statements.
        match &s.kind {
            StmtKind::Block(stmts) => {
                for inner in stmts {
                    collect_assigned(inner, gap, out);
                }
            }
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_assigned(then_branch, gap, out);
                if let Some(e) = else_branch {
                    collect_assigned(e, gap, out);
                }
            }
            StmtKind::While { body, .. }
            | StmtKind::DoWhile { body, .. }
            | StmtKind::For { body, .. }
            | StmtKind::Switch { body, .. } => collect_assigned(body, gap, out),
            StmtKind::Case { stmt, .. } | StmtKind::Label { stmt, .. } => {
                collect_assigned(stmt, gap, out)
            }
            _ => {}
        }
    }
    for s in body {
        collect_assigned(s, gap, &mut assigned);
    }
    if assigned.is_empty() {
        return false;
    }
    // Identifiers the moved statement reads.
    let mut reads_assigned = false;
    moved.walk_exprs(&mut |e| {
        if let ExprKind::Ident(name) = &e.kind {
            if assigned.contains(name.as_str()) {
                reads_assigned = true;
            }
        }
    });
    reads_assigned
}

/// The deepest `do { … } while (cond)` whose *condition* contains `span`.
fn find_dowhile_cond<'a>(body: &'a [Stmt], span: Span) -> Option<&'a Stmt> {
    let mut found: Option<&'a Stmt> = None;
    fn visit<'a>(s: &'a Stmt, span: Span, found: &mut Option<&'a Stmt>) {
        if !s.span.contains(span) {
            return;
        }
        match &s.kind {
            StmtKind::DoWhile { body, cond } => {
                if cond.span.contains(span) {
                    *found = Some(s);
                }
                visit(body, span, found);
            }
            StmtKind::Block(stmts) => {
                for inner in stmts {
                    visit(inner, span, found);
                }
            }
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                visit(then_branch, span, found);
                if let Some(e) = else_branch {
                    visit(e, span, found);
                }
            }
            StmtKind::While { body, .. }
            | StmtKind::For { body, .. }
            | StmtKind::Switch { body, .. } => visit(body, span, found),
            StmtKind::Case { stmt, .. } | StmtKind::Label { stmt, .. } => visit(stmt, span, found),
            _ => {}
        }
    }
    for s in body {
        visit(s, span, &mut found);
    }
    found
}

/// Byte offset of the end of a do-while's body (its closing brace).
fn body_end(dowhile: &Stmt) -> u32 {
    match &dowhile.kind {
        StmtKind::DoWhile { body, .. } => body.span.hi,
        _ => dowhile.span.hi,
    }
}

/// Smallest movable statement (direct child of a block/body) containing
/// `span`.
pub fn enclosing_stmt(body: &[Stmt], span: Span) -> Option<&Stmt> {
    for s in body {
        if !s.span.contains(span) {
            continue;
        }
        // Descend into blocks to find a tighter movable statement.
        let inner: Option<&Stmt> = match &s.kind {
            StmtKind::Block(stmts) => enclosing_stmt(stmts, span),
            StmtKind::If {
                then_branch,
                else_branch,
                cond,
            } => {
                if cond.span.contains(span) {
                    None // condition belongs to the if itself
                } else {
                    enclosing_stmt(std::slice::from_ref(then_branch), span).or_else(|| {
                        else_branch
                            .as_deref()
                            .and_then(|e| enclosing_stmt(std::slice::from_ref(e), span))
                    })
                }
            }
            StmtKind::While { body: b, cond } | StmtKind::DoWhile { body: b, cond } => {
                if cond.span.contains(span) {
                    None
                } else {
                    enclosing_stmt(std::slice::from_ref(b), span)
                }
            }
            StmtKind::For { body: b, .. } | StmtKind::Switch { body: b, .. } => {
                enclosing_stmt(std::slice::from_ref(b), span)
            }
            StmtKind::Case { stmt, .. } | StmtKind::Label { stmt, .. } => {
                enclosing_stmt(std::slice::from_ref(stmt), span)
            }
            _ => None,
        };
        return Some(inner.unwrap_or(s));
    }
    None
}

// ---- text helpers -----------------------------------------------------

fn line_start(src: &str, offset: u32) -> u32 {
    let bytes = src.as_bytes();
    let mut i = offset as usize;
    while i > 0 && bytes[i - 1] != b'\n' {
        i -= 1;
    }
    i as u32
}

fn line_end(src: &str, offset: u32) -> u32 {
    let bytes = src.as_bytes();
    let mut i = offset as usize;
    while i < bytes.len() && bytes[i] != b'\n' {
        i += 1;
    }
    i as u32
}

fn line_indent(src: &str, offset: u32) -> String {
    let start = line_start(src, offset) as usize;
    src[start..]
        .chars()
        .take_while(|c| *c == ' ' || *c == '\t')
        .collect()
}

/// The statement's text including full lines (used when moving it).
fn full_line_text(src: &str, span: Span) -> String {
    let lo = line_start(src, span.lo);
    let hi = line_end(src, span.hi);
    src[lo as usize..hi as usize].to_string()
}

/// Delete the statement's full lines (including the trailing newline).
fn delete_line_edit(src: &str, span: Span) -> Edit {
    let lo = line_start(src, span.lo);
    let mut hi = line_end(src, span.hi);
    if (hi as usize) < src.len() {
        hi += 1; // eat the newline
    }
    Edit {
        span: Span::new(lo, hi),
        replacement: String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalysisConfig;
    use crate::ir::BarrierId;
    use crate::pairing::pair_barriers;
    use crate::sites::analyze_file;

    fn patches_for(src: &str) -> (FileAnalysis, Vec<Patch>) {
        let config = AnalysisConfig::default();
        let parsed = ckit::parse_string("t.c", src).unwrap();
        assert!(parsed.errors.is_empty(), "{:?}", parsed.errors);
        let mut fa = analyze_file(0, &parsed, &config);
        for (i, s) in fa.sites.iter_mut().enumerate() {
            s.id = BarrierId(i as u32);
        }
        let pairing = pair_barriers(&fa.sites, &config);
        let devs = crate::deviation::check_all(
            &fa.sites,
            &pairing,
            &[std::sync::Arc::new(fa.clone())],
            &config,
        );
        let patches = devs.iter().filter_map(|d| synthesize(d, &fa)).collect();
        (fa, patches)
    }

    #[test]
    fn apply_edits_basic() {
        let src = "abc def ghi";
        let out = apply_edits(
            src,
            &[
                Edit {
                    span: Span::new(4, 7),
                    replacement: "XYZ".into(),
                },
                Edit {
                    span: Span::new(0, 3),
                    replacement: "A".into(),
                },
            ],
        )
        .unwrap();
        assert_eq!(out, "A XYZ ghi");
    }

    #[test]
    fn apply_edits_rejects_overlap() {
        let src = "abcdef";
        assert!(apply_edits(
            src,
            &[
                Edit {
                    span: Span::new(0, 4),
                    replacement: String::new(),
                },
                Edit {
                    span: Span::new(2, 6),
                    replacement: String::new(),
                },
            ],
        )
        .is_none());
    }

    #[test]
    fn diff_renders_hunks() {
        let old = "a\nb\nc\nd\ne\nf\ng\n";
        let new = "a\nb\nc\nX\ne\nf\ng\n";
        let diff = line_diff(old, new, "t.c");
        assert!(diff.contains("--- a/t.c"));
        assert!(diff.contains("-d"));
        assert!(diff.contains("+X"));
        assert!(diff.contains("@@"));
    }

    #[test]
    fn diff_empty_when_equal() {
        let diff = line_diff("same\n", "same\n", "t.c");
        assert!(!diff.contains("@@"));
    }

    #[test]
    fn misplaced_patch_moves_statement() {
        // Patch 1 shape: flag read after the barrier, moved before it.
        let src = r#"struct rpc { int len; int recd; int out; };
void complete(struct rpc *req) {
    req->len = 4;
    smp_wmb();
    req->recd = 1;
}
void decode(struct rpc *req) {
    smp_rmb();
    if (!req->recd)
        return;
    req->out = req->len;
}
"#;
        let (fa, patches) = patches_for(src);
        assert_eq!(patches.len(), 1, "{patches:?}");
        let p = &patches[0];
        let patched = apply_edits(&fa.source, &p.edits).unwrap();
        // The guard must now appear before the rmb.
        let rmb_pos = patched.find("smp_rmb").unwrap();
        let guard_pos = patched.find("if (!req->recd)").unwrap();
        assert!(guard_pos < rmb_pos, "patched:\n{patched}");
        // The patch explains itself.
        assert!(p.explanation.contains("recd"));
        assert!(p.diff.contains("+"));
    }

    #[test]
    fn wrong_type_patch_replaces_barrier() {
        let src = r#"struct s { int data; int flag; };
void writer(struct s *p) {
    p->data = 1;
    smp_rmb();
    p->flag = 1;
}
void reader(struct s *p) {
    if (!p->flag)
        return;
    smp_rmb();
    g(p->data);
}
"#;
        let (fa, patches) = patches_for(src);
        let p = patches
            .iter()
            .find(|p| p.title.contains("correct barrier type"))
            .expect("wrong-type patch");
        let patched = apply_edits(&fa.source, &p.edits).unwrap();
        assert!(patched.contains("smp_wmb()"), "{patched}");
        // Only the writer's barrier changed.
        assert_eq!(patched.matches("smp_rmb").count(), 1);
    }

    #[test]
    fn repeated_read_patch_reuses_variable() {
        let src = r#"struct reuse { int num; struct sock *socks[8]; int len; };
void add_sock(struct reuse *r, struct sock *sk) {
    r->socks[r->num] = sk;
    r->len = 1;
    smp_wmb();
    r->num++;
}
void select_sock(struct reuse *r) {
    int n = r->num;
    int l = r->len;
    smp_rmb();
    if (n) {
        pick(r->socks[r->num]);
    }
}
"#;
        let (fa, patches) = patches_for(src);
        let p = patches
            .iter()
            .find(|p| p.title.contains("racy re-read"))
            .expect("re-read patch");
        let patched = apply_edits(&fa.source, &p.edits).unwrap();
        assert!(patched.contains("pick(r->socks[n])"), "{patched}");
    }

    #[test]
    fn unneeded_patch_deletes_barrier_line() {
        let src = r#"struct d { int got_token; struct task *task; };
void rq_qos_wake(struct d *data) {
    data->got_token = 1;
    smp_wmb();
    wake_up_process(data->task);
}
"#;
        let (fa, patches) = patches_for(src);
        assert_eq!(patches.len(), 1, "{patches:?}");
        let patched = apply_edits(&fa.source, &patches[0].edits).unwrap();
        assert!(!patched.contains("smp_wmb"), "{patched}");
        assert!(patched.contains("wake_up_process"));
    }

    #[test]
    fn patched_file_reanalyzes_clean() {
        // End-to-end: applying the generated patch removes the diagnostic.
        let src = r#"struct rpc { int len; int recd; int out; };
void complete(struct rpc *req) {
    req->len = 4;
    smp_wmb();
    req->recd = 1;
}
void decode(struct rpc *req) {
    smp_rmb();
    if (!req->recd)
        return;
    req->out = req->len;
}
"#;
        let (fa, patches) = patches_for(src);
        let patched = apply_edits(&fa.source, &patches[0].edits).unwrap();
        let (_, patches2) = patches_for(&patched);
        assert!(
            patches2.is_empty(),
            "patched code still flagged: {patches2:?}"
        );
    }
}
