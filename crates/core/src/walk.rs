//! Input collection: expand files and directories into [`SourceFile`]s.
//!
//! Lived in the CLI crate until the analysis server (ROADMAP item 1)
//! needed the same corpus walking from inside `core`: the daemon
//! re-collects its watched paths on every request to snapshot the
//! corpus, so the walker has to be shared, not duplicated. The CLI's
//! `walk` module re-exports from here.

use crate::engine::SourceFile;
use std::path::Path;

/// Load every `.c` file reachable from the given paths, sorted by path
/// for deterministic output.
pub fn collect_sources(paths: &[String]) -> Result<Vec<SourceFile>, String> {
    let mut files: Vec<(String, String)> = Vec::new();
    for p in paths {
        let path = Path::new(p);
        if path.is_dir() {
            walk_dir(path, &mut files)?;
        } else if path.is_file() {
            let content =
                std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
            files.push((p.clone(), content));
        } else {
            return Err(format!("{p}: no such file or directory"));
        }
    }
    files.sort_by(|a, b| a.0.cmp(&b.0));
    files.dedup_by(|a, b| a.0 == b.0);
    if files.is_empty() {
        return Err("no .c files found under the given paths".into());
    }
    Ok(files
        .into_iter()
        .map(|(name, content)| SourceFile::new(name, content))
        .collect())
}

fn walk_dir(dir: &Path, out: &mut Vec<(String, String)>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut entries: Vec<_> = entries
        .collect::<Result<_, _>>()
        .map_err(|e| format!("{}: {e}", dir.display()))?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            walk_dir(&path, out)?;
        } else if path.extension().and_then(|s| s.to_str()) == Some("c") {
            let content =
                std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            out.push((path.display().to_string(), content));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ofence-walk-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("sub")).unwrap();
        dir
    }

    #[test]
    fn collects_recursively_and_sorted() {
        let dir = tempdir("sorted");
        std::fs::write(dir.join("b.c"), "int b;").unwrap();
        std::fs::write(dir.join("a.c"), "int a;").unwrap();
        std::fs::write(dir.join("sub/c.c"), "int c;").unwrap();
        std::fs::write(dir.join("not-c.txt"), "skip").unwrap();
        let sources = collect_sources(&[dir.display().to_string()]).unwrap();
        let names: Vec<&str> = sources.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), 3);
        assert!(names[0].ends_with("a.c"));
        assert!(names[1].ends_with("b.c"));
        assert!(names[2].ends_with("c.c"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_path_is_an_error() {
        let err = collect_sources(&["/no/such/path".to_string()]).unwrap_err();
        assert!(err.contains("no such file"), "{err}");
    }

    #[test]
    fn empty_corpus_is_an_error() {
        let dir = tempdir("empty");
        let err = collect_sources(&[dir.display().to_string()]).unwrap_err();
        assert!(err.contains("no .c files"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
