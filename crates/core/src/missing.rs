//! Missing-barrier detection — a dataflow extension beyond the paper's
//! deviation list.
//!
//! Algorithm 1 leaves a write barrier unpaired when no read barrier shares
//! its objects. Usually that means no concurrent reader exists — but
//! sometimes the reader exists and simply *lacks its fence*. This pass
//! hunts for such readers: barrier-free functions that load the objects an
//! unpaired write barrier publishes, in the ordering-sensitive
//! guard-then-payload shape, and reports the absent read fence with a
//! machine-verifiable insertion patch (applying it makes the writer pair
//! on re-analysis, which removes the diagnostic).
//!
//! The *outlier rule* keeps the false-positive rate in check: a fence-less
//! reader is only reported when the guard load conditionally dominates the
//! dependent loads (the shape a fence protects) and the reader is the
//! anomaly among its siblings — either every other reader of the same
//! objects kept its fence, or it is the only reader of the protocol at
//! all. Disabling the rule ([`crate::AnalysisConfig::outlier_rule`])
//! reports every object overlap, which the ablation benchmark shows is
//! noisy.

use crate::config::AnalysisConfig;
use crate::deviation::{Deviation, DeviationKind};
use crate::extract::accesses_in_node;
use crate::ir::*;
use crate::pairing::PairingResult;
use crate::sites::FileAnalysis;
use crate::summary::ComposedIndex;
use cfgir::{dominators, Cfg, LoweredFile, NodeId, NodeKind};
use ckit::span::Span;

/// One load in a candidate reader function.
struct Load {
    object: SharedObject,
    node: NodeId,
    span: Span,
    line: u32,
}

/// A barrier-free function, summarized for the detector.
struct Reader {
    file: usize,
    file_name: String,
    name: String,
    reads: Vec<Load>,
    /// Objects the function stores to (a true reader has none of the
    /// protocol's).
    writes: Vec<SharedObject>,
    /// Nodes that are branch conditions.
    cond_nodes: Vec<NodeId>,
    dom: cfgir::DomTree,
}

/// The evidence a candidate produced: which guard/payload loads matched.
struct Candidate<'a> {
    reader: &'a Reader,
    guard: &'a Load,
    payload: &'a Load,
    /// Guard load sits in a condition that dominates the payload load and
    /// the reader never stores the protocol objects.
    strict: bool,
}

/// Detect missing read-side fences for every unpaired-without-match write
/// barrier. Called by the engine when
/// [`AnalysisConfig::detect_missing`] is set.
pub fn detect(
    files: &[std::sync::Arc<FileAnalysis>],
    sites: &[BarrierSite],
    pairing: &PairingResult,
    config: &AnalysisConfig,
) -> Vec<Deviation> {
    let rec = obs::Recorder::new();
    detect_traced(files, sites, pairing, config, None, &rec)
}

/// [`detect`] with a `missing` phase span and decision counters. When a
/// [`ComposedIndex`] is supplied (`ipa_depth > 0`), readers whose fence
/// lives in a transitively reachable callee are exonerated — corpus-wide
/// evidence the ±1 view cannot provide.
pub fn detect_traced(
    files: &[std::sync::Arc<FileAnalysis>],
    sites: &[BarrierSite],
    pairing: &PairingResult,
    config: &AnalysisConfig,
    index: Option<&ComposedIndex>,
    rec: &obs::Recorder,
) -> Vec<Deviation> {
    let _span = rec.span("missing");
    let out = detect_inner(files, sites, pairing, config, index, rec);
    rec.count("missing_reports_emitted", out.len() as u64);
    out
}

fn detect_inner(
    files: &[std::sync::Arc<FileAnalysis>],
    sites: &[BarrierSite],
    pairing: &PairingResult,
    config: &AnalysisConfig,
    index: Option<&ComposedIndex>,
    rec: &obs::Recorder,
) -> Vec<Deviation> {
    let writers: Vec<&BarrierSite> = pairing
        .unpaired
        .iter()
        .filter(|(_, r)| *r == UnpairedReason::NoMatch)
        .filter_map(|(id, _)| sites.iter().find(|s| s.id == *id))
        .filter(|s| s.is_write_barrier() && s.seqcount.is_none() && s.wakeup_after.is_none())
        .collect();
    rec.count("missing_writers_examined", writers.len() as u64);
    if writers.is_empty() {
        return Vec::new();
    }

    let mut readers = collect_readers(files, config);
    if let Some(index) = index {
        // Inter-procedural exoneration: a candidate whose fence lives in
        // a callee within `ipa_depth` call edges is not fence-less.
        let before = readers.len();
        readers.retain(|r| !index.fence_within(r.file, &r.name, config.ipa_depth));
        rec.count(
            "missing_readers_exonerated",
            (before - readers.len()) as u64,
        );
    }
    rec.count("missing_readers_summarized", readers.len() as u64);
    let mut out = Vec::new();
    for writer in writers {
        detect_for_writer(writer, &readers, sites, config, &mut out);
    }
    out
}

/// Re-lower every file and summarize its barrier-free functions. The
/// engine's [`FileAnalysis`] keeps only barrier-window accesses, so the
/// whole-function view needed here is rebuilt from source (the pass is
/// opt-in, and parsing dominates neither the paper's nor our runtime).
fn collect_readers(files: &[std::sync::Arc<FileAnalysis>], config: &AnalysisConfig) -> Vec<Reader> {
    let mut readers = Vec::new();
    for fa in files {
        let Ok(parsed) = ckit::parse_string(&fa.name, &fa.source) else {
            continue;
        };
        let lowered = LoweredFile::lower(&parsed);
        for (fi, cfg) in lowered.cfgs.iter().enumerate() {
            if function_has_fence(cfg) {
                continue;
            }
            let env = lowered.env(fi);
            let mut reads = Vec::new();
            let mut writes = Vec::new();
            let mut cond_nodes = Vec::new();
            for node in cfg.ids() {
                if matches!(cfg.node(node).kind, NodeKind::Cond(_)) {
                    cond_nodes.push(node);
                }
                for raw in accesses_in_node(&cfg.node(node).kind, &env) {
                    if config.is_generic_type(&raw.object.strukt) {
                        continue;
                    }
                    match raw.kind {
                        AccessKind::Read => reads.push(Load {
                            object: raw.object,
                            node,
                            span: raw.span,
                            line: parsed.map.lookup(raw.span.lo).line,
                        }),
                        AccessKind::Write => writes.push(raw.object),
                    }
                }
            }
            if reads.is_empty() {
                continue;
            }
            readers.push(Reader {
                file: fa.file,
                file_name: fa.name.clone(),
                name: lowered.functions[fi].sig.name.to_string(),
                reads,
                writes,
                cond_nodes,
                dom: dominators(cfg),
            });
        }
    }
    readers
}

/// Does the function contain any call with fence semantics (explicit
/// barrier, seqcount API, wake-up, or full-barrier atomic)? Such functions
/// are never "fence-less readers".
fn function_has_fence(cfg: &Cfg) -> bool {
    for node in cfg.ids() {
        let Some(expr) = cfg.node(node).kind.expr() else {
            continue;
        };
        let mut found = false;
        expr.walk(&mut |e| {
            if let Some(name) = e.call_name() {
                if matches!(
                    kmodel::classify_call(name),
                    kmodel::CallSemantics::Barrier(_) | kmodel::CallSemantics::Seqcount(_)
                ) || kmodel::has_full_barrier_semantics(name)
                {
                    found = true;
                }
            }
        });
        if found {
            return true;
        }
    }
    false
}

fn detect_for_writer(
    writer: &BarrierSite,
    readers: &[Reader],
    sites: &[BarrierSite],
    config: &AnalysisConfig,
    out: &mut Vec<Deviation>,
) {
    // The protocol the write barrier implements: payload objects are
    // stored before it, the guard objects after (the publish store).
    let mut guards: Vec<&SharedObject> = Vec::new();
    let mut payloads: Vec<&SharedObject> = Vec::new();
    for a in &writer.accesses {
        if a.kind != AccessKind::Write {
            continue;
        }
        let bucket = match a.side {
            Side::After => &mut guards,
            Side::Before => &mut payloads,
        };
        if !bucket.contains(&&a.object) {
            bucket.push(&a.object);
        }
    }
    payloads.retain(|o| !guards.contains(o));
    if guards.is_empty() || payloads.is_empty() {
        return;
    }

    // Sibling readers that kept their fence: read barriers loading at
    // least one guard and one payload object.
    let fenced = sites
        .iter()
        .filter(|s| s.id != writer.id && s.is_read_barrier())
        .filter(|s| {
            let reads = |o: &SharedObject| {
                s.accesses
                    .iter()
                    .any(|a| a.kind == AccessKind::Read && &a.object == o)
            };
            guards.iter().any(|g| reads(g)) && payloads.iter().any(|p| reads(p))
        })
        .count();

    // Fence-less candidates.
    let mut candidates: Vec<Candidate<'_>> = Vec::new();
    for reader in readers {
        let guard_reads: Vec<&Load> = reader
            .reads
            .iter()
            .filter(|l| guards.contains(&&l.object))
            .collect();
        let payload_reads: Vec<&Load> = reader
            .reads
            .iter()
            .filter(|l| payloads.contains(&&l.object))
            .collect();
        if guard_reads.is_empty() || payload_reads.is_empty() {
            continue;
        }
        // Strict guard→payload shape: a guard load in a branch condition
        // that dominates a payload load — exactly where a fence belongs.
        let pure = !reader
            .writes
            .iter()
            .any(|w| guards.contains(&w) || payloads.contains(&w));
        let mut best: Option<(&Load, &Load)> = None;
        if pure {
            'search: for g in &guard_reads {
                if !reader.cond_nodes.contains(&g.node) {
                    continue;
                }
                for p in &payload_reads {
                    if p.node != g.node && reader.dom.dominates(g.node, p.node) {
                        best = Some((*g, *p));
                        break 'search;
                    }
                }
            }
        }
        let strict = best.is_some();
        let (guard, payload) = best.unwrap_or((guard_reads[0], payload_reads[0]));
        candidates.push(Candidate {
            reader,
            guard,
            payload,
            strict,
        });
    }

    let unfenced = candidates.len();
    for c in candidates {
        // Outlier rule: the fence — not the writer's barrier — must be
        // the anomaly. Either the unfenced reader is outvoted by fenced
        // siblings, or it is the protocol's only reader.
        let report = if config.outlier_rule {
            c.strict && (fenced > unfenced || unfenced == 1)
        } else {
            true
        };
        if !report {
            continue;
        }
        let fence = kmodel::idioms::suggested_fence_for_writer(writer.kind.name()).to_string();
        out.push(Deviation {
            kind: DeviationKind::MissingBarrier {
                writer_function: writer.site.function.clone(),
                fence: fence.clone(),
            },
            barrier: writer.id,
            site: SiteRef {
                file: c.reader.file,
                file_name: c.reader.file_name.clone(),
                function: c.reader.name.clone(),
                node: c.payload.node,
                span: c.guard.span,
                line: c.guard.line,
            },
            object: Some(c.guard.object.clone()),
            access_span: Some(c.payload.span),
            explanation: format!(
                "{}() reads {} then {} with no read fence, but {}() in {}() \
                 publishes them in order ({} then barrier then {}); insert \
                 {}() between the loads",
                c.reader.name,
                c.guard.object,
                c.payload.object,
                writer.kind.name(),
                writer.site.function,
                c.payload.object,
                c.guard.object,
                fence,
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, SourceFile};

    fn config_missing() -> AnalysisConfig {
        AnalysisConfig {
            detect_missing: true,
            ..AnalysisConfig::default()
        }
    }

    fn missing_of(devs: &[Deviation]) -> Vec<&Deviation> {
        devs.iter()
            .filter(|d| matches!(d.kind, DeviationKind::MissingBarrier { .. }))
            .collect()
    }

    const UNFENCED_READER: &str = r#"
struct box { int ready; int value; };
void publish(struct box *b, int v) {
    b->value = v;
    smp_wmb();
    b->ready = 1;
}
int consume(struct box *b) {
    if (!b->ready)
        return 0;
    return b->value;
}
"#;

    #[test]
    fn unfenced_guarded_reader_detected() {
        let files = vec![SourceFile::new("m.c", UNFENCED_READER)];
        let r = Engine::new(config_missing()).analyze(&files);
        let miss = missing_of(&r.deviations);
        assert_eq!(miss.len(), 1, "{:?}", r.deviations);
        let d = miss[0];
        assert_eq!(d.site.function, "consume");
        assert_eq!(d.object, Some(SharedObject::new("box", "ready")));
        match &d.kind {
            DeviationKind::MissingBarrier {
                writer_function,
                fence,
            } => {
                assert_eq!(writer_function, "publish");
                assert_eq!(fence, "smp_rmb");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn off_by_default() {
        let files = vec![SourceFile::new("m.c", UNFENCED_READER)];
        let r = Engine::new(AnalysisConfig::default()).analyze(&files);
        assert!(missing_of(&r.deviations).is_empty());
    }

    #[test]
    fn fenced_reader_not_flagged() {
        let src = r#"
struct box { int ready; int value; };
void publish(struct box *b, int v) {
    b->value = v;
    smp_wmb();
    b->ready = 1;
}
int consume(struct box *b) {
    if (!b->ready)
        return 0;
    smp_rmb();
    return b->value;
}
"#;
        let files = vec![SourceFile::new("m.c", src)];
        let r = Engine::new(config_missing()).analyze(&files);
        assert!(missing_of(&r.deviations).is_empty(), "{:?}", r.deviations);
    }

    #[test]
    fn release_store_writer_suggests_load_acquire() {
        let src = r#"
struct slot { struct item *cur; int epoch; };
void install(struct slot *s, struct item *it) {
    s->epoch = 1;
    smp_store_release(&s->cur, it);
}
int peek(struct slot *s) {
    if (!s->cur)
        return 0;
    return s->epoch;
}
"#;
        let files = vec![SourceFile::new("m.c", src)];
        let r = Engine::new(config_missing()).analyze(&files);
        let miss = missing_of(&r.deviations);
        assert_eq!(miss.len(), 1, "{:?}", r.deviations);
        match &miss[0].kind {
            DeviationKind::MissingBarrier { fence, .. } => {
                assert_eq!(fence, "smp_load_acquire")
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn unconditional_reads_need_ablation_mode() {
        // Reads with no guard→payload shape: the outlier rule keeps quiet,
        // the ablation mode reports.
        let src = r#"
struct st { int a; int b; };
void w(struct st *p) {
    p->a = 1;
    smp_wmb();
    p->b = 2;
}
int scan(struct st *p) {
    return p->a + p->b;
}
int scan2(struct st *p) {
    return p->b - p->a;
}
"#;
        let files = vec![SourceFile::new("m.c", src)];
        let strictr = Engine::new(config_missing()).analyze(&files);
        assert!(
            missing_of(&strictr.deviations).is_empty(),
            "{:?}",
            strictr.deviations
        );
        let loose = Engine::new(AnalysisConfig {
            outlier_rule: false,
            ..config_missing()
        })
        .analyze(&files);
        assert!(!missing_of(&loose.deviations).is_empty());
    }

    #[test]
    fn implicit_ipc_writer_skipped() {
        let src = r#"
struct d { int token; int state; };
void waker(struct d *p) {
    p->state = 2;
    smp_wmb();
    p->token = 1;
    wake_up_process(p);
}
int watcher(struct d *p) {
    if (!p->token)
        return 0;
    return p->state;
}
"#;
        let files = vec![SourceFile::new("m.c", src)];
        let r = Engine::new(config_missing()).analyze(&files);
        assert!(
            missing_of(&r.deviations).is_empty(),
            "the woken side needs no fence: {:?}",
            r.deviations
        );
    }
}
