//! The append-only run ledger: `.ofence/history.jsonl`.
//!
//! Every `analyze` (and each watch iteration) appends one [`RunRecord`]
//! line — config fingerprint, corpus stats, per-check deviation counts,
//! wall-time phases from the obs recorder, and the full finding list with
//! fingerprints. `ofence diff <old-run-id> <new-run-id>` resolves its
//! operands here, so regressions can be traced across arbitrary history
//! without keeping `--json` reports around.
//!
//! The format is one JSON object per line. Corrupt or unreadable lines
//! are skipped on load (a crashed append must not brick the ledger);
//! appends are O(1) and never rewrite existing lines.

use crate::engine::AnalysisResult;
use crate::fingerprint::FindingRecord;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Default ledger directory, relative to the working directory.
pub const DEFAULT_HISTORY_DIR: &str = ".ofence";
/// Ledger file name inside the history directory.
pub const HISTORY_FILE_NAME: &str = "history.jsonl";

/// One ledger line: everything needed to diff against this run later
/// and to read corpus/timing trends straight off the file.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunRecord {
    pub run_id: String,
    /// Milliseconds since the Unix epoch at record time.
    pub timestamp_ms: u64,
    /// JSON report schema version in force when the record was written.
    pub schema_version: u32,
    pub tool_version: String,
    /// [`crate::cache::config_fingerprint`] of the analysis config, so a
    /// diff across incompatible configs can be flagged by consumers.
    pub config_fingerprint: String,
    pub files_total: usize,
    pub barriers_total: usize,
    pub pairings: usize,
    pub deviations_total: usize,
    /// Per-class deviation counts (Table 3 shape).
    pub deviations_by_kind: BTreeMap<String, usize>,
    /// Per-phase wall time in microseconds, from the obs recorder.
    pub phase_us: BTreeMap<String, u64>,
    pub elapsed_ms: u64,
    /// The run's findings with stable fingerprints — the diffable payload.
    pub findings: Vec<FindingRecord>,
}

/// Build the ledger record of a finished run.
pub fn record_of(
    result: &AnalysisResult,
    config: &crate::config::AnalysisConfig,
    findings: Vec<FindingRecord>,
) -> RunRecord {
    let timestamp_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    RunRecord {
        run_id: result.run_id.clone(),
        timestamp_ms,
        schema_version: crate::json::SCHEMA_VERSION,
        tool_version: env!("CARGO_PKG_VERSION").to_string(),
        config_fingerprint: format!("{:016x}", crate::cache::config_fingerprint(config)),
        files_total: result.stats.files_total,
        barriers_total: result.stats.barriers_total,
        pairings: result.stats.pairings,
        deviations_total: result.stats.deviations_total,
        deviations_by_kind: result.stats.deviations_by_kind.clone(),
        phase_us: result.stats.phase_us.clone(),
        elapsed_ms: result.stats.elapsed_ms,
        findings,
    }
}

/// Path of the ledger file inside `dir`.
pub fn ledger_path(dir: &Path) -> PathBuf {
    dir.join(HISTORY_FILE_NAME)
}

/// Append one record to the ledger in `dir`, creating the directory and
/// file on first use.
pub fn append(dir: &Path, record: &RunRecord) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let path = ledger_path(dir);
    let mut line =
        serde_json::to_string(record).map_err(|e| format!("serialize run record: {e}"))?;
    line.push('\n');
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .map_err(|e| format!("open {}: {e}", path.display()))?;
    f.write_all(line.as_bytes())
        .map_err(|e| format!("append to {}: {e}", path.display()))
}

/// Load every parseable record, oldest first. Corrupt lines are counted,
/// not fatal.
pub fn load(dir: &Path) -> Result<(Vec<RunRecord>, usize), String> {
    let path = ledger_path(dir);
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let mut records = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<RunRecord>(line) {
            Ok(r) => records.push(r),
            Err(_) => skipped += 1,
        }
    }
    Ok((records, skipped))
}

/// Find a run by id, allowing unambiguous prefixes (`run-3fa` or just
/// `3fa`). Latest records win exact matches; ambiguous prefixes error.
pub fn find(dir: &Path, id: &str) -> Result<RunRecord, String> {
    let (records, _) = load(dir)?;
    if let Some(r) = records.iter().rev().find(|r| r.run_id == id) {
        return Ok(r.clone());
    }
    let matches: Vec<&RunRecord> = records
        .iter()
        .filter(|r| {
            r.run_id.starts_with(id)
                || r.run_id
                    .strip_prefix("run-")
                    .is_some_and(|s| s.starts_with(id))
        })
        .collect();
    match matches.len() {
        0 => Err(format!(
            "no run '{id}' in {} ({} runs recorded)",
            ledger_path(dir).display(),
            records.len()
        )),
        1 => Ok(matches[0].clone()),
        n => Err(format!(
            "run id '{id}' is ambiguous: {n} matches (first: {}, last: {})",
            matches[0].run_id,
            matches[n - 1].run_id
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalysisConfig;
    use crate::engine::{Engine, SourceFile};
    use crate::fingerprint::finding_records;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ofence-history-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn run_once() -> (RunRecord, AnalysisConfig) {
        let config = AnalysisConfig::default();
        let r = Engine::new(config.clone()).analyze(&[SourceFile::new(
            "m.c",
            r#"struct m { int init; int y; };
void reader(struct m *a) { if (!a->init) return; smp_rmb(); f(a->y); }
void writer(struct m *b) { b->y = 1; smp_wmb(); b->init = 1; }
"#,
        )]);
        let findings = finding_records(&r.deviations, &r.sites, &r.files);
        (record_of(&r, &config, findings), config)
    }

    #[test]
    fn append_load_roundtrip() {
        let dir = tmp("roundtrip");
        let (rec, _) = run_once();
        append(&dir, &rec).unwrap();
        append(&dir, &rec).unwrap();
        let (records, skipped) = load(&dir).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(skipped, 0);
        assert_eq!(records[0].run_id, rec.run_id);
        assert_eq!(records[0].schema_version, crate::json::SCHEMA_VERSION);
        assert!(records[0].phase_us.contains_key("pair"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_lines_are_skipped_not_fatal() {
        let dir = tmp("corrupt");
        let (rec, _) = run_once();
        append(&dir, &rec).unwrap();
        let path = ledger_path(&dir);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{not json\n");
        text.push_str("{\"run_id\": 42}\n");
        std::fs::write(&path, text).unwrap();
        append(&dir, &rec).unwrap();
        let (records, skipped) = load(&dir).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(skipped, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn find_resolves_exact_and_prefix() {
        let dir = tmp("find");
        let (rec, _) = run_once();
        append(&dir, &rec).unwrap();
        assert_eq!(find(&dir, &rec.run_id).unwrap().run_id, rec.run_id);
        // Prefix without the "run-" part.
        let bare = rec.run_id.strip_prefix("run-").unwrap();
        assert_eq!(find(&dir, &bare[..8]).unwrap().run_id, rec.run_id);
        assert!(find(&dir, "run-ffffdoesnotexist").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn find_reports_missing_ledger() {
        let dir = tmp("missing");
        std::fs::remove_dir_all(&dir).ok();
        assert!(find(&dir, "anything").is_err());
    }
}
