//! Core data types of the OFence analysis.

use ckit::span::Span;
use kmodel::{BarrierKind, SeqcountOp};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The paper's `(typeof(struct), nameof(field))` tuple, the unit of
/// object identity used to match accesses across functions (§3).
///
/// Plain global variables (no enclosing struct) are represented with an
/// empty `strukt` — they are comparatively rare around barriers but the
/// seqcount pattern needs them.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SharedObject {
    pub strukt: String,
    pub field: String,
}

impl SharedObject {
    pub fn new(strukt: impl Into<String>, field: impl Into<String>) -> Self {
        SharedObject {
            strukt: strukt.into(),
            field: field.into(),
        }
    }

    pub fn global(name: impl Into<String>) -> Self {
        SharedObject {
            strukt: String::new(),
            field: name.into(),
        }
    }

    pub fn is_global(&self) -> bool {
        self.strukt.is_empty()
    }
}

impl fmt::Display for SharedObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.strukt.is_empty() {
            write!(f, "{}", self.field)
        } else {
            write!(f, "(struct {}, {})", self.strukt, self.field)
        }
    }
}

impl fmt::Debug for SharedObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Read or write.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AccessKind {
    Read,
    Write,
}

/// Program-order side of an access relative to its barrier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Side {
    Before,
    After,
}

impl Side {
    pub fn flip(self) -> Side {
        match self {
            Side::Before => Side::After,
            Side::After => Side::Before,
        }
    }
}

/// One memory access found in the window around a barrier.
///
/// `Serialize`/`Deserialize` are hand-written (not derived) so that the
/// `via_calls` provenance field is omitted when empty: reports produced
/// at `--ipa-depth=0` stay byte-identical to the pre-IPA schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Access {
    pub object: SharedObject,
    pub kind: AccessKind,
    pub side: Side,
    /// Statement distance from the barrier (≥ 1; the barrier's own implied
    /// access has distance 1).
    pub distance: u32,
    /// Span of the access expression in its file.
    pub span: Span,
    /// Whether the access is wrapped in `READ_ONCE`/`WRITE_ONCE`.
    pub annotated: bool,
    /// Whether the access was found in a callee/caller rather than the
    /// barrier's own function.
    pub cross_function: bool,
    /// Call chain the inter-procedural summary pass walked to reach this
    /// access (outermost callee first), empty for direct and ±1-level
    /// accesses. Provenance only: excluded from finding fingerprints.
    pub via_calls: Vec<String>,
}

impl Serialize for Access {
    fn to_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("object".to_string(), self.object.to_value());
        m.insert("kind".to_string(), self.kind.to_value());
        m.insert("side".to_string(), self.side.to_value());
        m.insert("distance".to_string(), self.distance.to_value());
        m.insert("span".to_string(), self.span.to_value());
        m.insert("annotated".to_string(), self.annotated.to_value());
        m.insert("cross_function".to_string(), self.cross_function.to_value());
        if !self.via_calls.is_empty() {
            m.insert("via_calls".to_string(), self.via_calls.to_value());
        }
        serde::Value::Object(m)
    }
}

impl Deserialize for Access {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Object(m) = v else {
            return Err(serde::Error::new("Access: expected object"));
        };
        Ok(Access {
            object: serde::de_field(m.get("object"), "object")?,
            kind: serde::de_field(m.get("kind"), "kind")?,
            side: serde::de_field(m.get("side"), "side")?,
            distance: serde::de_field(m.get("distance"), "distance")?,
            span: serde::de_field(m.get("span"), "span")?,
            annotated: serde::de_field(m.get("annotated"), "annotated")?,
            cross_function: serde::de_field(m.get("cross_function"), "cross_function")?,
            via_calls: match m.get("via_calls") {
                Some(v) => Deserialize::from_value(v)?,
                None => Vec::new(),
            },
        })
    }
}

/// Identifies a barrier site across the whole analyzed corpus.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct BarrierId(pub u32);

impl fmt::Display for BarrierId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// Location of a barrier: file + function + CFG node.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteRef {
    /// Index into the engine's file list.
    pub file: usize,
    /// File name (duplicated for self-contained reports).
    pub file_name: String,
    pub function: String,
    /// CFG node of the barrier statement.
    pub node: usize,
    pub span: Span,
    /// 1-based source line.
    pub line: u32,
}

/// A barrier occurrence with its surrounding accesses.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BarrierSite {
    pub id: BarrierId,
    pub kind: BarrierKind,
    /// Set when the barrier comes from a seqcount API call.
    pub seqcount: Option<SeqcountOp>,
    /// Set when the "barrier" is a fully-ordered atomic RMW promoted to a
    /// pairable site by [`crate::AnalysisConfig::pair_with_atomics`]; holds
    /// the callee name.
    pub from_atomic: Option<String>,
    pub site: SiteRef,
    /// All accesses in the exploration window, both sides.
    pub accesses: Vec<Access>,
    /// For seqcount barriers: the sequence-counter object the call
    /// accesses (groups the four barriers of the Figure 5 protocol).
    pub counter: Option<SharedObject>,
    /// Distance to the nearest following wake-up/IPC call within the
    /// window, if any (implicit-barrier detection, §4.2).
    pub wakeup_after: Option<u32>,
    /// Distance to the nearest *preceding* barrier-semantics call /
    /// barrier, and following one — used by the unneeded-barrier check
    /// (§5.1). `None` when nothing is adjacent.
    pub adjacent_full_barrier: Option<AdjacentBarrier>,
}

/// A barrier-semantics operation immediately adjacent to a barrier.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdjacentBarrier {
    pub side: Side,
    /// Callee name providing the barrier semantics.
    pub callee: String,
    pub span: Span,
}

impl BarrierSite {
    /// Is this usable as the write side of a pairing?
    pub fn is_write_barrier(&self) -> bool {
        match self.seqcount {
            Some(op) => op.writes_counter(),
            None => self.kind.is_write_side(),
        }
    }

    pub fn is_read_barrier(&self) -> bool {
        match self.seqcount {
            Some(op) => op.is_reader(),
            None => self.kind.is_read_side(),
        }
    }

    /// Distinct objects accessed around this barrier, with the minimum
    /// distance at which each is seen.
    pub fn objects(&self) -> Vec<(SharedObject, u32)> {
        let mut out: Vec<(SharedObject, u32)> = Vec::new();
        for a in &self.accesses {
            match out.iter_mut().find(|(o, _)| *o == a.object) {
                Some((_, d)) => *d = (*d).min(a.distance),
                None => out.push((a.object.clone(), a.distance)),
            }
        }
        out
    }

    /// Does this barrier order the two objects (one on each side)?
    pub fn orders(&self, o1: &SharedObject, o2: &SharedObject) -> bool {
        let sides = |o: &SharedObject| {
            let mut before = false;
            let mut after = false;
            for a in &self.accesses {
                if &a.object == o {
                    match a.side {
                        Side::Before => before = true,
                        Side::After => after = true,
                    }
                }
            }
            (before, after)
        };
        let (b1, a1) = sides(o1);
        let (b2, a2) = sides(o2);
        (b1 && a2) || (b2 && a1)
    }

    /// Minimum distance at which `obj` is accessed, if at all.
    pub fn distance_of(&self, obj: &SharedObject) -> Option<u32> {
        self.accesses
            .iter()
            .filter(|a| &a.object == obj)
            .map(|a| a.distance)
            .min()
    }

    /// Call chain through which `obj` is reached, when *every* access to
    /// it at this site is summary-derived (the object would be invisible
    /// without inter-procedural composition). Returns the shortest chain.
    pub fn via_of(&self, obj: &SharedObject) -> Option<&[String]> {
        let mut best: Option<&[String]> = None;
        for a in self.accesses.iter().filter(|a| &a.object == obj) {
            if a.via_calls.is_empty() {
                return None; // directly visible too — not summary-only
            }
            if best.is_none_or(|b| a.via_calls.len() < b.len()) {
                best = Some(&a.via_calls);
            }
        }
        best
    }
}

/// Why a pairing was formed (single textbook pair or a seqcount-style
/// multi-barrier group).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PairingShape {
    /// One write barrier with one read barrier (§5.2).
    Single,
    /// Writer paired with multiple readers/writers (§5.3, Figure 5).
    Multi,
}

/// A group of barriers inferred to run concurrently.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Pairing {
    /// The anchor write barrier (pairing is done from the write barrier's
    /// point of view, §4.2).
    pub writer: BarrierId,
    /// All members, including `writer`.
    pub members: Vec<BarrierId>,
    /// The shared objects the pairing was matched on.
    pub objects: Vec<SharedObject>,
    /// Product-of-distances weight (lower = closer = more confident).
    pub weight: u64,
    pub shape: PairingShape,
}

/// Why a barrier ended up unpaired.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnpairedReason {
    /// Followed by a wake-up/IPC call that acts as the implicit read
    /// barrier (§4.2) — intentionally left unpaired.
    ImplicitIpc,
    /// No barrier shares ≥ 2 ordered objects.
    NoMatch,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site_with(accesses: Vec<Access>) -> BarrierSite {
        BarrierSite {
            id: BarrierId(0),
            kind: BarrierKind::Wmb,
            seqcount: None,
            from_atomic: None,
            site: SiteRef {
                file: 0,
                file_name: "t.c".into(),
                function: "f".into(),
                node: 0,
                span: Span::DUMMY,
                line: 1,
            },
            accesses,
            counter: None,
            wakeup_after: None,
            adjacent_full_barrier: None,
        }
    }

    fn acc(strukt: &str, field: &str, kind: AccessKind, side: Side, distance: u32) -> Access {
        Access {
            object: SharedObject::new(strukt, field),
            kind,
            side,
            distance,
            span: Span::DUMMY,
            annotated: false,
            cross_function: false,
            via_calls: Vec::new(),
        }
    }

    #[test]
    fn objects_dedup_min_distance() {
        let site = site_with(vec![
            acc("s", "x", AccessKind::Write, Side::Before, 3),
            acc("s", "x", AccessKind::Read, Side::After, 1),
            acc("s", "y", AccessKind::Write, Side::Before, 2),
        ]);
        let objs = site.objects();
        assert_eq!(objs.len(), 2);
        assert_eq!(objs[0], (SharedObject::new("s", "x"), 1));
    }

    #[test]
    fn orders_requires_opposite_sides() {
        let site = site_with(vec![
            acc("s", "x", AccessKind::Write, Side::Before, 1),
            acc("s", "y", AccessKind::Write, Side::After, 1),
        ]);
        assert!(site.orders(&SharedObject::new("s", "x"), &SharedObject::new("s", "y")));

        let same_side = site_with(vec![
            acc("s", "x", AccessKind::Write, Side::Before, 1),
            acc("s", "y", AccessKind::Write, Side::Before, 2),
        ]);
        assert!(!same_side.orders(&SharedObject::new("s", "x"), &SharedObject::new("s", "y")));
    }

    #[test]
    fn via_of_reports_summary_only_objects() {
        let mut deep = acc("s", "x", AccessKind::Read, Side::After, 2);
        deep.via_calls = vec!["outer".into(), "inner".into()];
        let mut shallow = acc("s", "x", AccessKind::Read, Side::After, 3);
        shallow.via_calls = vec!["outer".into()];
        let direct = acc("s", "y", AccessKind::Write, Side::Before, 1);

        // x reached only through calls: shortest chain wins.
        let site = site_with(vec![deep.clone(), shallow, direct.clone()]);
        assert_eq!(
            site.via_of(&SharedObject::new("s", "x")),
            Some(&["outer".to_string()][..])
        );
        // y is direct: no chain.
        assert_eq!(site.via_of(&SharedObject::new("s", "y")), None);
        // A direct access to x anywhere at the site disables the chain.
        let mixed = site_with(vec![deep, acc("s", "x", AccessKind::Read, Side::After, 1)]);
        assert_eq!(mixed.via_of(&SharedObject::new("s", "x")), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            SharedObject::new("req", "len").to_string(),
            "(struct req, len)"
        );
        assert_eq!(SharedObject::global("jiffies").to_string(), "jiffies");
    }

    #[test]
    fn side_flip() {
        assert_eq!(Side::Before.flip(), Side::After);
        assert_eq!(Side::After.flip(), Side::Before);
    }
}
