//! Inter-procedural function summaries and their composition.
//!
//! Per function, [`FnSummary`] records the shared objects it reads and
//! writes (with min/max statement distance from the function entry), the
//! strongest barrier semantics observed on any path, and its plain
//! callees. Summaries are extracted per file (so the content-hash cache
//! invalidates exactly the summaries of edited files) and composed
//! corpus-wide at pairing time: the call graph is condensed into SCCs
//! (cycle-safe — recursion collapses to one composite node) and walked
//! callees-first, merging each callee's accesses into its callers up to
//! [`crate::AnalysisConfig::ipa_depth`] call edges.
//!
//! This replaces the paper's ±1-call-level window for depths ≥ 1: a
//! `smp_wmb` in `caller.c` can order a `READ_ONCE` two callee levels
//! away in another translation unit. Composition bounds at callees that
//! contain an explicit barrier (walking into them would cross a bounding
//! barrier), mirroring the intra-procedural window rules.

use crate::config::AnalysisConfig;
use crate::extract::accesses_in_node;
use crate::ir::{Access, AccessKind, SharedObject, Side};
use crate::sites::FileAnalysis;
use cfgir::{walk, CallGraph, Dir, LoweredFile, Step, TypeEnv};
use ckit::span::Span;
use kmodel::SummaryBarrier;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Version tag of the on-disk summary format, stored in the cache
/// document separately from [`crate::cache::CACHE_FORMAT_VERSION`]: bump
/// it whenever [`FnSummary`] or the extraction rules change, and warm
/// caches carrying older summaries are discarded wholesale.
pub const SUMMARY_VERSION: u32 = 1;

/// Statements explored from the function entry when summarizing, and the
/// cap on retained accesses — summaries must stay compact (they are
/// cached per file and composed corpus-wide).
const SUMMARY_WINDOW: u32 = 64;
const SUMMARY_ACCESS_CAP: usize = 64;
const COMPOSED_ACCESS_CAP: usize = 128;

/// One shared-object access visible from a function's entry.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SummaryAccess {
    pub object: SharedObject,
    pub kind: AccessKind,
    pub annotated: bool,
    /// Min/max statement distance from the function entry at which the
    /// object is accessed ("site distances" for callers composing this
    /// summary into their windows).
    pub min_dist: u32,
    pub max_dist: u32,
    pub span: Span,
}

/// A compact, composable summary of one function.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FnSummary {
    pub name: String,
    /// Shared objects read/written anywhere in the function (deduped by
    /// object + kind, distances merged).
    pub accesses: Vec<SummaryAccess>,
    /// Strongest barrier semantics on any path: `Explicit` forbids
    /// composing this function's accesses into a caller's window.
    pub barrier: SummaryBarrierTag,
    /// Plain (non-primitive) callees invoked, deduped, in call order.
    pub callees: Vec<String>,
}

/// Serializable mirror of [`kmodel::SummaryBarrier`] (kmodel stays
/// serde-free).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SummaryBarrierTag {
    None,
    Full,
    Explicit,
}

impl From<SummaryBarrier> for SummaryBarrierTag {
    fn from(b: SummaryBarrier) -> Self {
        match b {
            SummaryBarrier::None => SummaryBarrierTag::None,
            SummaryBarrier::Full => SummaryBarrierTag::Full,
            SummaryBarrier::Explicit => SummaryBarrierTag::Explicit,
        }
    }
}

impl FnSummary {
    /// May callers merge this function's accesses into their windows?
    pub fn composable(&self) -> bool {
        self.barrier != SummaryBarrierTag::Explicit
    }
}

/// A plain call observed inside a barrier's exploration window, recorded
/// during per-file extraction so the corpus-global composition pass can
/// splice summary accesses into the site without re-walking CFGs.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowCall {
    pub callee: String,
    pub side: Side,
    /// Statement distance of the call node from the barrier.
    pub distance: u32,
}

/// Extract summaries for every function of a lowered file.
pub fn extract_summaries(lowered: &LoweredFile<'_>, envs: &[TypeEnv<'_>]) -> Vec<FnSummary> {
    lowered
        .functions
        .iter()
        .enumerate()
        .map(|(fi, f)| {
            let cfg = &lowered.cfgs[fi];
            let env = &envs[fi];
            let mut barrier = SummaryBarrier::None;
            let mut callees: Vec<String> = Vec::new();
            let mut by_key: HashMap<(SharedObject, AccessKind), SummaryAccess> = HashMap::new();
            let mut order: Vec<(SharedObject, AccessKind)> = Vec::new();
            walk(cfg, cfg.entry, Dir::Fwd, SUMMARY_WINDOW, |node, dist| {
                for raw in accesses_in_node(&cfg.node(node).kind, env) {
                    let key = (raw.object.clone(), raw.kind);
                    match by_key.get_mut(&key) {
                        Some(sa) => {
                            sa.min_dist = sa.min_dist.min(dist);
                            sa.max_dist = sa.max_dist.max(dist);
                            sa.annotated |= raw.annotated;
                        }
                        None => {
                            by_key.insert(
                                key.clone(),
                                SummaryAccess {
                                    object: raw.object,
                                    kind: raw.kind,
                                    annotated: raw.annotated,
                                    min_dist: dist,
                                    max_dist: dist,
                                    span: raw.span,
                                },
                            );
                            order.push(key);
                        }
                    }
                }
                if let Some(expr) = cfg.node(node).kind.expr() {
                    expr.walk(&mut |e| {
                        if let Some(name) = e.call_name() {
                            barrier = barrier.join(kmodel::summary_barrier_of_call(name));
                            if matches!(kmodel::classify_call(name), kmodel::CallSemantics::Plain)
                                && !callees.iter().any(|c| c == name)
                            {
                                callees.push(name.to_string());
                            }
                        }
                    });
                }
                Step::Continue
            });
            let mut accesses: Vec<SummaryAccess> = order
                .into_iter()
                .filter_map(|key| by_key.remove(&key))
                .collect();
            accesses.truncate(SUMMARY_ACCESS_CAP);
            FnSummary {
                name: f.sig.name.to_string(),
                accesses,
                barrier: barrier.into(),
                callees,
            }
        })
        .collect()
}

/// One access of a *composed* summary: a callee access as seen from a
/// function, after following `depth` call edges.
#[derive(Clone, Debug)]
pub struct ComposedAccess {
    pub object: SharedObject,
    pub kind: AccessKind,
    pub annotated: bool,
    pub span: Span,
    /// Call edges between the owning function and the access (0 = the
    /// function's own access).
    pub depth: u32,
    /// Callee chain walked (outermost first); `depth` entries.
    pub via: Vec<String>,
}

/// Corpus-wide composed summaries, indexed by `(file, function name)`.
pub struct ComposedIndex {
    /// Flattened function handles: `(file index, summary)`.
    nodes: Vec<(usize, FnSummary)>,
    /// `(file, name)` -> handle; plus a global name -> handles map for
    /// cross-file resolution.
    by_file_name: HashMap<(usize, String), usize>,
    by_name: HashMap<String, Vec<usize>>,
    /// Per handle: composed accesses up to the requested depth.
    composed: Vec<Vec<ComposedAccess>>,
}

impl ComposedIndex {
    /// Build and compose summaries for the whole corpus up to `depth`
    /// call edges. `depth == 0` yields an index whose composed sets are
    /// just each function's own accesses (callers then merge nothing).
    pub fn build(files: &[std::sync::Arc<FileAnalysis>], depth: u32) -> ComposedIndex {
        Self::build_inner(files, depth, None)
    }

    /// [`ComposedIndex::build`], composing only the functions reachable
    /// within `depth` call edges from the given `(file, function)` roots
    /// — the engine passes every callee named in a barrier window.
    /// Functions outside that cone keep empty composed sets (nothing
    /// downstream asks for them; `fence_within` walks raw summaries),
    /// which keeps the pass proportional to the barrier neighborhood
    /// rather than the corpus: on a kernel-shaped tree most functions
    /// are nowhere near a barrier.
    pub fn build_rooted(
        files: &[std::sync::Arc<FileAnalysis>],
        depth: u32,
        roots: &[(usize, String)],
    ) -> ComposedIndex {
        Self::build_inner(files, depth, Some(roots))
    }

    fn build_inner(
        files: &[std::sync::Arc<FileAnalysis>],
        depth: u32,
        roots: Option<&[(usize, String)]>,
    ) -> ComposedIndex {
        let mut nodes: Vec<(usize, FnSummary)> = Vec::new();
        let mut by_file_name: HashMap<(usize, String), usize> = HashMap::new();
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        // `(position in files, summary index)` per handle, so access lists
        // — the expensive part of a summary clone — can be copied in
        // lazily, only for the handles the root cone actually composes.
        let mut origin: Vec<(usize, usize)> = Vec::new();
        for (pos, fa) in files.iter().enumerate() {
            for (si, s) in fa.summaries.iter().enumerate() {
                let h = nodes.len();
                by_file_name.insert((fa.file, s.name.clone()), h);
                by_name.entry(s.name.clone()).or_default().push(h);
                nodes.push((
                    fa.file,
                    FnSummary {
                        name: s.name.clone(),
                        accesses: Vec::new(),
                        barrier: s.barrier,
                        callees: s.callees.clone(),
                    },
                ));
                origin.push((pos, si));
            }
        }
        // Call graph over handles; edges resolved same-file first, then
        // unique global match (a name defined in several files is
        // ambiguous for a cross-file call and is skipped).
        let mut graph = CallGraph::with_nodes(nodes.len());
        for (h, &(file, ref summary)) in nodes.iter().enumerate() {
            for callee in &summary.callees {
                if let Some(&target) = by_file_name.get(&(file, callee.clone())) {
                    graph.add_call(h, target);
                } else if let Some(cands) = by_name.get(callee) {
                    if cands.len() == 1 {
                        graph.add_call(h, cands[0]);
                    }
                }
            }
        }
        let cond = graph.condense();

        // Which handles need a composed set at all? With roots given,
        // BFS `depth` call edges down from them; accesses any deeper
        // could never survive the `ipa_depth` filter at a splice site,
        // so pruned handles' sets are never observed incomplete.
        let active = match roots {
            None => vec![true; nodes.len()],
            Some(roots) => {
                let mut active = vec![false; nodes.len()];
                let mut frontier: Vec<usize> = Vec::new();
                for (file, name) in roots {
                    let target = by_file_name
                        .get(&(*file, name.clone()))
                        .copied()
                        .or_else(|| by_name.get(name).filter(|c| c.len() == 1).map(|c| c[0]));
                    if let Some(h) = target {
                        if !active[h] {
                            active[h] = true;
                            frontier.push(h);
                        }
                    }
                }
                for _ in 0..depth {
                    let mut next = Vec::new();
                    for &h in &frontier {
                        for &t in graph.callees(h) {
                            if !active[t] {
                                active[t] = true;
                                next.push(t);
                            }
                        }
                    }
                    frontier = next;
                }
                active
            }
        };
        for h in 0..nodes.len() {
            if active[h] {
                let (pos, si) = origin[h];
                nodes[h].1.accesses = files[pos].summaries[si].accesses.clone();
            }
        }

        // Callees-first over the condensation DAG. Within a cyclic SCC
        // the members' own accesses form one composite unit: each member
        // sees the union at depth 1 (further unrolling adds nothing new —
        // this is what makes recursion terminate).
        let mut composed: Vec<Vec<ComposedAccess>> = vec![Vec::new(); nodes.len()];
        for scc in cond.topo_order() {
            // Own accesses at depth 0.
            for &h in &cond.sccs[scc] {
                if !active[h] {
                    continue;
                }
                let own: Vec<ComposedAccess> = nodes[h]
                    .1
                    .accesses
                    .iter()
                    .map(|sa| ComposedAccess {
                        object: sa.object.clone(),
                        kind: sa.kind,
                        annotated: sa.annotated,
                        span: sa.span,
                        depth: 0,
                        via: Vec::new(),
                    })
                    .collect();
                composed[h] = own;
            }
            // Cross-SCC (DAG) composition: merge each callee's already
            // composed set, one call edge deeper. Callee SCCs have
            // smaller ids, so their sets are final.
            for &h in &cond.sccs[scc] {
                if !active[h] {
                    continue;
                }
                let (file, _) = nodes[h];
                let callees: Vec<String> = nodes[h].1.callees.clone();
                for callee in callees {
                    let target = by_file_name
                        .get(&(file, callee.clone()))
                        .copied()
                        .or_else(|| by_name.get(&callee).filter(|c| c.len() == 1).map(|c| c[0]));
                    let Some(t) = target else { continue };
                    if cond.scc_of[t] == scc {
                        continue; // handled by the intra-SCC union below
                    }
                    if !nodes[t].1.composable() {
                        continue;
                    }
                    let callee_set = composed[t].clone();
                    for ca in callee_set {
                        push_composed(&mut composed[h], ca, 1, &callee, depth);
                    }
                }
            }
            // Intra-SCC composition: every member of a cycle absorbs the
            // other members' composed sets (own accesses plus whatever
            // they pulled from external callees) at one extra call edge.
            // A single union pass is exact modulo distances — further
            // unrolling of the cycle adds no new objects — which is what
            // makes recursion terminate.
            if cond.cyclic[scc] {
                let members = cond.sccs[scc].clone();
                let snapshots: Vec<Vec<ComposedAccess>> =
                    members.iter().map(|&m| composed[m].clone()).collect();
                for &h in &members {
                    if !active[h] {
                        continue;
                    }
                    for (&m, snap) in members.iter().zip(&snapshots) {
                        if m == h || !nodes[m].1.composable() {
                            continue;
                        }
                        for ca in snap {
                            push_composed(&mut composed[h], ca.clone(), 1, &nodes[m].1.name, depth);
                        }
                    }
                }
            }
            for &h in &cond.sccs[scc] {
                composed[h].truncate(COMPOSED_ACCESS_CAP);
            }
        }
        ComposedIndex {
            nodes,
            by_file_name,
            by_name,
            composed,
        }
    }

    /// Resolve a call from `file` to `callee`: same-file definition
    /// first, else a unique cross-file definition.
    pub fn resolve(&self, file: usize, callee: &str) -> Option<usize> {
        self.by_file_name
            .get(&(file, callee.to_string()))
            .copied()
            .or_else(|| {
                self.by_name
                    .get(callee)
                    .filter(|c| c.len() == 1)
                    .map(|c| c[0])
            })
    }

    /// The summary of a resolved handle.
    pub fn summary(&self, handle: usize) -> &FnSummary {
        &self.nodes[handle].1
    }

    /// Composed accesses of a resolved handle.
    pub fn composed(&self, handle: usize) -> &[ComposedAccess] {
        &self.composed[handle]
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whole-corpus evidence for the missing-barrier detector: does
    /// `func` in `file` reach an explicit fence within `depth` call
    /// edges? A reader whose fence lives in a (possibly cross-file)
    /// callee is not fence-less and must not be reported.
    pub fn fence_within(&self, file: usize, func: &str, depth: u32) -> bool {
        let Some(start) = self.by_file_name.get(&(file, func.to_string())).copied() else {
            return false;
        };
        let mut seen = vec![false; self.nodes.len()];
        seen[start] = true;
        let mut frontier = vec![start];
        for _ in 0..=depth {
            let mut next = Vec::new();
            for &h in &frontier {
                if self.nodes[h].1.barrier == SummaryBarrierTag::Explicit {
                    return true;
                }
                for callee in &self.nodes[h].1.callees {
                    if let Some(t) = self.resolve(self.nodes[h].0, callee) {
                        if !seen[t] {
                            seen[t] = true;
                            next.push(t);
                        }
                    }
                }
            }
            frontier = next;
        }
        false
    }
}

/// Merge one callee access into a caller's composed set: bump the depth,
/// prepend the callee to the chain, dedup by (object, kind) keeping the
/// shallowest occurrence. Accesses deeper than `max_depth` total call
/// edges are dropped — callers filter again by the live `ipa_depth`, but
/// bounding here keeps composed sets small.
fn push_composed(
    set: &mut Vec<ComposedAccess>,
    ca: ComposedAccess,
    edges: u32,
    callee: &str,
    max_depth: u32,
) {
    let depth = ca.depth + edges;
    if depth > max_depth {
        return;
    }
    let mut via = Vec::with_capacity(ca.via.len() + 1);
    via.push(callee.to_string());
    via.extend(ca.via.iter().cloned());
    match set
        .iter_mut()
        .find(|e| e.object == ca.object && e.kind == ca.kind)
    {
        Some(existing) => {
            if depth < existing.depth {
                existing.depth = depth;
                existing.via = via;
                existing.span = ca.span;
                existing.annotated = ca.annotated;
            }
        }
        None => set.push(ComposedAccess {
            object: ca.object,
            kind: ca.kind,
            annotated: ca.annotated,
            span: ca.span,
            depth,
            via,
        }),
    }
}

/// Splice composed callee accesses into every barrier site whose window
/// contains a call to a summarized function. Runs corpus-globally after
/// per-file extraction; a no-op at `ipa_depth == 0`. Returns
/// `(sites touched, accesses added)`.
pub fn augment_sites(
    files: &mut [std::sync::Arc<FileAnalysis>],
    index: &ComposedIndex,
    config: &AnalysisConfig,
) -> (u64, u64) {
    if config.ipa_depth == 0 {
        return (0, 0);
    }
    let mut sites_touched = 0u64;
    let mut added_total = 0u64;
    for fa in files.iter_mut() {
        let file = fa.file;
        for si in 0..fa.sites.len() {
            let calls = fa.window_calls.get(si).cloned().unwrap_or_default();
            if calls.is_empty() {
                continue;
            }
            let mut added = 0u64;
            for call in &calls {
                let Some(handle) = index.resolve(file, &call.callee) else {
                    continue;
                };
                if !index.summary(handle).composable() {
                    continue;
                }
                for ca in index.composed(handle) {
                    // `ca.depth` edges inside the callee, +1 for the call
                    // itself: total must fit the configured depth.
                    if ca.depth + 1 > config.ipa_depth {
                        continue;
                    }
                    if config.is_generic_type(&ca.object.strukt) {
                        continue;
                    }
                    // Copy-on-write: the first mutation clones the
                    // cache-shared analysis; after that the Arc is unique
                    // and `make_mut` is a plain `get_mut`.
                    let site = &mut std::sync::Arc::make_mut(fa).sites[si];
                    // Skip objects the site already sees on this side with
                    // this kind (notably the same-file ±1 expansion).
                    if site
                        .accesses
                        .iter()
                        .any(|a| a.object == ca.object && a.kind == ca.kind && a.side == call.side)
                    {
                        continue;
                    }
                    let mut via = Vec::with_capacity(ca.via.len() + 1);
                    via.push(call.callee.clone());
                    via.extend(ca.via.iter().cloned());
                    site.accesses.push(Access {
                        object: ca.object.clone(),
                        kind: ca.kind,
                        side: call.side,
                        // One statement per call edge below the call site:
                        // mirrors what inlining the chain would cost.
                        distance: call.distance.saturating_add(ca.depth),
                        span: ca.span,
                        annotated: ca.annotated,
                        cross_function: true,
                        via_calls: via,
                    });
                    added += 1;
                }
            }
            if added > 0 {
                sites_touched += 1;
                added_total += added;
            }
        }
    }
    (sites_touched, added_total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sites::analyze_file;

    fn analyze_named(name: &str, src: &str) -> FileAnalysis {
        let parsed = ckit::parse_string(name, src).unwrap();
        assert!(parsed.errors.is_empty(), "{:?}", parsed.errors);
        analyze_file(0, &parsed, &AnalysisConfig::default())
    }

    #[test]
    fn summaries_extracted_for_every_function() {
        let fa = analyze_named(
            "t.c",
            r#"
struct s { int a; int b; };
static void leaf(struct s *p) { p->a = 1; }
void mid(struct s *p) { leaf(p); p->b = 2; }
void top(struct s *p) { mid(p); smp_wmb(); }
"#,
        );
        assert_eq!(fa.summaries.len(), 3);
        let leaf = &fa.summaries[0];
        assert_eq!(leaf.name, "leaf");
        assert_eq!(leaf.barrier, SummaryBarrierTag::None);
        assert!(leaf
            .accesses
            .iter()
            .any(|a| a.object == SharedObject::new("s", "a") && a.kind == AccessKind::Write));
        let mid = &fa.summaries[1];
        assert_eq!(mid.callees, vec!["leaf".to_string()]);
        let top = &fa.summaries[2];
        assert_eq!(top.barrier, SummaryBarrierTag::Explicit);
        assert!(!top.composable());
    }

    #[test]
    fn summary_barrier_ranks_full_atomics() {
        let fa = analyze_named(
            "t.c",
            r#"
struct s { atomic_t r; };
void f(struct s *p) { atomic_inc_and_test(&p->r); }
void g(struct s *p) { atomic_inc(&p->r); }
"#,
        );
        assert_eq!(fa.summaries[0].barrier, SummaryBarrierTag::Full);
        assert!(fa.summaries[0].composable());
        assert_eq!(fa.summaries[1].barrier, SummaryBarrierTag::None);
    }

    #[test]
    fn composition_reaches_two_levels() {
        let caller = analyze_named(
            "caller.c",
            r#"
struct s { int a; int flag; };
void pub(struct s *p) { fill(p); smp_wmb(); p->flag = 1; }
"#,
        );
        let mid = analyze_named(
            "mid.c",
            r#"
struct s { int a; int flag; };
void fill(struct s *p) { deep_fill(p); }
"#,
        );
        let leaf = analyze_named(
            "leaf.c",
            r#"
struct s { int a; int flag; };
void deep_fill(struct s *p) { p->a = 7; }
"#,
        );
        let mut files = vec![caller, mid, leaf];
        for (i, f) in files.iter_mut().enumerate() {
            f.file = i;
        }
        let files: Vec<std::sync::Arc<FileAnalysis>> =
            files.into_iter().map(std::sync::Arc::new).collect();
        let index = ComposedIndex::build(&files, 2);
        let h = index.resolve(0, "fill").expect("fill resolved cross-file");
        let composed = index.composed(h);
        let a = composed
            .iter()
            .find(|c| c.object == SharedObject::new("s", "a"))
            .expect("deep access composed");
        assert_eq!(a.depth, 1);
        assert_eq!(a.via, vec!["deep_fill".to_string()]);
    }

    #[test]
    fn composition_stops_at_callee_barriers() {
        let a = analyze_named(
            "a.c",
            r#"
struct s { int x; };
void outer(struct s *p) { fenced(p); }
"#,
        );
        let b = analyze_named(
            "b.c",
            r#"
struct s { int x; };
void fenced(struct s *p) { smp_mb(); p->x = 1; }
"#,
        );
        let mut files = vec![a, b];
        for (i, f) in files.iter_mut().enumerate() {
            f.file = i;
        }
        let files: Vec<std::sync::Arc<FileAnalysis>> =
            files.into_iter().map(std::sync::Arc::new).collect();
        let index = ComposedIndex::build(&files, 4);
        let h = index.resolve(0, "outer").unwrap();
        // outer's composed set must not contain fenced's access.
        assert!(index
            .composed(h)
            .iter()
            .all(|c| c.object != SharedObject::new("s", "x") || c.depth == 0));
    }

    #[test]
    fn self_recursion_terminates_and_composes() {
        let fa = analyze_named(
            "r.c",
            r#"
struct s { int x; };
void rec(struct s *p, int n) { if (n) rec(p, n - 1); p->x = 1; }
void user(struct s *p) { rec(p, 3); }
"#,
        );
        let mut files = vec![fa];
        files[0].file = 0;
        let files: Vec<std::sync::Arc<FileAnalysis>> =
            files.into_iter().map(std::sync::Arc::new).collect();
        let index = ComposedIndex::build(&files, 8);
        let h = index.resolve(0, "rec").unwrap();
        // One access, despite the self-call (SCC collapsed).
        let xs: Vec<_> = index
            .composed(h)
            .iter()
            .filter(|c| c.object == SharedObject::new("s", "x"))
            .collect();
        assert_eq!(xs.len(), 1);
        let hu = index.resolve(0, "user").unwrap();
        let x = index
            .composed(hu)
            .iter()
            .find(|c| c.object == SharedObject::new("s", "x"))
            .unwrap();
        assert_eq!(x.depth, 1);
        assert_eq!(x.via, vec!["rec".to_string()]);
    }

    #[test]
    fn mutual_recursion_terminates() {
        let fa = analyze_named(
            "m.c",
            r#"
struct s { int x; int y; };
void ping(struct s *p, int n) { if (n) pong(p, n - 1); p->x = 1; }
void pong(struct s *p, int n) { if (n) ping(p, n - 1); p->y = 1; }
"#,
        );
        let mut files = vec![fa];
        files[0].file = 0;
        let files: Vec<std::sync::Arc<FileAnalysis>> =
            files.into_iter().map(std::sync::Arc::new).collect();
        let index = ComposedIndex::build(&files, 8);
        let h = index.resolve(0, "ping").unwrap();
        let objs: Vec<_> = index.composed(h).iter().map(|c| &c.object).collect();
        assert!(objs.contains(&&SharedObject::new("s", "x")));
        assert!(objs.contains(&&SharedObject::new("s", "y")));
    }

    #[test]
    fn ambiguous_cross_file_names_are_skipped() {
        let a = analyze_named(
            "a.c",
            "struct s { int x; };\nvoid helper(struct s*p){p->x=1;}",
        );
        let b = analyze_named(
            "b.c",
            "struct s { int y; };\nvoid helper(struct s*p){p->y=1;}",
        );
        let c = analyze_named(
            "c.c",
            "struct s { int z; };\nvoid top(struct s*p){helper(p);}",
        );
        let mut files = vec![a, b, c];
        for (i, f) in files.iter_mut().enumerate() {
            f.file = i;
        }
        let files: Vec<std::sync::Arc<FileAnalysis>> =
            files.into_iter().map(std::sync::Arc::new).collect();
        let index = ComposedIndex::build(&files, 2);
        assert!(index.resolve(2, "helper").is_none());
        let h = index.resolve(2, "top").unwrap();
        assert_eq!(index.composed(h).len(), 0);
    }
}
