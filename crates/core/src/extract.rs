//! Extraction of shared-object accesses from expressions.
//!
//! Turns every structure-field access in an expression into a
//! [`SharedObject`] + read/write classification, resolving the struct
//! identity through the typing environment (paper §3: "we rely on data
//! types and field names to distinguish objects").

use crate::ir::{AccessKind, SharedObject};
use cfgir::TypeEnv;
use ckit::ast::{Expr, ExprKind, PostOp, UnOp};
use ckit::span::Span;
use kmodel::{CallSemantics, OnceKind};

/// An access found in a single expression (no barrier-relative data yet).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawAccess {
    pub object: SharedObject,
    pub kind: AccessKind,
    pub span: Span,
    /// Wrapped in `READ_ONCE`/`WRITE_ONCE`.
    pub annotated: bool,
}

/// Extract all shared-object accesses in `expr`.
pub fn accesses_in_expr(expr: &Expr, env: &TypeEnv<'_>) -> Vec<RawAccess> {
    let mut out = Vec::new();
    collect(expr, env, Ctx::Read, false, &mut out);
    out
}

/// Calls in `expr` that are *not* concurrency primitives (candidates for
/// callee expansion), with their callee names.
pub fn plain_calls_in_expr(expr: &Expr) -> Vec<(String, Span)> {
    let mut out = Vec::new();
    expr.walk(&mut |e| {
        if let Some(name) = e.call_name() {
            if matches!(kmodel::classify_call(name), CallSemantics::Plain) {
                out.push((name.to_string(), e.span));
            }
        }
    });
    out
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Ctx {
    Read,
    Write,
    ReadWrite,
}

impl Ctx {
    fn kinds(self) -> &'static [AccessKind] {
        match self {
            Ctx::Read => &[AccessKind::Read],
            Ctx::Write => &[AccessKind::Write],
            Ctx::ReadWrite => &[AccessKind::Read, AccessKind::Write],
        }
    }
}

fn collect(e: &Expr, env: &TypeEnv<'_>, ctx: Ctx, annotated: bool, out: &mut Vec<RawAccess>) {
    match &e.kind {
        ExprKind::Ident(name) => {
            // A bare identifier is a shared object only if it's a global
            // variable (not a local, not an enum constant, not a function).
            if env.vars.contains_key(name.as_str())
                || env.file.enum_consts.contains_key(name.as_str())
                || env.file.functions.contains_key(name.as_str())
            {
                return;
            }
            if env.file.globals.contains_key(name.as_str()) {
                for &k in ctx.kinds() {
                    out.push(RawAccess {
                        object: SharedObject::global(name.to_string()),
                        kind: k,
                        span: e.span,
                        annotated,
                    });
                }
            }
        }
        ExprKind::Member { base, field, .. } => {
            if let Some(strukt) = env.member_struct(base) {
                for &k in ctx.kinds() {
                    out.push(RawAccess {
                        object: SharedObject::new(strukt.clone(), field.clone()),
                        kind: k,
                        span: e.span,
                        annotated,
                    });
                }
            }
            // The base pointer itself is read.
            collect(base, env, Ctx::Read, false, out);
        }
        ExprKind::Index(base, index) => {
            // Writing `a->arr[i]` writes the `arr` field's memory.
            collect(base, env, ctx, annotated, out);
            collect(index, env, Ctx::Read, false, out);
        }
        ExprKind::Unary(UnOp::Deref, inner) => {
            // `*p = v` writes through p; p itself is read.
            collect(inner, env, ctx_deref(ctx), annotated, out);
        }
        ExprKind::Unary(UnOp::Addr, inner) => {
            // Taking an address is not an access; but `&a->x` names the
            // object for primitives, which handle it themselves. In plain
            // context, no access happens.
            if let ExprKind::Member { base, .. } = &inner.kind {
                collect(base, env, Ctx::Read, false, out);
            } else {
                // &arr[i]: index read
                if let ExprKind::Index(b, i) = &inner.kind {
                    collect(b, env, Ctx::Read, false, out);
                    collect(i, env, Ctx::Read, false, out);
                }
            }
        }
        ExprKind::Unary(UnOp::PreInc | UnOp::PreDec, inner) => {
            collect(inner, env, Ctx::ReadWrite, annotated, out);
        }
        ExprKind::Unary(_, inner) => collect(inner, env, Ctx::Read, false, out),
        ExprKind::Post(PostOp::Inc | PostOp::Dec, inner) => {
            collect(inner, env, Ctx::ReadWrite, annotated, out);
        }
        ExprKind::Assign(op, lhs, rhs) => {
            let lhs_ctx = if *op == ckit::ast::AssignOp::Assign {
                Ctx::Write
            } else {
                Ctx::ReadWrite // compound assignment reads then writes
            };
            collect(lhs, env, lhs_ctx, annotated, out);
            collect(rhs, env, Ctx::Read, false, out);
        }
        ExprKind::Binary(_, a, b) | ExprKind::Comma(a, b) => {
            collect(a, env, Ctx::Read, false, out);
            collect(b, env, Ctx::Read, false, out);
        }
        ExprKind::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            collect(cond, env, Ctx::Read, false, out);
            collect(then_expr, env, ctx, annotated, out);
            collect(else_expr, env, ctx, annotated, out);
        }
        ExprKind::Call { callee, args } => {
            let name = callee.as_ident().unwrap_or("");
            collect_call(name, args, e.span, env, out);
        }
        ExprKind::Cast(_, inner) => collect(inner, env, ctx, annotated, out),
        ExprKind::SizeofExpr(_) | ExprKind::SizeofType(_) => {
            // sizeof does not evaluate its operand.
        }
        ExprKind::InitList(inits) => {
            for i in inits {
                collect(&i.value, env, Ctx::Read, false, out);
            }
        }
        ExprKind::StmtExpr(stmts) => {
            for s in stmts {
                collect_stmt(s, env, out);
            }
        }
        ExprKind::IntLit { .. }
        | ExprKind::FloatLit(_)
        | ExprKind::StrLit(_)
        | ExprKind::CharLit(_) => {}
    }
}

/// Extract accesses from the expressions of a CFG node.
pub fn accesses_in_node(kind: &cfgir::NodeKind, env: &TypeEnv<'_>) -> Vec<RawAccess> {
    let mut out = Vec::new();
    match kind {
        cfgir::NodeKind::Expr(e) | cfgir::NodeKind::Cond(e) => {
            collect(e, env, Ctx::Read, false, &mut out)
        }
        cfgir::NodeKind::Return(Some(e)) => collect(e, env, Ctx::Read, false, &mut out),
        cfgir::NodeKind::Decl(d) => {
            for decl in &d.decls {
                if let Some(init) = &decl.init {
                    collect(init, env, Ctx::Read, false, &mut out);
                }
            }
        }
        _ => {}
    }
    out
}

fn collect_stmt(s: &ckit::ast::Stmt, env: &TypeEnv<'_>, out: &mut Vec<RawAccess>) {
    use ckit::ast::StmtKind;
    match &s.kind {
        StmtKind::Expr(e) => collect(e, env, Ctx::Read, false, out),
        StmtKind::Decl(d) => {
            for decl in &d.decls {
                if let Some(init) = &decl.init {
                    collect(init, env, Ctx::Read, false, out);
                }
            }
        }
        StmtKind::Block(stmts) => {
            for s in stmts {
                collect_stmt(s, env, out);
            }
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            collect(cond, env, Ctx::Read, false, out);
            collect_stmt(then_branch, env, out);
            if let Some(e) = else_branch {
                collect_stmt(e, env, out);
            }
        }
        StmtKind::Return(Some(e)) => collect(e, env, Ctx::Read, false, out),
        _ => {}
    }
}

fn ctx_deref(ctx: Ctx) -> Ctx {
    // Writing through `*p` reads p. The pointed-to object's identity is
    // lost unless p is itself a member (handled recursively as a read).
    match ctx {
        Ctx::Write | Ctx::ReadWrite => Ctx::Read,
        Ctx::Read => Ctx::Read,
    }
}

/// Accesses performed by a call, interpreting kernel primitives.
fn collect_call(
    name: &str,
    args: &[Expr],
    call_span: Span,
    env: &TypeEnv<'_>,
    out: &mut Vec<RawAccess>,
) {
    match kmodel::classify_call(name) {
        CallSemantics::Once(kind) => {
            // READ_ONCE(x) / WRITE_ONCE(x, v)
            if let Some(target) = args.first() {
                let ctx = match kind {
                    OnceKind::Read => Ctx::Read,
                    OnceKind::Write => Ctx::Write,
                };
                collect(target, env, ctx, true, out);
            }
            if let (OnceKind::Write, Some(v)) = (kind, args.get(1)) {
                collect(v, env, Ctx::Read, false, out);
            }
        }
        CallSemantics::Barrier(kind) => {
            // smp_store_release(&x, v) / smp_load_acquire(&x) /
            // smp_store_mb(&x, v): the primitive accesses its target.
            use kmodel::ImpliedAccess;
            match kind.implied_access() {
                ImpliedAccess::StoreBefore | ImpliedAccess::StoreAfter => {
                    if let Some(t) = args.first() {
                        collect_target(t, env, Ctx::Write, call_span, out);
                    }
                    if let Some(v) = args.get(1) {
                        collect(v, env, Ctx::Read, false, out);
                    }
                }
                ImpliedAccess::LoadBefore => {
                    if let Some(t) = args.first() {
                        collect_target(t, env, Ctx::Read, call_span, out);
                    }
                }
                ImpliedAccess::None => {}
            }
        }
        CallSemantics::Atomic(sem) => {
            // atomic_*(…, &target) / bitops(nr, &addr): conventionally the
            // *last* pointer argument is the target.
            let ctx = match (sem.reads, sem.writes) {
                (true, true) => Ctx::ReadWrite,
                (false, true) => Ctx::Write,
                _ => Ctx::Read,
            };
            if let Some(target) = atomic_target(args) {
                collect_target(target, env, ctx, call_span, out);
            }
            for a in args {
                if atomic_target(args).map(|t| std::ptr::eq(t, a)) != Some(true) {
                    collect(a, env, Ctx::Read, false, out);
                }
            }
        }
        CallSemantics::Seqcount(op) => {
            // The counter access.
            let ctx = if op.writes_counter() {
                Ctx::ReadWrite
            } else {
                Ctx::Read
            };
            if let Some(t) = args.first() {
                collect_target(t, env, ctx, call_span, out);
            }
        }
        CallSemantics::WakeUp | CallSemantics::Plain => {
            for a in args {
                collect(a, env, Ctx::Read, false, out);
            }
        }
    }
}

/// The conventional target argument of an atomic/bitop: the last argument
/// that syntactically looks like an address (`&x`) or a pointer variable.
fn atomic_target(args: &[Expr]) -> Option<&Expr> {
    args.iter()
        .rev()
        .find(|a| matches!(a.kind, ExprKind::Unary(UnOp::Addr, _)))
        .or_else(|| args.last())
}

/// Resolve a primitive's target argument (typically `&a->x` or `&counter`)
/// to an access on the pointed-at object.
fn collect_target(
    target: &Expr,
    env: &TypeEnv<'_>,
    ctx: Ctx,
    call_span: Span,
    out: &mut Vec<RawAccess>,
) {
    let inner = match &target.kind {
        ExprKind::Unary(UnOp::Addr, inner) => inner,
        _ => target,
    };
    match &inner.kind {
        ExprKind::Member { base, field, .. } => {
            if let Some(strukt) = env.member_struct(base) {
                for &k in ctx.kinds() {
                    out.push(RawAccess {
                        object: SharedObject::new(strukt.clone(), field.clone()),
                        kind: k,
                        span: inner.span,
                        annotated: false,
                    });
                }
            }
            collect(base, env, Ctx::Read, false, out);
        }
        ExprKind::Ident(name) => {
            // Global counters (`static seqcount_t seq;`) and locals that
            // alias per-cpu counters. A local pointer to a seqcount is
            // typed; name the object by its type when we can.
            if env.file.globals.contains_key(name.as_str()) {
                for &k in ctx.kinds() {
                    out.push(RawAccess {
                        object: SharedObject::global(name.to_string()),
                        kind: k,
                        span: inner.span,
                        annotated: false,
                    });
                }
            } else if let Some(ty) = env.vars.get(name.as_str()) {
                // Local pointer/variable: identify the object by its type
                // name (e.g. `seqcount_t`) so reader and writer match.
                let tyname = type_object_name(ty);
                if let Some(tyname) = tyname {
                    for &k in ctx.kinds() {
                        out.push(RawAccess {
                            object: SharedObject::new("<typed>", tyname.clone()),
                            kind: k,
                            span: inner.span,
                            annotated: false,
                        });
                    }
                }
            }
            let _ = call_span;
        }
        // `&per_cpu(xt_recseq, cpu)`-style: name the object after the
        // first argument symbol.
        ExprKind::Call { args, .. } => {
            if let Some(first) = args.first() {
                if let Some(sym) = first.as_ident() {
                    for &k in ctx.kinds() {
                        out.push(RawAccess {
                            object: SharedObject::global(sym.to_string()),
                            kind: k,
                            span: inner.span,
                            annotated: false,
                        });
                    }
                }
            }
        }
        _ => collect(inner, env, ctx, false, out),
    }
}

/// Name a type for object identity of non-member targets.
fn type_object_name(ty: &ckit::ast::Type) -> Option<String> {
    use ckit::ast::Type;
    match ty {
        Type::Named(n) => Some(n.to_string()),
        Type::Ptr(inner) | Type::Array(inner, _) => type_object_name(inner),
        Type::Struct { name, .. } if !name.is_empty() => Some(name.to_string()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfgir::{FileSymbols, TypeEnv};
    use ckit::parse_string;

    /// Extract accesses from the body of the *last* function in `src`,
    /// statement by statement.
    fn extract(src: &str) -> Vec<(String, AccessKind, bool)> {
        let out = parse_string("t.c", src).unwrap();
        assert!(out.errors.is_empty(), "{:?}", out.errors);
        let sym = FileSymbols::build(&out.unit);
        let f = out.unit.functions().last().unwrap();
        let env = TypeEnv::for_function(&sym, f);
        let mut result = Vec::new();
        for s in &f.body {
            let mut raw = Vec::new();
            collect_stmt(s, &env, &mut raw);
            for r in raw {
                result.push((r.object.to_string(), r.kind, r.annotated));
            }
        }
        result
    }

    #[test]
    fn plain_write() {
        let acc = extract("struct s { int x; };\nvoid f(struct s *p) { p->x = 1; }");
        assert_eq!(
            acc,
            vec![("(struct s, x)".into(), AccessKind::Write, false)]
        );
    }

    #[test]
    fn plain_read() {
        let acc = extract("struct s { int x; };\nint f(struct s *p) { return p->x; }");
        assert_eq!(acc, vec![("(struct s, x)".into(), AccessKind::Read, false)]);
    }

    #[test]
    fn compound_assign_reads_and_writes() {
        let acc = extract("struct s { int x; };\nvoid f(struct s *p) { p->x += 2; }");
        assert_eq!(
            acc,
            vec![
                ("(struct s, x)".into(), AccessKind::Read, false),
                ("(struct s, x)".into(), AccessKind::Write, false),
            ]
        );
    }

    #[test]
    fn increment_is_read_write() {
        let acc = extract("struct s { int n; };\nvoid f(struct s *p) { p->n++; }");
        assert_eq!(acc.len(), 2);
        assert!(acc.iter().any(|a| a.1 == AccessKind::Read));
        assert!(acc.iter().any(|a| a.1 == AccessKind::Write));
    }

    #[test]
    fn array_element_write_hits_field() {
        let src = "struct sock { int id; };\nstruct reuse { struct sock *socks[8]; int num; };\nvoid f(struct reuse *r, struct sock *sk) { r->socks[r->num] = sk; }";
        let acc = extract(src);
        assert!(acc.contains(&("(struct reuse, socks)".into(), AccessKind::Write, false)));
        assert!(acc.contains(&("(struct reuse, num)".into(), AccessKind::Read, false)));
    }

    #[test]
    fn rhs_member_reads() {
        let src = "struct req { int a; int b; };\nvoid f(struct req *r) { r->a = r->b + 1; }";
        let acc = extract(src);
        assert!(acc.contains(&("(struct req, a)".into(), AccessKind::Write, false)));
        assert!(acc.contains(&("(struct req, b)".into(), AccessKind::Read, false)));
    }

    #[test]
    fn condition_reads() {
        let src = "struct s { int init; int y; };\nvoid f(struct s *a) { if (!a->init) return; a->y = 2; }";
        let acc = extract(src);
        assert_eq!(acc[0], ("(struct s, init)".into(), AccessKind::Read, false));
    }

    #[test]
    fn read_once_is_annotated() {
        let src = "struct s { int x; };\nvoid f(struct s *p) { int v = READ_ONCE(p->x); }";
        let acc = extract(src);
        assert_eq!(acc, vec![("(struct s, x)".into(), AccessKind::Read, true)]);
    }

    #[test]
    fn write_once_is_annotated_write() {
        let src = "struct s { int x; };\nvoid f(struct s *p) { WRITE_ONCE(p->x, 1); }";
        let acc = extract(src);
        assert_eq!(acc, vec![("(struct s, x)".into(), AccessKind::Write, true)]);
    }

    #[test]
    fn store_release_writes_target() {
        let src =
            "struct s { int flag; };\nvoid f(struct s *p) { smp_store_release(&p->flag, 1); }";
        let acc = extract(src);
        assert_eq!(
            acc,
            vec![("(struct s, flag)".into(), AccessKind::Write, false)]
        );
    }

    #[test]
    fn load_acquire_reads_target() {
        let src =
            "struct s { int flag; };\nint f(struct s *p) { return smp_load_acquire(&p->flag); }";
        let acc = extract(src);
        assert_eq!(
            acc,
            vec![("(struct s, flag)".into(), AccessKind::Read, false)]
        );
    }

    #[test]
    fn atomic_inc_member_target() {
        let src = "struct s { atomic_t refs; };\nvoid f(struct s *p) { atomic_inc(&p->refs); }";
        let acc = extract(src);
        assert!(acc.contains(&("(struct s, refs)".into(), AccessKind::Write, false)));
        assert!(acc.contains(&("(struct s, refs)".into(), AccessKind::Read, false)));
    }

    #[test]
    fn set_bit_targets_last_addr_arg() {
        let src =
            "struct s { unsigned long state; };\nvoid f(struct s *p) { set_bit(3, &p->state); }";
        let acc = extract(src);
        assert!(acc.contains(&("(struct s, state)".into(), AccessKind::Write, false)));
    }

    #[test]
    fn seqcount_global_counter() {
        let src = "static seqcount_t seq;\nstruct d { int v; };\nvoid f(struct d *p) { write_seqcount_begin(&seq); p->v = 1; write_seqcount_end(&seq); }";
        let acc = extract(src);
        assert!(acc.contains(&("seq".into(), AccessKind::Write, false)));
        assert!(acc.contains(&("seq".into(), AccessKind::Read, false)));
        assert!(acc.contains(&("(struct d, v)".into(), AccessKind::Write, false)));
    }

    #[test]
    fn seqcount_local_pointer_uses_type_identity() {
        let src = "void f(void) { seqcount_t *s = get(); int v = read_seqcount_begin(s); }";
        let acc = extract(src);
        assert!(acc.contains(&(
            "(struct <typed>, seqcount_t)".into(),
            AccessKind::Read,
            false
        )));
    }

    #[test]
    fn global_variable_access() {
        let src = "static int state;\nvoid f(void) { state = 1; }";
        let acc = extract(src);
        assert_eq!(acc, vec![("state".into(), AccessKind::Write, false)]);
    }

    #[test]
    fn locals_are_not_shared_objects() {
        let src = "void f(void) { int local = 0; local = 1; }";
        let acc = extract(src);
        assert!(acc.is_empty());
    }

    #[test]
    fn sizeof_does_not_access() {
        let src = "struct s { int x; };\nvoid f(struct s *p) { int n = sizeof(p->x); }";
        let acc = extract(src);
        assert!(acc.is_empty());
    }

    #[test]
    fn call_args_read() {
        let src = "struct s { int x; };\nvoid f(struct s *p) { consume(p->x); }";
        let acc = extract(src);
        assert_eq!(acc, vec![("(struct s, x)".into(), AccessKind::Read, false)]);
    }

    #[test]
    fn nested_member_chain_yields_both_tuples() {
        let src = "struct inner { int c; };\nstruct outer { struct inner b; };\nvoid f(struct outer *a) { int v = a->b.c; }";
        let acc = extract(src);
        assert!(acc.contains(&("(struct inner, c)".into(), AccessKind::Read, false)));
        assert!(acc.contains(&("(struct outer, b)".into(), AccessKind::Read, false)));
    }

    #[test]
    fn plain_calls_found() {
        let out = parse_string("t.c", "void f(void) { helper(1); smp_wmb(); }").unwrap();
        let f = out.unit.functions().next().unwrap();
        let mut calls = Vec::new();
        for s in &f.body {
            s.walk_exprs(&mut |e| {
                if let ExprKind::Call { .. } = e.kind {
                    calls.extend(plain_calls_in_expr(e));
                }
            });
        }
        let names: Vec<_> = calls.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"helper"));
        assert!(!names.contains(&"smp_wmb"));
    }
}
