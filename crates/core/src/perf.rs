//! The performance ledger: `.ofence/perf.jsonl`.
//!
//! Where [`crate::history`] records *what* a run found (findings with
//! stable fingerprints, for diffing), this ledger records *how fast* it
//! ran: phase timings, throughput, cache economics, and worker
//! utilization. Every `analyze` run, every `ofence watch` iteration, and
//! the cache benchmark (`--perf-ledger`) append one [`PerfRecord`] line.
//!
//! `ofence perf` reads the ledger back as a trend table, and
//! `ofence perf --gate --max-regress-pct <p>` turns it into a CI
//! regression gate: the newest record is compared against the median
//! elapsed time of earlier *comparable* records (same config
//! fingerprint, same corpus size, same cold/warm mode), and the command
//! exits non-zero if it is more than `p` percent slower.
//!
//! Same file format and robustness rules as the history ledger: one JSON
//! object per line, corrupt lines skipped on load, appends never rewrite
//! existing lines.

use crate::engine::AnalysisResult;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

/// Ledger file name inside the history directory (next to
/// [`crate::history::HISTORY_FILE_NAME`]).
pub const PERF_FILE_NAME: &str = "perf.jsonl";

/// Request ledger file name inside the history directory: one line per
/// completed daemon request (`ofence perf --requests` reads it back).
pub const REQUESTS_FILE_NAME: &str = "requests.jsonl";

/// One request ledger line: who asked, what happened, how long it took.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RequestRecord {
    /// The id echoed in the wire response (client-supplied or
    /// server-assigned).
    pub request_id: String,
    /// Milliseconds since the Unix epoch at record time.
    pub timestamp_ms: u64,
    pub method: String,
    pub ok: bool,
    pub latency_us: u64,
    /// True when the request joined another request's in-flight run.
    pub coalesced: bool,
    /// The analysis run the request returned, if it reached one.
    pub run_id: Option<String>,
}

/// Build the ledger record of one completed daemon request.
pub fn request_record_of(
    request_id: &str,
    method: &str,
    ok: bool,
    latency_us: u64,
    coalesced: bool,
    run_id: Option<String>,
) -> RequestRecord {
    let timestamp_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    RequestRecord {
        request_id: request_id.to_string(),
        timestamp_ms,
        method: method.to_string(),
        ok,
        latency_us,
        coalesced,
        run_id,
    }
}

/// Path of the request ledger file inside `dir`.
pub fn requests_path(dir: &Path) -> PathBuf {
    dir.join(REQUESTS_FILE_NAME)
}

/// Append one request record to the ledger in `dir`, through the same
/// rotation-safe process-global appender registry as the perf ledger.
pub fn append_request(dir: &Path, record: &RequestRecord) -> Result<(), String> {
    let mut line =
        serde_json::to_string(record).map_err(|e| format!("serialize request record: {e}"))?;
    line.push('\n');
    appender_for(&requests_path(dir))?.append(line.as_bytes())
}

/// Load every parseable request record from `dir`'s ledger, oldest
/// first. Corrupt lines are counted, not fatal.
pub fn load_requests(dir: &Path) -> Result<(Vec<RequestRecord>, usize), String> {
    load_requests_file(&requests_path(dir))
}

/// Load request records from an explicit ledger file (see
/// [`load_requests`]).
pub fn load_requests_file(path: &Path) -> Result<(Vec<RequestRecord>, usize), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let mut records = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<RequestRecord>(line) {
            Ok(r) => records.push(r),
            Err(_) => skipped += 1,
        }
    }
    Ok((records, skipped))
}

/// Render per-method latency trends over the last `last` request records
/// as a fixed-width table. Used by `ofence perf --requests`.
pub fn render_request_trends(records: &[RequestRecord], last: usize) -> String {
    let mut out = String::new();
    if records.is_empty() {
        out.push_str("request ledger is empty\n");
        return out;
    }
    let start = records.len().saturating_sub(last);
    let window = &records[start..];
    let mut by_method: BTreeMap<&str, Vec<&RequestRecord>> = BTreeMap::new();
    for r in window {
        by_method.entry(r.method.as_str()).or_default().push(r);
    }
    out.push_str(&format!(
        "{:<14} {:>6} {:>6} {:>9} {:>9} {:>9} {:>9}\n",
        "method", "count", "errors", "coalesced", "p50_us", "p95_us", "p99_us"
    ));
    for (method, rs) in &by_method {
        let mut latencies: Vec<u64> = rs.iter().map(|r| r.latency_us).collect();
        let (p50, p95, p99) = obs::quantiles_us(&mut latencies);
        out.push_str(&format!(
            "{:<14} {:>6} {:>6} {:>9} {:>9} {:>9} {:>9}\n",
            method,
            rs.len(),
            rs.iter().filter(|r| !r.ok).count(),
            rs.iter().filter(|r| r.coalesced).count(),
            p50,
            p95,
            p99
        ));
    }
    out.push_str(&format!(
        "{} of {} requests shown across {} methods\n",
        window.len(),
        records.len(),
        by_method.len()
    ));
    out
}

/// One perf ledger line: the timing and throughput profile of one run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PerfRecord {
    pub run_id: String,
    /// Milliseconds since the Unix epoch at record time.
    pub timestamp_ms: u64,
    pub tool_version: String,
    /// [`crate::cache::config_fingerprint`] of the analysis config.
    /// Records with different fingerprints are never compared by the
    /// gate — a config change legitimately changes the cost profile.
    pub config_fingerprint: String,
    pub files_total: usize,
    /// True when the run started without a usable cache (first run, or
    /// the bench's cold pass). Cold and warm runs have different cost
    /// profiles, so the gate only compares like with like.
    pub cold: bool,
    pub cache_hits: u64,
    pub cache_loads: u64,
    pub cache_evictions: u64,
    /// Worker threads of the parallel per-file phase, and their summed
    /// busy/idle time in microseconds.
    pub workers: usize,
    pub worker_busy_us: u64,
    pub worker_idle_us: u64,
    /// Wall-clock of the run in milliseconds, and the derived
    /// throughput.
    pub elapsed_ms: u64,
    pub files_per_sec: f64,
    /// Per-phase wall time in microseconds, from the obs recorder.
    pub phase_us: BTreeMap<String, u64>,
    /// For watch iterations: the full iteration wall-clock (analysis
    /// plus diffing and rendering), in microseconds. Absent for one-shot
    /// runs.
    pub iteration_us: Option<u64>,
    pub deviations_total: usize,
}

/// Build the perf record of a finished run. `iteration_us` is `Some` for
/// watch iterations (full iteration wall-clock), `None` for one-shot
/// analyze runs.
pub fn record_of(
    result: &AnalysisResult,
    config: &crate::config::AnalysisConfig,
    iteration_us: Option<u64>,
) -> PerfRecord {
    let timestamp_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let stats = &result.stats;
    let cache_hits = result.obs.count_of("engine_cache_hits");
    let elapsed_ms = stats.elapsed_ms;
    let files_per_sec = if elapsed_ms > 0 {
        stats.files_total as f64 * 1000.0 / elapsed_ms as f64
    } else {
        0.0
    };
    PerfRecord {
        run_id: result.run_id.clone(),
        timestamp_ms,
        tool_version: env!("CARGO_PKG_VERSION").to_string(),
        config_fingerprint: format!("{:016x}", crate::cache::config_fingerprint(config)),
        files_total: stats.files_total,
        cold: cache_hits == 0,
        cache_hits,
        cache_loads: result.obs.count_of("cache_loads"),
        cache_evictions: result.obs.count_of("cache_evictions"),
        workers: stats.workers,
        worker_busy_us: stats.worker_busy_us,
        worker_idle_us: stats.worker_idle_us,
        elapsed_ms,
        files_per_sec,
        phase_us: stats.phase_us.clone(),
        iteration_us,
        deviations_total: stats.deviations_total,
    }
}

/// Path of the perf ledger file inside `dir`.
pub fn ledger_path(dir: &Path) -> PathBuf {
    dir.join(PERF_FILE_NAME)
}

/// Append one record to the ledger in `dir`, creating the directory and
/// file on first use.
pub fn append(dir: &Path, record: &PerfRecord) -> Result<(), String> {
    append_to(&ledger_path(dir), record)
}

/// Append one record to an explicit ledger file (the bench's
/// `--perf-ledger FILE` path).
///
/// All appends in the process go through one shared appender per ledger
/// file: `ofence watch --serve-metrics` and `ofence serve` both write
/// the same `.ofence/perf.jsonl`, and two writers opening the file
/// independently could interleave partial lines. The appender serializes
/// whole-line writes under a per-file mutex (and each write is a single
/// `O_APPEND` `write_all`, so even writers in *different* processes
/// interleave at line granularity on POSIX).
pub fn append_to(path: &Path, record: &PerfRecord) -> Result<(), String> {
    let mut line =
        serde_json::to_string(record).map_err(|e| format!("serialize perf record: {e}"))?;
    line.push('\n');
    appender_for(path)?.append(line.as_bytes())
}

/// One ledger file's process-wide append handle.
struct Appender {
    path: PathBuf,
    file: Mutex<std::fs::File>,
}

impl Appender {
    fn append(&self, line: &[u8]) -> Result<(), String> {
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        // The ledger can be rotated or deleted externally while the
        // daemon runs; a cached handle would then append to the unlinked
        // inode and silently lose the record. Re-stat the path before
        // every write and reopen when the handle no longer matches.
        if !handle_is_current(&file, &self.path) {
            if let Some(parent) = self.path.parent() {
                if !parent.as_os_str().is_empty() {
                    let _ = std::fs::create_dir_all(parent);
                }
            }
            *file = open_append(&self.path)?;
        }
        file.write_all(line)
            .map_err(|e| format!("append to {}: {e}", self.path.display()))
    }
}

/// True when the open handle still refers to the file at `path` (same
/// device and inode). A missing path or unreadable metadata counts as
/// stale so the appender reopens.
fn handle_is_current(file: &std::fs::File, path: &Path) -> bool {
    let Ok(on_disk) = std::fs::metadata(path) else {
        return false;
    };
    #[cfg(unix)]
    {
        use std::os::unix::fs::MetadataExt;
        file.metadata()
            .map(|held| held.dev() == on_disk.dev() && held.ino() == on_disk.ino())
            .unwrap_or(false)
    }
    #[cfg(not(unix))]
    {
        let _ = (file, on_disk);
        true
    }
}

fn open_append(path: &Path) -> Result<std::fs::File, String> {
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("open {}: {e}", path.display()))
}

/// The process-global appender registry: canonical ledger path → shared
/// handle. The file is opened (and its directory created) on first
/// append; [`Appender::append`] reopens it if the ledger is rotated or
/// deleted underneath the cached handle.
fn appender_for(path: &Path) -> Result<Arc<Appender>, String> {
    static REGISTRY: OnceLock<Mutex<HashMap<PathBuf, Arc<Appender>>>> = OnceLock::new();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("create {}: {e}", parent.display()))?;
        }
    }
    // Canonicalize so `.ofence/perf.jsonl` and an absolute spelling of
    // the same file share one handle (the file exists by open time; the
    // parent was just created, so canonicalize the parent + file name).
    let canonical = match (path.parent(), path.file_name()) {
        (Some(parent), Some(name)) if !parent.as_os_str().is_empty() => parent
            .canonicalize()
            .map(|p| p.join(name))
            .unwrap_or_else(|_| path.to_path_buf()),
        _ => path.to_path_buf(),
    };
    let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
    let mut registry = registry.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(appender) = registry.get(&canonical) {
        return Ok(appender.clone());
    }
    let file = open_append(path)?;
    let appender = Arc::new(Appender {
        path: canonical.clone(),
        file: Mutex::new(file),
    });
    registry.insert(canonical, appender.clone());
    Ok(appender)
}

/// Load every parseable record from a ledger file, oldest first. Corrupt
/// lines are counted, not fatal.
pub fn load_file(path: &Path) -> Result<(Vec<PerfRecord>, usize), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let mut records = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<PerfRecord>(line) {
            Ok(r) => records.push(r),
            Err(_) => skipped += 1,
        }
    }
    Ok((records, skipped))
}

/// Load the ledger in `dir` (see [`load_file`]).
pub fn load(dir: &Path) -> Result<(Vec<PerfRecord>, usize), String> {
    load_file(&ledger_path(dir))
}

/// Render the last `last` records as a fixed-width trend table, newest
/// last, with a summary line. Used by `ofence perf`.
pub fn render_trend(records: &[PerfRecord], last: usize) -> String {
    let mut out = String::new();
    if records.is_empty() {
        out.push_str("perf ledger is empty\n");
        return out;
    }
    let start = records.len().saturating_sub(last);
    out.push_str(&format!(
        "{:<14} {:>6} {:>5} {:>9} {:>10} {:>6} {:>7} {:>6}  {}\n",
        "run", "files", "cold", "elapsed", "files/s", "hits", "busy%", "dev", "iter_ms"
    ));
    for r in &records[start..] {
        let short = r
            .run_id
            .strip_prefix("run-")
            .unwrap_or(&r.run_id)
            .chars()
            .take(12)
            .collect::<String>();
        let busy_pct = {
            let total = r.worker_busy_us + r.worker_idle_us;
            if total > 0 {
                r.worker_busy_us as f64 * 100.0 / total as f64
            } else {
                0.0
            }
        };
        let iter = match r.iteration_us {
            Some(us) => format!("{:.1}", us as f64 / 1000.0),
            None => "-".to_string(),
        };
        out.push_str(&format!(
            "{:<14} {:>6} {:>5} {:>7}ms {:>10.1} {:>6} {:>6.1}% {:>6}  {}\n",
            short,
            r.files_total,
            if r.cold { "cold" } else { "warm" },
            r.elapsed_ms,
            r.files_per_sec,
            r.cache_hits,
            busy_pct,
            r.deviations_total,
            iter
        ));
    }
    let shown = records.len() - start;
    out.push_str(&format!(
        "{} of {} records shown ({} total runs in ledger)\n",
        shown,
        records.len(),
        records.len()
    ));
    out
}

/// The outcome of a regression-gate evaluation (`ofence perf --gate`).
#[derive(Clone, Debug, Serialize)]
pub struct GateOutcome {
    /// False when the newest record regressed past the threshold.
    pub pass: bool,
    /// The newest record's run id and elapsed time.
    pub run_id: String,
    pub elapsed_ms: u64,
    /// Median elapsed of the comparable baseline records, and how many
    /// records formed it. Zero comparables ⇒ automatic pass.
    pub baseline_median_ms: u64,
    pub baseline_runs: usize,
    /// Signed regression in percent (positive = slower than baseline);
    /// 0 when there is no baseline.
    pub regress_pct: f64,
    /// The threshold the outcome was judged against.
    pub max_regress_pct: f64,
    /// Human-readable one-liner of the verdict.
    pub note: String,
}

/// Evaluate the newest ledger record against the median of earlier
/// comparable records. Comparable means: same config fingerprint, same
/// `files_total`, same cold/warm mode — anything else measures a
/// different workload, not a regression.
pub fn gate(records: &[PerfRecord], max_regress_pct: f64) -> Result<GateOutcome, String> {
    let latest = records
        .last()
        .ok_or("perf ledger is empty; nothing to gate")?;
    let mut comparable: Vec<u64> = records[..records.len() - 1]
        .iter()
        .filter(|r| {
            r.config_fingerprint == latest.config_fingerprint
                && r.files_total == latest.files_total
                && r.cold == latest.cold
        })
        .map(|r| r.elapsed_ms)
        .collect();
    if comparable.is_empty() {
        return Ok(GateOutcome {
            pass: true,
            run_id: latest.run_id.clone(),
            elapsed_ms: latest.elapsed_ms,
            baseline_median_ms: 0,
            baseline_runs: 0,
            regress_pct: 0.0,
            max_regress_pct,
            note: "no comparable baseline runs; pass by default".to_string(),
        });
    }
    comparable.sort_unstable();
    let mid = comparable.len() / 2;
    let median = if comparable.len() % 2 == 1 {
        comparable[mid]
    } else {
        (comparable[mid - 1] + comparable[mid]) / 2
    };
    let regress_pct = if median > 0 {
        (latest.elapsed_ms as f64 - median as f64) * 100.0 / median as f64
    } else if latest.elapsed_ms > 0 {
        // Baseline too fast to measure but the latest run is not: treat
        // each elapsed millisecond as 100% regression over the floor.
        latest.elapsed_ms as f64 * 100.0
    } else {
        0.0
    };
    let pass = regress_pct <= max_regress_pct;
    let note = format!(
        "{}: {}ms vs median {}ms over {} comparable runs ({}{:.1}% vs limit {:.1}%)",
        if pass { "pass" } else { "REGRESSION" },
        latest.elapsed_ms,
        median,
        comparable.len(),
        if regress_pct >= 0.0 { "+" } else { "" },
        regress_pct,
        max_regress_pct
    );
    Ok(GateOutcome {
        pass,
        run_id: latest.run_id.clone(),
        elapsed_ms: latest.elapsed_ms,
        baseline_median_ms: median,
        baseline_runs: comparable.len(),
        regress_pct,
        max_regress_pct,
        note,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalysisConfig;
    use crate::engine::{Engine, SourceFile};

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ofence-perf-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn run_once() -> PerfRecord {
        let config = AnalysisConfig::default();
        let r = Engine::new(config.clone()).analyze(&[SourceFile::new(
            "m.c",
            r#"struct m { int init; int y; };
void reader(struct m *a) { if (!a->init) return; smp_rmb(); f(a->y); }
void writer(struct m *b) { b->y = 1; smp_wmb(); b->init = 1; }
"#,
        )]);
        record_of(&r, &config, None)
    }

    fn synthetic(elapsed_ms: u64) -> PerfRecord {
        let mut r = run_once();
        r.elapsed_ms = elapsed_ms;
        r
    }

    #[test]
    fn append_load_roundtrip() {
        let dir = tmp("roundtrip");
        let rec = run_once();
        append(&dir, &rec).unwrap();
        append(&dir, &rec).unwrap();
        let (records, skipped) = load(&dir).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(skipped, 0);
        assert_eq!(records[0].run_id, rec.run_id);
        assert_eq!(records[0].files_total, 1);
        assert!(records[0].cold);
        assert!(records[0].phase_us.contains_key("pair"));
        assert!(records[0].iteration_us.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn appender_survives_ledger_rotation_and_deletion() {
        // The registry caches one handle per ledger for the process
        // lifetime; rotating or deleting the file must not send later
        // appends to the unlinked inode.
        let dir = tmp("rotate");
        let path = ledger_path(&dir);
        let mut rec = run_once();
        rec.run_id = "before-rotate".to_string();
        append_to(&path, &rec).unwrap();
        // Rotate: the cached handle now points at the renamed inode.
        let rotated = dir.join("perf.jsonl.1");
        std::fs::rename(&path, &rotated).unwrap();
        rec.run_id = "after-rotate".to_string();
        append_to(&path, &rec).unwrap();
        let (records, _) = load_file(&path).unwrap();
        assert_eq!(records.len(), 1, "record lost to the rotated inode");
        assert_eq!(records[0].run_id, "after-rotate");
        let (old, _) = load_file(&rotated).unwrap();
        assert_eq!(old.len(), 1);
        assert_eq!(old[0].run_id, "before-rotate");
        // Delete: the handle points at an unlinked inode.
        std::fs::remove_file(&path).unwrap();
        rec.run_id = "after-delete".to_string();
        append_to(&path, &rec).unwrap();
        let (records, _) = load_file(&path).unwrap();
        assert_eq!(records.len(), 1, "record lost to the unlinked inode");
        assert_eq!(records[0].run_id, "after-delete");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_writers_interleave_whole_lines() {
        // The watch loop and the analysis daemon can share one ledger;
        // simultaneous appends must interleave at line granularity —
        // every line parseable, every record accounted for.
        let dir = tmp("interleave");
        let path = ledger_path(&dir);
        let template = run_once();
        const WRITERS: usize = 4;
        const PER_WRITER: usize = 50;
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let mut record = template.clone();
                record.run_id = format!("writer-{w}");
                let path = &path;
                scope.spawn(move || {
                    for _ in 0..PER_WRITER {
                        append_to(path, &record).unwrap();
                    }
                });
            }
        });
        let (records, skipped) = load_file(&path).unwrap();
        assert_eq!(skipped, 0, "torn JSONL lines");
        assert_eq!(records.len(), WRITERS * PER_WRITER);
        for w in 0..WRITERS {
            let id = format!("writer-{w}");
            assert_eq!(
                records.iter().filter(|r| r.run_id == id).count(),
                PER_WRITER
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn path_spellings_share_one_appender() {
        // A relative and an absolute spelling of the same ledger file
        // resolve to the same process-wide appender (the registry keys
        // by canonical path), so they serialize against each other.
        let dir = tmp("spelling");
        let path = ledger_path(&dir);
        let rec = run_once();
        append_to(&path, &rec).unwrap();
        let respelled = dir.join(".").join(PERF_FILE_NAME);
        append_to(&respelled, &rec).unwrap();
        let (records, skipped) = load_file(&path).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(records.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_lines_are_skipped_not_fatal() {
        let dir = tmp("corrupt");
        let rec = run_once();
        append(&dir, &rec).unwrap();
        let path = ledger_path(&dir);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{not json\n");
        std::fs::write(&path, text).unwrap();
        append(&dir, &rec).unwrap();
        let (records, skipped) = load(&dir).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(skipped, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gate_passes_within_threshold_and_fails_past_it() {
        let mut records: Vec<PerfRecord> = (0..5).map(|_| synthetic(100)).collect();
        records.push(synthetic(105)); // +5% over the 100ms median
        let ok = gate(&records, 10.0).unwrap();
        assert!(ok.pass, "{}", ok.note);
        assert_eq!(ok.baseline_median_ms, 100);
        assert_eq!(ok.baseline_runs, 5);

        records.pop();
        records.push(synthetic(130)); // +30%
        let bad = gate(&records, 25.0).unwrap();
        assert!(!bad.pass, "{}", bad.note);
        assert!(bad.regress_pct > 25.0, "{}", bad.regress_pct);
    }

    #[test]
    fn gate_ignores_incomparable_records() {
        let mut records = vec![synthetic(10)];
        records[0].files_total = 999; // different corpus size
        records.push(synthetic(500));
        let out = gate(&records, 10.0).unwrap();
        assert!(out.pass, "{}", out.note);
        assert_eq!(out.baseline_runs, 0);
        assert!(out.note.contains("no comparable baseline"), "{}", out.note);
    }

    #[test]
    fn gate_on_empty_ledger_errors() {
        assert!(gate(&[], 10.0).is_err());
    }

    #[test]
    fn faster_runs_always_pass() {
        let mut records: Vec<PerfRecord> = (0..4).map(|_| synthetic(200)).collect();
        records.push(synthetic(120)); // 40% faster
        let out = gate(&records, 0.0).unwrap();
        assert!(out.pass, "{}", out.note);
        assert!(out.regress_pct < 0.0);
    }

    #[test]
    fn request_ledger_roundtrip_and_trends() {
        let dir = tmp("requests");
        for i in 0..6 {
            let rec = request_record_of(
                &format!("r{i:06}"),
                if i % 2 == 0 { "analyze" } else { "explain" },
                i != 5,
                (i as u64 + 1) * 100,
                i == 4,
                (i != 5).then(|| format!("run-{i}")),
            );
            append_request(&dir, &rec).unwrap();
        }
        let (records, skipped) = load_requests(&dir).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(records.len(), 6);
        assert_eq!(records[0].request_id, "r000000");
        assert!(records[4].coalesced);
        assert!(!records[5].ok);
        assert!(records[5].run_id.is_none());
        let table = render_request_trends(&records, 6);
        assert!(table.contains("analyze"), "{table}");
        assert!(table.contains("explain"), "{table}");
        assert!(
            table.contains("6 of 6 requests shown across 2 methods"),
            "{table}"
        );
        // A smaller window only counts what it shows.
        let table = render_request_trends(&records, 2);
        assert!(table.contains("2 of 6 requests shown"), "{table}");
        assert!(render_request_trends(&[], 5).contains("empty"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trend_renders_every_shown_record() {
        let records: Vec<PerfRecord> = (0..3).map(|_| synthetic(50)).collect();
        let table = render_trend(&records, 2);
        assert!(table.contains("2 of 3 records shown"), "{table}");
        assert!(table.contains("files/s"), "{table}");
        assert!(render_trend(&[], 5).contains("empty"));
    }
}
