//! Pairing-decision explainability — replay Algorithm 1 for one barrier.
//!
//! `ofence explain <file:line>` needs to answer "why did this barrier
//! pair with *that* one" (or "why is it unpaired") without the user
//! reading the pairing code. This module reconstructs, for a single
//! target site, the candidate set the pairing pass evaluated: every
//! other barrier sharing at least one object, the shared-object overlap,
//! the distance-product weight of the best ordered object pair, and a
//! per-candidate verdict. The final outcome is taken from a real
//! [`crate::pairing::pair_barriers`] run, so the explanation can never
//! disagree with the analysis.

use crate::config::AnalysisConfig;
use crate::ir::*;
use crate::pairing::{pair_barriers, PairingResult};
use serde::{Deserialize, Serialize};

/// A compact, self-contained description of one barrier site.
#[derive(Clone, Debug)]
pub struct SiteSummary {
    pub id: u32,
    pub kind: String,
    pub file: String,
    pub function: String,
    pub line: u32,
    pub is_write_barrier: bool,
    /// Objects in the exploration window as `struct.field` with the
    /// minimum distance each is seen at.
    pub objects: Vec<(String, u32)>,
    /// For objects only visible through the inter-procedural summary
    /// pass: `object label -> rendered call chain` (the callees walked
    /// from this site's function to reach the access, e.g.
    /// `"fill() → deep_fill()"`). Empty below `--ipa-depth 1`.
    pub via_chains: Vec<(String, String)>,
}

// Hand-written so `via_chains` is omitted when empty: explain output at
// depth 0 stays byte-identical to pre-IPA reports.
impl Serialize for SiteSummary {
    fn to_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("id".to_string(), self.id.to_value());
        m.insert("kind".to_string(), self.kind.to_value());
        m.insert("file".to_string(), self.file.to_value());
        m.insert("function".to_string(), self.function.to_value());
        m.insert("line".to_string(), self.line.to_value());
        m.insert(
            "is_write_barrier".to_string(),
            self.is_write_barrier.to_value(),
        );
        m.insert("objects".to_string(), self.objects.to_value());
        if !self.via_chains.is_empty() {
            m.insert("via_chains".to_string(), self.via_chains.to_value());
        }
        serde::Value::Object(m)
    }
}

impl Deserialize for SiteSummary {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Object(m) = v else {
            return Err(serde::Error::new("SiteSummary: expected object"));
        };
        Ok(SiteSummary {
            id: serde::de_field(m.get("id"), "id")?,
            kind: serde::de_field(m.get("kind"), "kind")?,
            file: serde::de_field(m.get("file"), "file")?,
            function: serde::de_field(m.get("function"), "function")?,
            line: serde::de_field(m.get("line"), "line")?,
            is_write_barrier: serde::de_field(m.get("is_write_barrier"), "is_write_barrier")?,
            objects: serde::de_field(m.get("objects"), "objects")?,
            via_chains: match m.get("via_chains") {
                Some(v) => Deserialize::from_value(v)?,
                None => Vec::new(),
            },
        })
    }
}

/// Compact `struct.field` label (or the bare name for globals).
fn obj_label(o: &SharedObject) -> String {
    if o.strukt.is_empty() {
        o.field.clone()
    } else {
        format!("{}.{}", o.strukt, o.field)
    }
}

fn summarize(s: &BarrierSite) -> SiteSummary {
    SiteSummary {
        id: s.id.0,
        kind: match &s.from_atomic {
            Some(callee) => format!("{callee} (promoted atomic)"),
            None => s.kind.name().to_string(),
        },
        file: s.site.file_name.clone(),
        function: s.site.function.clone(),
        line: s.site.line,
        is_write_barrier: s.is_write_barrier(),
        objects: s
            .objects()
            .iter()
            .map(|(o, d)| (obj_label(o), *d))
            .collect(),
        via_chains: s
            .objects()
            .iter()
            .filter_map(|(o, _)| {
                s.via_of(o).map(|chain| {
                    let rendered = chain
                        .iter()
                        .map(|f| format!("{f}()"))
                        .collect::<Vec<_>>()
                        .join(" → ");
                    (obj_label(o), rendered)
                })
            })
            .collect(),
    }
}

/// Why a candidate did or did not become the target's partner.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// In the same pairing as the target.
    Won,
    /// Same function and file — pairing infers concurrency *between*
    /// functions, so these never base-pair (they can still join later
    /// via the multi-pairing extension).
    SameFunction,
    /// Fewer than the configured minimum shared objects.
    TooFewSharedObjects,
    /// Shares enough objects but no object pair is ordered (one object
    /// before, the other after) by either barrier.
    NotOrdered,
    /// Neither side is a write barrier; base pairing is anchored on
    /// write barriers.
    NoWriteAnchor,
    /// Eligible, but a candidate with a lower distance-product weight
    /// won the target.
    WorseWeight,
    /// Eligible, but lost the per-barrier arbitration (the candidate or
    /// the target ended up in a lower-weight pairing elsewhere).
    LostArbitration,
    /// Eligible, but the target is followed by a wake-up/IPC call closer
    /// than the pairing objects — the barrier orders the wake-up, not
    /// this candidate (§4.2).
    PreemptedByWakeup,
}

impl Verdict {
    fn describe(&self) -> &'static str {
        match self {
            Verdict::Won => "paired with the target",
            Verdict::SameFunction => "rejected: same function (no concurrency inferred)",
            Verdict::TooFewSharedObjects => "rejected: fewer than min shared objects",
            Verdict::NotOrdered => "rejected: no object pair ordered by either barrier",
            Verdict::NoWriteAnchor => "rejected: neither barrier is a write anchor",
            Verdict::WorseWeight => "lost: a closer candidate (lower weight) won",
            Verdict::LostArbitration => "lost arbitration: a lower-weight pairing won elsewhere",
            Verdict::PreemptedByWakeup => {
                "preempted: a wake-up/IPC call acts as the implicit read barrier"
            }
        }
    }
}

/// One evaluated candidate partner.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CandidateRow {
    pub partner: SiteSummary,
    /// Objects both barriers access, as `struct.field`.
    pub shared_objects: Vec<String>,
    /// The lowest-weight ordered object pair between the two sites, as
    /// `(object, target distance, partner distance)` per object, and the
    /// resulting product weight. `None` when no ordered pair exists.
    pub best_pair: Option<BestPair>,
    pub verdict: Verdict,
}

/// The winning object pair of one candidate evaluation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BestPair {
    pub objects: (String, String),
    pub target_distances: (u32, u32),
    pub partner_distances: (u32, u32),
    /// Product of the four distances (lower = closer = more confident).
    /// With `distance_weighting` off this is forced to 1 by the pairing
    /// pass, but the explainer always shows the real product.
    pub weight: u64,
}

/// Final state of the target in the actual pairing result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Outcome {
    Paired {
        members: Vec<SiteSummary>,
        objects: Vec<String>,
        weight: u64,
        multi: bool,
    },
    /// Intentionally unpaired: a wake-up/IPC call within the window acts
    /// as the implicit read barrier (§4.2).
    UnpairedImplicitIpc {
        wakeup_distance: u32,
    },
    UnpairedNoMatch,
}

/// Full replay of the pairing decision for one barrier.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Explanation {
    pub target: SiteSummary,
    /// Every other site sharing at least one object, sorted by weight
    /// (eligible candidates first).
    pub candidates: Vec<CandidateRow>,
    /// Sites sharing no object at all (count only; they were never
    /// candidates).
    pub sites_without_overlap: usize,
    pub outcome: Outcome,
}

/// Explain the pairing decision for `target`, given the sites of a run.
/// Re-runs the (cheap, deterministic) global pairing internally.
pub fn explain_site(
    sites: &[BarrierSite],
    config: &AnalysisConfig,
    target: BarrierId,
) -> Option<Explanation> {
    let pairing = pair_barriers(sites, config);
    explain_site_with(sites, &pairing, config, target)
}

/// Explain against an existing pairing result (avoids re-pairing when
/// the caller already ran the analysis).
pub fn explain_site_with(
    sites: &[BarrierSite],
    pairing: &PairingResult,
    config: &AnalysisConfig,
    target: BarrierId,
) -> Option<Explanation> {
    let t = sites.iter().find(|s| s.id == target)?;
    let t_objects = t.objects();
    let my_pairing = pairing.pairing_of(target);
    let implicit_ipc = pairing
        .unpaired
        .iter()
        .any(|(id, r)| *id == target && *r == UnpairedReason::ImplicitIpc);

    let mut candidates: Vec<CandidateRow> = Vec::new();
    let mut no_overlap = 0usize;
    for p in sites {
        if p.id == target {
            continue;
        }
        let p_objects = p.objects();
        let shared: Vec<(SharedObject, u32, u32)> = t_objects
            .iter()
            .filter_map(|(o, td)| {
                p_objects
                    .iter()
                    .find(|(po, _)| po == o)
                    .map(|(_, pd)| (o.clone(), *td, *pd))
            })
            .collect();
        if shared.is_empty() {
            no_overlap += 1;
            continue;
        }
        // Best ordered object pair between the two sites: minimum product
        // of the four distances over pairs ordered by either barrier.
        let mut best: Option<BestPair> = None;
        let mut any_pair = false;
        for (i, (o1, td1, pd1)) in shared.iter().enumerate() {
            for (o2, td2, pd2) in shared.iter().skip(i + 1) {
                any_pair = true;
                if !(t.orders(o1, o2) || p.orders(o1, o2)) {
                    continue;
                }
                let weight = u64::from(*td1) * u64::from(*td2) * u64::from(*pd1) * u64::from(*pd2);
                if best.as_ref().is_none_or(|b| weight < b.weight) {
                    best = Some(BestPair {
                        objects: (obj_label(o1), obj_label(o2)),
                        target_distances: (*td1, *td2),
                        partner_distances: (*pd1, *pd2),
                        weight,
                    });
                }
            }
        }
        let in_my_pairing = my_pairing.is_some_and(|mp| mp.members.contains(&p.id));
        let verdict = if in_my_pairing {
            Verdict::Won
        } else if p.site.function == t.site.function && p.site.file == t.site.file {
            Verdict::SameFunction
        } else if shared.len() < config.min_shared_objects {
            Verdict::TooFewSharedObjects
        } else if !any_pair || best.is_none() {
            Verdict::NotOrdered
        } else if !t.is_write_barrier() && !p.is_write_barrier() {
            Verdict::NoWriteAnchor
        } else if my_pairing.is_some() {
            Verdict::WorseWeight
        } else if implicit_ipc {
            Verdict::PreemptedByWakeup
        } else {
            Verdict::LostArbitration
        };
        candidates.push(CandidateRow {
            partner: summarize(p),
            shared_objects: shared.iter().map(|(o, _, _)| obj_label(o)).collect(),
            best_pair: best,
            verdict,
        });
    }
    // Winners first, then eligible losers by weight, then rejects.
    candidates.sort_by_key(|c| {
        (
            c.verdict != Verdict::Won,
            c.best_pair.is_none(),
            c.best_pair.as_ref().map(|b| b.weight).unwrap_or(u64::MAX),
            c.partner.id,
        )
    });

    let outcome = match my_pairing {
        Some(mp) => Outcome::Paired {
            members: mp
                .members
                .iter()
                .filter_map(|&m| sites.iter().find(|s| s.id == m))
                .map(summarize)
                .collect(),
            objects: mp.objects.iter().map(obj_label).collect(),
            weight: mp.weight,
            multi: mp.shape == PairingShape::Multi,
        },
        None => {
            if implicit_ipc {
                Outcome::UnpairedImplicitIpc {
                    wakeup_distance: t.wakeup_after.unwrap_or(0),
                }
            } else {
                Outcome::UnpairedNoMatch
            }
        }
    };

    Some(Explanation {
        target: summarize(t),
        candidates,
        sites_without_overlap: no_overlap,
        outcome,
    })
}

impl Explanation {
    /// Human-readable report, one screen per decision.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let t = &self.target;
        out.push_str(&format!(
            "barrier #{}: {} at {}:{} in {}() [{} barrier]\n",
            t.id,
            t.kind,
            t.file,
            t.line,
            t.function,
            if t.is_write_barrier { "write" } else { "read" }
        ));
        out.push_str("objects in window:\n");
        for (o, d) in &t.objects {
            match t.via_chains.iter().find(|(vo, _)| vo == o) {
                Some((_, chain)) => out.push_str(&format!(
                    "  {o} (distance {d}) via {}() → {chain}\n",
                    t.function
                )),
                None => out.push_str(&format!("  {o} (distance {d})\n")),
            }
        }
        out.push_str(&format!(
            "\ncandidates ({} evaluated, {} sites shared no object):\n",
            self.candidates.len(),
            self.sites_without_overlap
        ));
        if self.candidates.is_empty() {
            out.push_str("  (none)\n");
        }
        for c in &self.candidates {
            let p = &c.partner;
            out.push_str(&format!(
                "  #{} {} at {}:{} in {}()\n",
                p.id, p.kind, p.file, p.line, p.function
            ));
            out.push_str(&format!(
                "    shared objects: {}\n",
                c.shared_objects.join(", ")
            ));
            for (o, chain) in &p.via_chains {
                if c.shared_objects.contains(o) {
                    out.push_str(&format!("    {o} via {}() → {chain}\n", p.function));
                }
            }
            if let Some(b) = &c.best_pair {
                out.push_str(&format!(
                    "    best ordered pair: ({}, {}) weight {} = {}x{} (target) * {}x{} (candidate)\n",
                    b.objects.0,
                    b.objects.1,
                    b.weight,
                    b.target_distances.0,
                    b.target_distances.1,
                    b.partner_distances.0,
                    b.partner_distances.1,
                ));
            }
            out.push_str(&format!("    verdict: {}\n", c.verdict.describe()));
        }
        out.push('\n');
        match &self.outcome {
            Outcome::Paired {
                members,
                objects,
                weight,
                multi,
            } => {
                out.push_str(&format!(
                    "outcome: PAIRED ({}, weight {}) on {}\n",
                    if *multi {
                        "multi-barrier group"
                    } else {
                        "single pair"
                    },
                    weight,
                    objects.join(", ")
                ));
                out.push_str("members:\n");
                for m in members {
                    let marker = if m.id == t.id { " <- target" } else { "" };
                    out.push_str(&format!(
                        "  #{} {} at {}:{} in {}(){}\n",
                        m.id, m.kind, m.file, m.line, m.function, marker
                    ));
                }
            }
            Outcome::UnpairedImplicitIpc { wakeup_distance } => {
                out.push_str(&format!(
                    "outcome: UNPAIRED (implicit read barrier: wake-up/IPC call {wakeup_distance} statement(s) after the barrier orders it instead of a reader)\n"
                ));
            }
            Outcome::UnpairedNoMatch => {
                out.push_str("outcome: UNPAIRED (no candidate shares >= 2 ordered objects)\n");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sites::analyze_file;

    fn sites_of(src: &str, config: &AnalysisConfig) -> Vec<BarrierSite> {
        let parsed = ckit::parse_string("t.c", src).unwrap();
        assert!(parsed.errors.is_empty(), "{:?}", parsed.errors);
        let mut fa = analyze_file(0, &parsed, config);
        for (i, s) in fa.sites.iter_mut().enumerate() {
            s.id = BarrierId(i as u32);
        }
        fa.sites
    }

    const LISTING1: &str = r#"
struct my_struct { int init; int y; };
void reader(struct my_struct *a) {
    if (!a->init)
        return;
    smp_rmb();
    f(a->y);
}
void writer(struct my_struct *b) {
    b->y = 1;
    smp_wmb();
    b->init = 1;
}
"#;

    #[test]
    fn paired_barrier_explains_winner() {
        let config = AnalysisConfig::default();
        let sites = sites_of(LISTING1, &config);
        let wmb = sites.iter().find(|s| s.is_write_barrier()).unwrap().id;
        let e = explain_site(&sites, &config, wmb).unwrap();
        assert!(e.target.is_write_barrier);
        assert_eq!(e.candidates.len(), 1);
        assert_eq!(e.candidates[0].verdict, Verdict::Won);
        let b = e.candidates[0].best_pair.as_ref().unwrap();
        assert!(b.weight > 0);
        assert!(matches!(e.outcome, Outcome::Paired { .. }));
        let text = e.render();
        assert!(text.contains("PAIRED"), "{text}");
        assert!(text.contains("weight"), "{text}");
        assert!(text.contains("my_struct.init"), "{text}");
    }

    #[test]
    fn closer_candidate_beats_farther_one() {
        let src = r#"
struct s { int flag; int data; };
void reader_far(struct s *p) {
    if (!p->flag)
        return;
    smp_rmb();
    g(1);
    g(2);
    g(3);
    g(p->data);
}
void reader_near(struct s *p) {
    if (!p->flag)
        return;
    smp_rmb();
    g(p->data);
}
void writer(struct s *p) {
    p->data = 1;
    smp_wmb();
    p->flag = 1;
}
"#;
        let config = AnalysisConfig::default();
        let sites = sites_of(src, &config);
        let wmb = sites.iter().find(|s| s.is_write_barrier()).unwrap().id;
        let e = explain_site(&sites, &config, wmb).unwrap();
        // Both readers share both objects; the near one pairs (the far one
        // may still join via the multi extension — but its base weight is
        // higher).
        let near = e
            .candidates
            .iter()
            .find(|c| c.partner.function == "reader_near")
            .unwrap();
        let far = e
            .candidates
            .iter()
            .find(|c| c.partner.function == "reader_far")
            .unwrap();
        assert_eq!(near.verdict, Verdict::Won);
        let nw = near.best_pair.as_ref().unwrap().weight;
        let fw = far.best_pair.as_ref().unwrap().weight;
        assert!(nw < fw, "near {nw} < far {fw}");
    }

    #[test]
    fn implicit_ipc_explained() {
        let src = r#"
struct d { int token; int extra; struct task *t; };
void waker(struct d *p) {
    p->token = 1;
    p->extra = 2;
    smp_wmb();
    wake_up_process(p->t);
}
void reader(struct d *p) {
    if (!p->token)
        return;
    smp_rmb();
    g(p->extra);
}
"#;
        let config = AnalysisConfig::default();
        let sites = sites_of(src, &config);
        let wmb = sites
            .iter()
            .find(|s| s.site.function == "waker")
            .unwrap()
            .id;
        let e = explain_site(&sites, &config, wmb).unwrap();
        assert!(
            matches!(e.outcome, Outcome::UnpairedImplicitIpc { .. }),
            "{e:?}"
        );
        assert!(e.render().contains("implicit read barrier"));
    }

    #[test]
    fn unpaired_no_match_explained() {
        let src = r#"
struct a { int x; int y; };
void writer(struct a *p) {
    p->x = 1;
    smp_wmb();
    p->y = 2;
}
"#;
        let config = AnalysisConfig::default();
        let sites = sites_of(src, &config);
        let e = explain_site(&sites, &config, sites[0].id).unwrap();
        assert!(matches!(e.outcome, Outcome::UnpairedNoMatch), "{e:?}");
        assert!(e.render().contains("UNPAIRED"));
    }

    #[test]
    fn same_function_candidates_marked() {
        let src = r#"
struct s { int a; int b; };
void f(struct s *p) {
    p->a = 1;
    smp_wmb();
    p->b = 2;
    smp_wmb();
    p->a = 3;
}
"#;
        let config = AnalysisConfig::default();
        let sites = sites_of(src, &config);
        let e = explain_site(&sites, &config, sites[0].id).unwrap();
        assert_eq!(e.candidates.len(), 1);
        assert_eq!(e.candidates[0].verdict, Verdict::SameFunction);
    }

    #[test]
    fn explanation_serializes() {
        let config = AnalysisConfig::default();
        let sites = sites_of(LISTING1, &config);
        let e = explain_site(&sites, &config, sites[0].id).unwrap();
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("\"outcome\""), "{json}");
        let back: Explanation = serde_json::from_str(&json).unwrap();
        assert_eq!(back.target.id, e.target.id);
    }
}
