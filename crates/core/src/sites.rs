//! Per-file analysis: find barrier sites and the accesses around them.
//!
//! Implements §4.1 (finding barriers) and the exploration rules of §4.2:
//! bounded statement windows (5 for write barriers, 50 for read barriers),
//! bounding at other barriers and at atomics with barrier semantics,
//! one-level callee and caller expansion, and wake-up call detection.

use crate::config::AnalysisConfig;
use crate::extract::{accesses_in_node, plain_calls_in_expr, RawAccess};
use crate::ir::*;
use crate::summary::{FnSummary, WindowCall};
use cfgir::{walk, Cfg, Dir, LoweredFile, NodeId, Step, TypeEnv};
use ckit::ast::{Expr, ExprKind};
use ckit::span::Span;
use ckit::ParsedFile;
use kmodel::{BarrierKind, CallSemantics, ImpliedAccess, SeqcountOp};
use std::collections::HashMap;

/// A function retained for downstream passes (checkers, patches).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct FunctionInfo {
    pub name: String,
    pub cfg: Cfg,
    pub span: Span,
    /// The AST, kept for statement-level patch synthesis.
    pub def: ckit::ast::FunctionDef,
}

impl FunctionInfo {
    /// A name/span stub with no CFG and no AST body — the retained shape
    /// for functions of files without barrier sites (see
    /// [`analyze_file`]) and for their disk-cached form.
    pub fn stub(name: String, span: Span) -> FunctionInfo {
        FunctionInfo {
            cfg: Cfg {
                name: name.clone(),
                nodes: Vec::new(),
                entry: 0,
                exit: 0,
            },
            def: ckit::ast::FunctionDef {
                sig: ckit::ast::FunctionSig {
                    name: name.as_str().into(),
                    ret: ckit::ast::Type::Void,
                    params: Vec::new(),
                    variadic: false,
                    is_static: false,
                    is_inline: false,
                    span,
                },
                body: Vec::new(),
                span,
            },
            name,
            span,
        }
    }
}

/// Analysis result of one file.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct FileAnalysis {
    pub file: usize,
    pub name: String,
    pub source: std::sync::Arc<str>,
    pub sites: Vec<BarrierSite>,
    pub functions: Vec<FunctionInfo>,
    pub parse_error_count: usize,
    /// Composable per-function summaries (inter-procedural pass input),
    /// same order as the file's functions.
    pub summaries: Vec<FnSummary>,
    /// Plain calls observed in each site's exploration window, aligned
    /// with `sites` — consumed by the corpus-global summary composition.
    pub window_calls: Vec<Vec<WindowCall>>,
}

/// A barrier call found in a CFG node.
struct FoundBarrier {
    func: usize,
    node: NodeId,
    kind: BarrierKind,
    seqcount: Option<SeqcountOp>,
    /// Callee name when this is a promoted fully-ordered atomic
    /// (`pair_with_atomics` extension).
    from_atomic: Option<String>,
    call_span: Span,
    args: Vec<Expr>,
}

/// Extraction counters, accumulated locally per file and flushed to the
/// recorder in one batch (keeps the hot walk loops lock-free).
#[derive(Default)]
struct ExtractCounters {
    windows_swept: u64,
    accesses_collected: u64,
    callee_expansions: u64,
    promoted_atomics: u64,
}

/// How a node bounds (or doesn't) a barrier window.
enum NodeClass {
    /// Another explicit barrier / seqcount call: skip entirely.
    Barrier,
    /// Full-barrier atomic: collect its accesses, then stop.
    FullAtomic,
    /// Wake-up / IPC call: collect, record, stop.
    Wakeup(String),
    Plain,
}

/// Analyze one parsed file.
pub fn analyze_file(file: usize, parsed: &ParsedFile, config: &AnalysisConfig) -> FileAnalysis {
    let rec = obs::Recorder::new();
    analyze_file_traced(file, parsed, config, &rec)
}

/// Analyze one parsed file, recording `cfg` and `extract` spans (per-file
/// attribution) and the extraction counters into the given recorder.
pub fn analyze_file_traced(
    file: usize,
    parsed: &ParsedFile,
    config: &AnalysisConfig,
    rec: &obs::Recorder,
) -> FileAnalysis {
    let lowered = LoweredFile::lower_traced(parsed, rec);
    let _span = rec.span_with("extract", &[("file", parsed.map.file.as_str())]);
    let envs: Vec<TypeEnv<'_>> = (0..lowered.functions.len())
        .map(|i| lowered.env(i))
        .collect();

    // Find every barrier call in every function.
    let mut found: Vec<FoundBarrier> = Vec::new();
    for (fi, cfg) in lowered.cfgs.iter().enumerate() {
        for node in cfg.ids() {
            if let Some(expr) = cfg.node(node).kind.expr() {
                let before = found.len();
                find_barrier_calls(expr, &mut |kind, seqcount, span, args| {
                    found.push(FoundBarrier {
                        func: fi,
                        node,
                        kind,
                        seqcount,
                        from_atomic: None,
                        call_span: span,
                        args: args.to_vec(),
                    });
                });
                // §6.4 extension: promote fully-ordered atomic RMWs to
                // pairable sites (unless the node already holds a real
                // barrier, which subsumes the atomic's ordering role).
                if config.pair_with_atomics && found.len() == before {
                    find_full_atomic_calls(expr, &mut |name, span, args| {
                        found.push(FoundBarrier {
                            func: fi,
                            node,
                            kind: BarrierKind::Mb,
                            seqcount: None,
                            from_atomic: Some(name.to_string()),
                            call_span: span,
                            args: args.to_vec(),
                        });
                    });
                }
            }
        }
    }

    // Per-function access summaries for callee expansion — only for
    // barrier-free functions (walking into a function that has its own
    // barrier would cross a bounding barrier).
    let has_barrier: Vec<bool> = (0..lowered.functions.len())
        .map(|fi| found.iter().any(|b| b.func == fi))
        .collect();
    let summaries: HashMap<String, Vec<RawAccess>> = lowered
        .functions
        .iter()
        .enumerate()
        .filter(|(fi, _)| !has_barrier[*fi])
        .map(|(fi, f)| {
            let mut acc = Vec::new();
            for node in lowered.cfgs[fi].ids() {
                acc.extend(accesses_in_node(
                    &lowered.cfgs[fi].node(node).kind,
                    &envs[fi],
                ));
            }
            acc.truncate(64); // helper functions are small; cap the blast radius
            (f.sig.name.to_string(), acc)
        })
        .collect();

    // Same-file call graph: callee name -> (caller fn, call node).
    let mut callers: HashMap<String, Vec<(usize, NodeId)>> = HashMap::new();
    for (fi, cfg) in lowered.cfgs.iter().enumerate() {
        for node in cfg.ids() {
            if let Some(expr) = cfg.node(node).kind.expr() {
                for (name, _) in plain_calls_in_expr(expr) {
                    if lowered.function_index(&name).is_some() {
                        callers.entry(name).or_default().push((fi, node));
                    }
                }
            }
        }
    }

    let mut sites = Vec::new();
    let mut window_calls: Vec<Vec<WindowCall>> = Vec::new();
    let mut ctr = ExtractCounters::default();
    for fb in &found {
        let mut calls = Vec::new();
        let site = build_site(
            fb, &lowered, &envs, &summaries, &callers, config, file, parsed, &mut ctr, &mut calls,
        );
        rec.observe("accesses_per_site", site.accesses.len() as u64);
        ctr.accesses_collected += site.accesses.len() as u64;
        if site.from_atomic.is_some() {
            ctr.promoted_atomics += 1;
        }
        sites.push(site);
        window_calls.push(calls);
    }

    // Inter-procedural summaries for every function — cached with the
    // file and composed corpus-globally by the engine.
    let fn_summaries = crate::summary::extract_summaries(&lowered, &envs);
    if config.ipa_depth > 0 {
        // Counted only when the composition pass is live, so depth-0
        // reports (and their goldens) carry no IPA counters.
        rec.count("ipa_summaries_extracted", fn_summaries.len() as u64);
    }
    // Batched flush: one lock per counter per file, not per site.
    rec.count("extract_barriers_found", sites.len() as u64);
    rec.count("extract_windows_swept", ctr.windows_swept);
    rec.count("extract_accesses_collected", ctr.accesses_collected);
    rec.count("extract_callee_expansions", ctr.callee_expansions);
    rec.count("extract_promoted_atomics", ctr.promoted_atomics);

    // Files without barrier sites keep their functions as name/span
    // stubs, matching the shape the disk cache restores for them: every
    // downstream consumer of `functions` (patch, deviation, annotation
    // synthesis) reaches a function only through a barrier site in the
    // same file, and the missing-barrier detector re-lowers from source.
    // On a kernel-shaped corpus most files have no barriers, so this
    // drops the bulk of the retained AST/CFG memory and makes cloning a
    // cached analysis cheap.
    let slim = sites.is_empty();
    FileAnalysis {
        file,
        name: parsed.map.file.clone(),
        source: parsed.source.clone(),
        sites,
        functions: lowered
            .functions
            .iter()
            .zip(&lowered.cfgs)
            .map(|(f, cfg)| {
                if slim {
                    FunctionInfo::stub(f.sig.name.to_string(), f.span)
                } else {
                    FunctionInfo {
                        name: f.sig.name.to_string(),
                        cfg: cfg.clone(),
                        span: f.span,
                        def: (*f).clone(),
                    }
                }
            })
            .collect(),
        parse_error_count: parsed.errors.len(),
        summaries: fn_summaries,
        window_calls,
    }
}

/// Find barrier/seqcount calls inside an expression.
fn find_barrier_calls(
    expr: &Expr,
    f: &mut impl FnMut(BarrierKind, Option<SeqcountOp>, Span, &[Expr]),
) {
    expr.walk(&mut |e| {
        if let ExprKind::Call { callee, args } = &e.kind {
            if let Some(name) = callee.as_ident() {
                match kmodel::classify_call(name) {
                    CallSemantics::Barrier(kind) => f(kind, None, e.span, args),
                    CallSemantics::Seqcount(op) => f(op.barrier(), Some(op), e.span, args),
                    _ => {}
                }
            }
        }
    });
}

/// Find fully-ordered atomic RMW calls (for the `pair_with_atomics`
/// extension).
fn find_full_atomic_calls(expr: &Expr, f: &mut impl FnMut(&str, Span, &[Expr])) {
    expr.walk(&mut |e| {
        if let ExprKind::Call { callee, args } = &e.kind {
            if let Some(name) = callee.as_ident() {
                if let CallSemantics::Atomic(sem) = kmodel::classify_call(name) {
                    if sem.strength == kmodel::BarrierStrength::Full && (sem.reads || sem.writes) {
                        f(name, e.span, args);
                    }
                }
            }
        }
    });
}

/// Classify how a node bounds a window.
fn classify_node(cfg: &Cfg, node: NodeId) -> NodeClass {
    let Some(expr) = cfg.node(node).kind.expr() else {
        return NodeClass::Plain;
    };
    let mut class = NodeClass::Plain;
    expr.walk(&mut |e| {
        if let ExprKind::Call { callee, .. } = &e.kind {
            if let Some(name) = callee.as_ident() {
                match kmodel::classify_call(name) {
                    CallSemantics::Barrier(_) | CallSemantics::Seqcount(_) => {
                        class = NodeClass::Barrier;
                    }
                    CallSemantics::WakeUp if !matches!(class, NodeClass::Barrier) => {
                        class = NodeClass::Wakeup(name.to_string());
                    }
                    CallSemantics::Atomic(sem) if sem.strength == kmodel::BarrierStrength::Full => {
                        if matches!(class, NodeClass::Plain) {
                            class = NodeClass::FullAtomic;
                        }
                    }
                    _ => {}
                }
            }
        }
    });
    class
}

#[allow(clippy::too_many_arguments)]
fn build_site(
    fb: &FoundBarrier,
    lowered: &LoweredFile<'_>,
    envs: &[TypeEnv<'_>],
    summaries: &HashMap<String, Vec<RawAccess>>,
    callers: &HashMap<String, Vec<(usize, NodeId)>>,
    config: &AnalysisConfig,
    file: usize,
    parsed: &ParsedFile,
    ctr: &mut ExtractCounters,
    window_calls: &mut Vec<WindowCall>,
) -> BarrierSite {
    let cfg = &lowered.cfgs[fb.func];
    let env = &envs[fb.func];
    let fname = &lowered.functions[fb.func].sig.name;

    // Window size by barrier role (the paper keys this off write vs read
    // barriers; full barriers get the wider read window).
    let write_only = fb.kind.is_write_side() && !fb.kind.is_read_side();
    let window = config.window_for(write_only);

    let mut accesses: Vec<Access> = Vec::new();
    let mut wakeup_after: Option<u32> = None;
    let mut adjacent: Option<AdjacentBarrier> = None;

    // The barrier primitive's own access (store_release & co, seqcount
    // counter accesses).
    push_implied_accesses(fb, env, &mut accesses, config);
    // For seqcount calls, the implied access *is* the counter.
    let counter = if fb.seqcount.is_some() {
        accesses.first().map(|a| a.object.clone())
    } else {
        None
    };

    // Accesses in the barrier's own statement that are not part of the
    // barrier call (e.g. `v = read_seqcount_begin(s)` — v is usually a
    // local, but be thorough).
    for raw in accesses_in_node(&cfg.node(fb.node).kind, env) {
        if !fb.call_span.contains(raw.span) {
            push_access(&mut accesses, raw, Side::Before, 1, false, config);
        }
    }

    // Walk both directions.
    for (dir, side) in [(Dir::Bwd, Side::Before), (Dir::Fwd, Side::After)] {
        ctr.windows_swept += 1;
        walk(
            cfg,
            fb.node,
            dir,
            window,
            |node, dist| match classify_node(cfg, node) {
                NodeClass::Barrier => Step::Prune,
                NodeClass::FullAtomic => {
                    collect_node(
                        cfg,
                        node,
                        env,
                        side,
                        dist,
                        summaries,
                        config,
                        &mut accesses,
                        ctr,
                        window_calls,
                    );
                    if dist == 1 {
                        if let Some(name) = full_atomic_callee_name(cfg, node) {
                            adjacent.get_or_insert(AdjacentBarrier {
                                side,
                                callee: name,
                                span: cfg.node(node).span,
                            });
                        }
                    }
                    Step::Stop
                }
                NodeClass::Wakeup(name) => {
                    if side == Side::After {
                        wakeup_after = Some(wakeup_after.map_or(dist, |d| d.min(dist)));
                    }
                    collect_node(
                        cfg,
                        node,
                        env,
                        side,
                        dist,
                        summaries,
                        config,
                        &mut accesses,
                        ctr,
                        window_calls,
                    );
                    if dist == 1 {
                        adjacent.get_or_insert(AdjacentBarrier {
                            side,
                            callee: name,
                            span: cfg.node(node).span,
                        });
                    }
                    Step::Stop
                }
                NodeClass::Plain => {
                    collect_node(
                        cfg,
                        node,
                        env,
                        side,
                        dist,
                        summaries,
                        config,
                        &mut accesses,
                        ctr,
                        window_calls,
                    );
                    Step::Continue
                }
            },
        );
    }

    // Adjacent explicit barrier (distance 1) — the walk prunes barrier
    // nodes before visiting, so check direct neighbours explicitly.
    if adjacent.is_none() {
        for (neighbors, side) in [
            (&cfg.node(fb.node).preds, Side::Before),
            (&cfg.node(fb.node).succs, Side::After),
        ] {
            for &n in neighbors.iter() {
                if matches!(classify_node(cfg, n), NodeClass::Barrier) {
                    if let Some(name) = barrier_callee_name(cfg, n) {
                        adjacent = Some(AdjacentBarrier {
                            side,
                            callee: name,
                            span: cfg.node(n).span,
                        });
                    }
                }
            }
        }
    }

    // Caller expansion: accesses around same-file call sites of this
    // function (§4.2: a barrier may order accesses of immediate callers).
    if config.caller_expansion {
        if let Some(call_sites) = callers.get(fname.as_str()) {
            for &(caller_fi, call_node) in call_sites {
                let ccfg = &lowered.cfgs[caller_fi];
                let cenv = &envs[caller_fi];
                for (dir, side) in [(Dir::Bwd, Side::Before), (Dir::Fwd, Side::After)] {
                    ctr.windows_swept += 1;
                    walk(
                        ccfg,
                        call_node,
                        dir,
                        window.saturating_sub(1),
                        |node, dist| match classify_node(ccfg, node) {
                            NodeClass::Barrier => Step::Prune,
                            NodeClass::FullAtomic | NodeClass::Wakeup(_) => Step::Stop,
                            NodeClass::Plain => {
                                for raw in accesses_in_node(&ccfg.node(node).kind, cenv) {
                                    push_access(&mut accesses, raw, side, dist + 1, true, config);
                                }
                                Step::Continue
                            }
                        },
                    );
                }
            }
        }
    }

    let line = parsed.map.lookup(fb.call_span.lo).line;
    BarrierSite {
        id: BarrierId(0), // assigned globally by the engine
        kind: fb.kind,
        seqcount: fb.seqcount,
        from_atomic: fb.from_atomic.clone(),
        site: SiteRef {
            file,
            file_name: parsed.map.file.clone(),
            function: fname.to_string(),
            node: fb.node,
            span: fb.call_span,
            line,
        },
        accesses,
        counter,
        wakeup_after,
        adjacent_full_barrier: adjacent,
    }
}

/// Name of the full-barrier atomic call in a node, for adjacency reporting.
fn full_atomic_callee_name(cfg: &Cfg, node: NodeId) -> Option<String> {
    let expr = cfg.node(node).kind.expr()?;
    let mut name = None;
    expr.walk(&mut |e| {
        if name.is_none() {
            if let Some(n) = e.call_name() {
                if matches!(
                    kmodel::classify_call(n),
                    CallSemantics::Atomic(sem) if sem.strength == kmodel::BarrierStrength::Full
                ) {
                    name = Some(n.to_string());
                }
            }
        }
    });
    name
}

/// Name of the barrier call in a node, for adjacency reporting.
fn barrier_callee_name(cfg: &Cfg, node: NodeId) -> Option<String> {
    let expr = cfg.node(node).kind.expr()?;
    let mut name = None;
    expr.walk(&mut |e| {
        if name.is_none() {
            if let Some(n) = e.call_name() {
                if matches!(
                    kmodel::classify_call(n),
                    CallSemantics::Barrier(_) | CallSemantics::Seqcount(_)
                ) {
                    name = Some(n.to_string());
                }
            }
        }
    });
    name
}

/// The barrier primitive's own memory accesses (§4.1: store/load variants
/// and seqcount counter bumps).
fn push_implied_accesses(
    fb: &FoundBarrier,
    env: &TypeEnv<'_>,
    accesses: &mut Vec<Access>,
    config: &AnalysisConfig,
) {
    if let Some(name) = &fb.from_atomic {
        // A fully-ordered RMW acts as a barrier *at* the access: its
        // target is orderable against both sides.
        let call = Expr {
            kind: ExprKind::Call {
                callee: Box::new(Expr {
                    kind: ExprKind::Ident(name.as_str().into()),
                    span: fb.call_span,
                }),
                args: fb.args.clone(),
            },
            span: fb.call_span,
        };
        for raw in crate::extract::accesses_in_expr(&call, env) {
            push_access(accesses, raw.clone(), Side::Before, 1, false, config);
            push_access(accesses, raw, Side::After, 1, false, config);
        }
        return;
    }
    if let Some(op) = fb.seqcount {
        // Counter access: read or read-modify-write of the seqcount.
        let side = if op.access_before_barrier() {
            Side::Before
        } else {
            Side::After
        };
        if let Some(target) = fb.args.first() {
            for raw in crate::extract::accesses_in_expr(&wrap_counter_access(target, op), env) {
                push_access(accesses, raw, side, 1, false, config);
            }
        }
        return;
    }
    match fb.kind.implied_access() {
        ImpliedAccess::None => {}
        ImpliedAccess::StoreBefore | ImpliedAccess::StoreAfter | ImpliedAccess::LoadBefore => {
            // extract.rs already interprets the primitive's args; but here
            // we must fix the SIDE relative to the fence, which extraction
            // cannot know.
            let side = match fb.kind.implied_access() {
                ImpliedAccess::StoreBefore | ImpliedAccess::LoadBefore => Side::Before,
                _ => Side::After,
            };
            let call = Expr {
                kind: ExprKind::Call {
                    callee: Box::new(Expr {
                        kind: ExprKind::Ident(fb.kind.name().into()),
                        span: fb.call_span,
                    }),
                    args: fb.args.clone(),
                },
                span: fb.call_span,
            };
            for raw in crate::extract::accesses_in_expr(&call, env) {
                push_access(accesses, raw, side, 1, false, config);
            }
        }
    }
}

/// Re-synthesize the seqcount call so extraction interprets the counter
/// access (read for readers, read-modify-write for writers).
fn wrap_counter_access(target: &Expr, op: SeqcountOp) -> Expr {
    let name = if op.writes_counter() {
        "write_seqcount_begin"
    } else {
        "read_seqcount_begin"
    };
    Expr {
        kind: ExprKind::Call {
            callee: Box::new(Expr {
                kind: ExprKind::Ident(name.into()),
                span: target.span,
            }),
            args: vec![target.clone()],
        },
        span: target.span,
    }
}

#[allow(clippy::too_many_arguments)]
fn collect_node(
    cfg: &Cfg,
    node: NodeId,
    env: &TypeEnv<'_>,
    side: Side,
    dist: u32,
    summaries: &HashMap<String, Vec<RawAccess>>,
    config: &AnalysisConfig,
    accesses: &mut Vec<Access>,
    ctr: &mut ExtractCounters,
    window_calls: &mut Vec<WindowCall>,
) {
    for raw in accesses_in_node(&cfg.node(node).kind, env) {
        push_access(accesses, raw, side, dist, false, config);
    }
    if let Some(expr) = cfg.node(node).kind.expr() {
        for (name, _) in plain_calls_in_expr(expr) {
            // Record every plain call for the corpus-global summary
            // composition pass (it resolves callees across files).
            window_calls.push(WindowCall {
                callee: name.clone(),
                side,
                distance: dist,
            });
            // Same-file ±1 callee expansion (§4.2).
            if config.callee_expansion {
                if let Some(summary) = summaries.get(&name) {
                    ctr.callee_expansions += 1;
                    for raw in summary {
                        push_access(accesses, raw.clone(), side, dist, true, config);
                    }
                }
            }
        }
    }
}

fn push_access(
    accesses: &mut Vec<Access>,
    raw: RawAccess,
    side: Side,
    distance: u32,
    cross_function: bool,
    config: &AnalysisConfig,
) {
    if config.is_generic_type(&raw.object.strukt) {
        return;
    }
    accesses.push(Access {
        object: raw.object,
        kind: raw.kind,
        side,
        distance,
        span: raw.span,
        annotated: raw.annotated,
        cross_function,
        via_calls: Vec::new(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str) -> FileAnalysis {
        let parsed = ckit::parse_string("t.c", src).unwrap();
        assert!(parsed.errors.is_empty(), "{:?}", parsed.errors);
        analyze_file(0, &parsed, &AnalysisConfig::default())
    }

    const LISTING1: &str = r#"
struct my_struct { int init; int y; };
void reader(struct my_struct *a) {
    if (!a->init)
        return;
    smp_rmb();
    f(a->y);
}
void writer(struct my_struct *b) {
    b->y = 1;
    smp_wmb();
    b->init = 1;
}
"#;

    #[test]
    fn finds_both_barriers_in_listing1() {
        let fa = analyze(LISTING1);
        assert_eq!(fa.sites.len(), 2);
        assert_eq!(fa.sites[0].kind, BarrierKind::Rmb);
        assert_eq!(fa.sites[0].site.function, "reader");
        assert_eq!(fa.sites[1].kind, BarrierKind::Wmb);
        assert_eq!(fa.sites[1].site.function, "writer");
    }

    #[test]
    fn listing1_reader_accesses() {
        let fa = analyze(LISTING1);
        let reader = &fa.sites[0];
        let init = SharedObject::new("my_struct", "init");
        let y = SharedObject::new("my_struct", "y");
        let init_acc = reader.accesses.iter().find(|a| a.object == init).unwrap();
        assert_eq!(init_acc.side, Side::Before);
        assert_eq!(init_acc.kind, AccessKind::Read);
        let y_acc = reader.accesses.iter().find(|a| a.object == y).unwrap();
        assert_eq!(y_acc.side, Side::After);
        assert!(reader.orders(&init, &y));
    }

    #[test]
    fn listing1_writer_accesses() {
        let fa = analyze(LISTING1);
        let writer = &fa.sites[1];
        let init = SharedObject::new("my_struct", "init");
        let y = SharedObject::new("my_struct", "y");
        let y_acc = writer.accesses.iter().find(|a| a.object == y).unwrap();
        assert_eq!((y_acc.side, y_acc.kind), (Side::Before, AccessKind::Write));
        let init_acc = writer.accesses.iter().find(|a| a.object == init).unwrap();
        assert_eq!(
            (init_acc.side, init_acc.kind),
            (Side::After, AccessKind::Write)
        );
    }

    #[test]
    fn distances_count_statements() {
        let src = r#"
struct s { int a; int b; int c; };
void w(struct s *p) {
    p->a = 1;
    p->b = 2;
    smp_wmb();
    p->c = 3;
}
"#;
        let fa = analyze(src);
        let site = &fa.sites[0];
        assert_eq!(site.distance_of(&SharedObject::new("s", "b")), Some(1));
        assert_eq!(site.distance_of(&SharedObject::new("s", "a")), Some(2));
        assert_eq!(site.distance_of(&SharedObject::new("s", "c")), Some(1));
    }

    #[test]
    fn write_window_bounds_exploration() {
        // 7 statements before the barrier; only the closest 5 are seen.
        let src = r#"
struct s { int f0; int f1; int f2; int f3; int f4; int f5; int f6; int done; };
void w(struct s *p) {
    p->f0 = 1;
    p->f1 = 1;
    p->f2 = 1;
    p->f3 = 1;
    p->f4 = 1;
    p->f5 = 1;
    p->f6 = 1;
    smp_wmb();
    p->done = 1;
}
"#;
        let fa = analyze(src);
        let site = &fa.sites[0];
        assert!(site.distance_of(&SharedObject::new("s", "f2")).is_some());
        assert!(site.distance_of(&SharedObject::new("s", "f1")).is_none());
        assert!(site.distance_of(&SharedObject::new("s", "f0")).is_none());
    }

    #[test]
    fn read_window_is_wide() {
        let mut body = String::new();
        for i in 0..30 {
            body.push_str(&format!("    consume({i});\n"));
        }
        let src = format!(
            "struct s {{ int flag; int data; }};\nvoid r(struct s *p) {{\n    if (!p->flag) return;\n    smp_rmb();\n{body}    use_it(p->data);\n}}"
        );
        let fa = analyze(&src);
        let site = &fa.sites[0];
        // data is ~31 statements after the rmb — inside the 50 window.
        assert!(site.distance_of(&SharedObject::new("s", "data")).is_some());
    }

    #[test]
    fn window_stops_at_other_barrier() {
        let src = r#"
struct s { int a; int b; int c; };
void w(struct s *p) {
    p->a = 1;
    smp_wmb();
    p->b = 2;
    smp_wmb();
    p->c = 3;
}
"#;
        let fa = analyze(src);
        let first = &fa.sites[0];
        // First barrier sees a and b but NOT c (blocked by second barrier).
        assert!(first.distance_of(&SharedObject::new("s", "a")).is_some());
        assert!(first.distance_of(&SharedObject::new("s", "b")).is_some());
        assert!(first.distance_of(&SharedObject::new("s", "c")).is_none());
    }

    #[test]
    fn window_stops_at_full_atomic() {
        let src = r#"
struct s { atomic_t refs; int a; int b; };
void w(struct s *p) {
    smp_wmb();
    p->a = 1;
    atomic_inc_and_test(&p->refs);
    p->b = 2;
}
"#;
        let fa = analyze(src);
        let site = &fa.sites[0];
        assert!(site.distance_of(&SharedObject::new("s", "a")).is_some());
        // The full atomic's own access is seen...
        assert!(site.distance_of(&SharedObject::new("s", "refs")).is_some());
        // ...but nothing beyond it.
        assert!(site.distance_of(&SharedObject::new("s", "b")).is_none());
    }

    #[test]
    fn relaxed_atomic_does_not_stop() {
        let src = r#"
struct s { atomic_t refs; int a; int b; };
void w(struct s *p) {
    smp_wmb();
    p->a = 1;
    atomic_inc(&p->refs);
    p->b = 2;
}
"#;
        let fa = analyze(src);
        let site = &fa.sites[0];
        assert!(site.distance_of(&SharedObject::new("s", "b")).is_some());
    }

    #[test]
    fn wakeup_detected_after_write_barrier() {
        let src = r#"
struct d { int got_token; struct task *task; };
void f(struct d *data) {
    data->got_token = 1;
    smp_wmb();
    wake_up_process(data->task);
}
"#;
        let fa = analyze(src);
        let site = &fa.sites[0];
        assert_eq!(site.wakeup_after, Some(1));
        let adj = site.adjacent_full_barrier.as_ref().unwrap();
        assert_eq!(adj.callee, "wake_up_process");
        assert_eq!(adj.side, Side::After);
    }

    #[test]
    fn adjacent_double_barrier_detected() {
        let src = r#"
struct s { int a; int b; };
void f(struct s *p) {
    p->a = 1;
    smp_wmb();
    smp_mb();
    p->b = 2;
}
"#;
        let fa = analyze(src);
        let first = &fa.sites[0];
        let adj = first.adjacent_full_barrier.as_ref().unwrap();
        assert_eq!(adj.callee, "smp_mb");
    }

    #[test]
    fn store_release_implied_write_after() {
        let src = r#"
struct s { int data; int flag; };
void w(struct s *p) {
    p->data = 42;
    smp_store_release(&p->flag, 1);
}
"#;
        let fa = analyze(src);
        let site = &fa.sites[0];
        assert_eq!(site.kind, BarrierKind::StoreRelease);
        let flag = site
            .accesses
            .iter()
            .find(|a| a.object == SharedObject::new("s", "flag"))
            .unwrap();
        assert_eq!((flag.side, flag.kind), (Side::After, AccessKind::Write));
        assert_eq!(flag.distance, 1);
        let data = site
            .accesses
            .iter()
            .find(|a| a.object == SharedObject::new("s", "data"))
            .unwrap();
        assert_eq!((data.side, data.kind), (Side::Before, AccessKind::Write));
    }

    #[test]
    fn load_acquire_implied_read_before() {
        let src = r#"
struct s { int data; int flag; };
int r(struct s *p) {
    if (!smp_load_acquire(&p->flag))
        return 0;
    return p->data;
}
"#;
        let fa = analyze(src);
        let site = &fa.sites[0];
        assert_eq!(site.kind, BarrierKind::LoadAcquire);
        let flag = site
            .accesses
            .iter()
            .find(|a| a.object == SharedObject::new("s", "flag"))
            .unwrap();
        assert_eq!((flag.side, flag.kind), (Side::Before, AccessKind::Read));
        let data = site
            .accesses
            .iter()
            .find(|a| a.object == SharedObject::new("s", "data"))
            .unwrap();
        assert_eq!(data.side, Side::After);
    }

    #[test]
    fn seqcount_counter_sides() {
        let src = r#"
static seqcount_t seq;
struct d { int v; };
void w(struct d *p) {
    write_seqcount_begin(&seq);
    p->v = 1;
    write_seqcount_end(&seq);
}
"#;
        let fa = analyze(src);
        assert_eq!(fa.sites.len(), 2);
        let begin = &fa.sites[0];
        assert_eq!(begin.seqcount, Some(SeqcountOp::WriteBegin));
        let ctr = begin
            .accesses
            .iter()
            .find(|a| a.object == SharedObject::global("seq"))
            .unwrap();
        assert_eq!(ctr.side, Side::Before);
        let end = &fa.sites[1];
        assert_eq!(end.seqcount, Some(SeqcountOp::WriteEnd));
        let ctr = end
            .accesses
            .iter()
            .filter(|a| a.object == SharedObject::global("seq"))
            .find(|a| a.side == Side::After)
            .unwrap();
        assert_eq!(ctr.distance, 1);
    }

    #[test]
    fn callee_expansion_pulls_helper_accesses() {
        let src = r#"
struct s { int data; int flag; };
static void fill(struct s *p) {
    p->data = 7;
}
void w(struct s *p) {
    fill(p);
    smp_wmb();
    p->flag = 1;
}
"#;
        let fa = analyze(src);
        let site = fa.sites.iter().find(|s| s.site.function == "w").unwrap();
        let data = site
            .accesses
            .iter()
            .find(|a| a.object == SharedObject::new("s", "data"))
            .expect("callee access merged");
        assert!(data.cross_function);
        assert_eq!(data.side, Side::Before);
    }

    #[test]
    fn callee_expansion_disabled_by_config() {
        let src = r#"
struct s { int data; int flag; };
static void fill(struct s *p) { p->data = 7; }
void w(struct s *p) {
    fill(p);
    smp_wmb();
    p->flag = 1;
}
"#;
        let parsed = ckit::parse_string("t.c", src).unwrap();
        let config = AnalysisConfig {
            callee_expansion: false,
            ..Default::default()
        };
        let fa = analyze_file(0, &parsed, &config);
        let site = fa.sites.iter().find(|s| s.site.function == "w").unwrap();
        assert!(site
            .accesses
            .iter()
            .all(|a| a.object != SharedObject::new("s", "data")));
    }

    #[test]
    fn caller_expansion_sees_surrounding_accesses() {
        let src = r#"
struct s { int data; int flag; };
static void publish(struct s *p) {
    smp_wmb();
    p->flag = 1;
}
void outer(struct s *p) {
    p->data = 9;
    publish(p);
}
"#;
        let fa = analyze(src);
        let site = &fa.sites[0];
        let data = site
            .accesses
            .iter()
            .find(|a| a.object == SharedObject::new("s", "data"))
            .expect("caller access merged");
        assert!(data.cross_function);
        assert_eq!(data.side, Side::Before);
    }

    #[test]
    fn barrier_line_numbers() {
        let fa = analyze(LISTING1);
        assert_eq!(fa.sites[0].site.line, 6); // smp_rmb() line in LISTING1
        assert_eq!(fa.sites[1].site.line, 11);
    }

    #[test]
    fn rcu_publish_subscribe_modeled_as_release_acquire() {
        let src = r#"
struct item { int a; };
struct gate { struct item *cur; };
void install(struct gate *g, struct item *it, int v) {
    it->a = v;
    rcu_assign_pointer(g->cur, it);
}
int lookup(struct gate *g) {
    struct item *it;
    rcu_read_lock();
    it = rcu_dereference(g->cur);
    if (!it)
        return 0;
    return it->a;
}
"#;
        let fa = analyze(src);
        assert_eq!(fa.sites.len(), 2);
        let wr = &fa.sites[0];
        assert_eq!(wr.kind, BarrierKind::StoreRelease);
        let cur = wr
            .accesses
            .iter()
            .find(|a| a.object == SharedObject::new("gate", "cur"))
            .unwrap();
        assert_eq!((cur.side, cur.kind), (Side::After, AccessKind::Write));
        let a_field = wr
            .accesses
            .iter()
            .find(|a| a.object == SharedObject::new("item", "a"))
            .unwrap();
        assert_eq!(a_field.side, Side::Before);

        let rd = &fa.sites[1];
        assert_eq!(rd.kind, BarrierKind::LoadAcquire);
        let cur = rd
            .accesses
            .iter()
            .find(|a| a.object == SharedObject::new("gate", "cur"))
            .unwrap();
        assert_eq!((cur.side, cur.kind), (Side::Before, AccessKind::Read));
        // The dereferenced item's field is typed through rcu_dereference.
        let a_field = rd
            .accesses
            .iter()
            .find(|a| a.object == SharedObject::new("item", "a"))
            .unwrap();
        assert_eq!(a_field.side, Side::After);
    }

    #[test]
    fn asm_counts_for_distance_but_carries_no_accesses() {
        // A compiler barrier (`asm volatile ::: "memory"`) is NOT a memory
        // barrier: it neither bounds the window nor adds accesses, but it
        // does count as a statement for distances.
        let src = r#"
struct s { int a; int b; };
void w(struct s *p) {
    p->a = 1;
    asm volatile("" : : : "memory");
    smp_wmb();
    p->b = 2;
}
"#;
        let fa = analyze(src);
        assert_eq!(fa.sites.len(), 1, "the asm is not a barrier site");
        let site = &fa.sites[0];
        // `a` is 2 statements away (the asm counts as one).
        assert_eq!(site.distance_of(&SharedObject::new("s", "a")), Some(2));
        assert_eq!(site.distance_of(&SharedObject::new("s", "b")), Some(1));
    }

    #[test]
    fn synchronize_rcu_bounds_window() {
        let src = r#"
struct s { int a; int b; };
void f(struct s *p) {
    smp_wmb();
    p->a = 1;
    synchronize_rcu();
    p->b = 2;
}
"#;
        let fa = analyze(src);
        let site = &fa.sites[0];
        assert!(site.distance_of(&SharedObject::new("s", "a")).is_some());
        assert!(site.distance_of(&SharedObject::new("s", "b")).is_none());
    }

    #[test]
    fn before_after_atomic_found() {
        let src = r#"
struct s { atomic_t c; int x; };
void f(struct s *p) {
    p->x = 1;
    smp_mb__before_atomic();
    atomic_inc(&p->c);
}
"#;
        let fa = analyze(src);
        assert_eq!(fa.sites.len(), 1);
        assert_eq!(fa.sites[0].kind, BarrierKind::BeforeAtomic);
        // The atomic's target is on the After side.
        let c = fa.sites[0]
            .accesses
            .iter()
            .find(|a| a.object == SharedObject::new("s", "c"))
            .unwrap();
        assert_eq!(c.side, Side::After);
    }
}
