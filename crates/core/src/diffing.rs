//! Classifying findings across runs: new / fixed / unchanged.
//!
//! Both `ofence diff` and watch mode go through [`classify`], so the two
//! can never disagree about what counts as a new finding. The inputs are
//! [`FindingRecord`] lists, which can come from a live engine run, a
//! `--json` report (schema ≥ 2), a baseline file, or a ledger entry —
//! [`records_from_json`] accepts all of those document shapes.

use crate::fingerprint::FindingRecord;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::io::Write as _;
use std::path::Path;

/// The outcome of comparing two runs.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DiffReport {
    /// Present now, absent before.
    pub new: Vec<FindingRecord>,
    /// Present before, absent now.
    pub fixed: Vec<FindingRecord>,
    /// Present in both (the current run's copy, so lines are fresh).
    pub unchanged: Vec<FindingRecord>,
}

impl DiffReport {
    pub fn is_clean(&self) -> bool {
        self.new.is_empty() && self.fixed.is_empty()
    }

    /// Human rendering, one block per class, `+`/`-`/`=` prefixed.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "diff: {} new, {} fixed, {} unchanged\n",
            self.new.len(),
            self.fixed.len(),
            self.unchanged.len()
        ));
        for r in &self.new {
            out.push_str(&format!("  + {}  [{}]\n", r.render_line(), r.fingerprint));
        }
        for r in &self.fixed {
            out.push_str(&format!("  - {}  [{}]\n", r.render_line(), r.fingerprint));
        }
        for r in &self.unchanged {
            out.push_str(&format!("  = {}  [{}]\n", r.render_line(), r.fingerprint));
        }
        out
    }

    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "new": self.new,
            "fixed": self.fixed,
            "unchanged": self.unchanged,
            "summary": {
                "new": self.new.len(),
                "fixed": self.fixed.len(),
                "unchanged": self.unchanged.len(),
            },
        })
    }
}

/// Match findings between two runs by fingerprint. Fingerprints are
/// unique within a run (ordinal disambiguation), so set semantics are
/// exact; should duplicates appear anyway, the surplus copies on either
/// side count as new/fixed rather than silently merging.
pub fn classify(old: &[FindingRecord], current: &[FindingRecord]) -> DiffReport {
    let mut old_left: Vec<&FindingRecord> = old.iter().collect();
    let mut report = DiffReport::default();
    for cur in current {
        match old_left
            .iter()
            .position(|o| o.fingerprint == cur.fingerprint)
        {
            Some(i) => {
                old_left.swap_remove(i);
                report.unchanged.push(cur.clone());
            }
            None => report.new.push(cur.clone()),
        }
    }
    report.fixed = old_left.into_iter().cloned().collect();
    sort_records(&mut report.new);
    sort_records(&mut report.fixed);
    sort_records(&mut report.unchanged);
    report
}

fn sort_records(records: &mut [FindingRecord]) {
    records
        .sort_by(|a, b| (&a.file, a.line, &a.fingerprint).cmp(&(&b.file, b.line, &b.fingerprint)));
}

/// Exit-code policy for CI gating (`--fail-on=new|any|none`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailOn {
    /// Fail only on findings not present in the comparison base.
    New,
    /// Fail on any finding at all (the pre-baseline behaviour).
    Any,
    /// Never fail because of findings (reporting only).
    None,
}

impl FailOn {
    pub fn parse(s: &str) -> Result<FailOn, String> {
        match s {
            "new" => Ok(FailOn::New),
            "any" => Ok(FailOn::Any),
            "none" => Ok(FailOn::None),
            other => Err(format!(
                "invalid --fail-on value '{other}' (expected new, any, or none)"
            )),
        }
    }
}

/// A checked-in snapshot of known findings, written by `ofence baseline
/// write` and consumed by `analyze --baseline` / `ofence diff --baseline`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Baseline {
    pub schema_version: u32,
    pub tool_version: String,
    /// The run the baseline was written from.
    pub created_run_id: String,
    pub findings: Vec<FindingRecord>,
}

/// Format version of the baseline file itself.
pub const BASELINE_VERSION: u32 = 1;

impl Baseline {
    pub fn new(run_id: &str, findings: Vec<FindingRecord>) -> Baseline {
        Baseline {
            schema_version: BASELINE_VERSION,
            tool_version: env!("CARGO_PKG_VERSION").to_string(),
            created_run_id: run_id.to_string(),
            findings,
        }
    }
}

/// Write a baseline atomically (tmp + rename, like the disk cache).
pub fn write_baseline(path: &Path, baseline: &Baseline) -> Result<(), String> {
    let text =
        serde_json::to_string_pretty(baseline).map_err(|e| format!("serialize baseline: {e}"))?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }
    let tmp = path.with_extension("tmp");
    let mut f =
        std::fs::File::create(&tmp).map_err(|e| format!("create {}: {e}", tmp.display()))?;
    f.write_all(text.as_bytes())
        .and_then(|_| f.write_all(b"\n"))
        .map_err(|e| format!("write {}: {e}", tmp.display()))?;
    drop(f);
    std::fs::rename(&tmp, path).map_err(|e| format!("rename to {}: {e}", path.display()))
}

/// Load a baseline file, rejecting unknown format versions.
pub fn load_baseline(path: &Path) -> Result<Baseline, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let baseline: Baseline = serde_json::from_str(&text)
        .map_err(|e| format!("{} is not a baseline file: {e}", path.display()))?;
    if baseline.schema_version > BASELINE_VERSION {
        return Err(format!(
            "{}: baseline version {} is newer than this tool understands ({})",
            path.display(),
            baseline.schema_version,
            BASELINE_VERSION
        ));
    }
    Ok(baseline)
}

/// Extract [`FindingRecord`]s from any of the JSON documents ofence
/// emits: a baseline or ledger record (top-level `findings` array), or an
/// `analyze --json` report (schema ≥ 2: `deviations` entries carrying
/// `fingerprint`). Returns an error naming what was missing otherwise.
pub fn records_from_json(doc: &serde_json::Value) -> Result<Vec<FindingRecord>, String> {
    let top = doc
        .as_object()
        .ok_or_else(|| "document is not a JSON object".to_string())?;
    if let Some(findings) = top.get("findings") {
        return Vec::<FindingRecord>::from_value(findings)
            .map_err(|e| format!("malformed findings array: {e}"));
    }
    if let Some(devs) = top.get("deviations").and_then(|d| d.as_array()) {
        let version = top
            .get("schema_version")
            .and_then(|v| v.as_u64())
            .unwrap_or(0);
        if version < 2 {
            return Err(format!(
                "report has schema_version {version}; fingerprints need version 2 \
                 (re-run analyze with this ofence build)"
            ));
        }
        return devs
            .iter()
            .map(|d| {
                let f = d
                    .as_object()
                    .and_then(|m| m.get("finding"))
                    .ok_or_else(|| "deviation entry without finding record".to_string())?;
                FindingRecord::from_value(f).map_err(|e| format!("malformed finding record: {e}"))
            })
            .collect();
    }
    Err("document has neither a 'findings' nor a 'deviations' array".to_string())
}

/// Partition `current` against a baseline's fingerprints: records not in
/// the baseline (the ones `--fail-on=new` gates on) and the count of
/// baselined ones.
pub fn split_by_baseline(
    current: &[FindingRecord],
    baseline: &Baseline,
) -> (Vec<FindingRecord>, usize) {
    let known: HashSet<&str> = baseline
        .findings
        .iter()
        .map(|f| f.fingerprint.as_str())
        .collect();
    let fresh: Vec<FindingRecord> = current
        .iter()
        .filter(|f| !known.contains(f.fingerprint.as_str()))
        .cloned()
        .collect();
    let baselined = current.len() - fresh.len();
    (fresh, baselined)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(fp: &str, file: &str, line: u32) -> FindingRecord {
        FindingRecord {
            fingerprint: fp.to_string(),
            class: "misplaced memory access".to_string(),
            rule: "misplaced-access".to_string(),
            file: file.to_string(),
            function: "f".to_string(),
            line,
            column: 1,
            object: None,
            message: "m".to_string(),
            via_calls: Vec::new(),
        }
    }

    #[test]
    fn classify_partitions_by_fingerprint() {
        let old = vec![rec("aa", "a.c", 3), rec("bb", "a.c", 9)];
        let new = vec![rec("bb", "a.c", 109), rec("cc", "b.c", 4)];
        let d = classify(&old, &new);
        assert_eq!(d.new.len(), 1);
        assert_eq!(d.new[0].fingerprint, "cc");
        assert_eq!(d.fixed.len(), 1);
        assert_eq!(d.fixed[0].fingerprint, "aa");
        assert_eq!(d.unchanged.len(), 1);
        // The unchanged record is the *current* copy — fresh line number.
        assert_eq!(d.unchanged[0].line, 109);
        assert!(!d.is_clean());
        assert!(classify(&new, &new).is_clean());
    }

    #[test]
    fn classify_keeps_duplicate_surplus() {
        let old = vec![rec("aa", "a.c", 1)];
        let new = vec![rec("aa", "a.c", 1), rec("aa", "a.c", 5)];
        let d = classify(&old, &new);
        assert_eq!(d.unchanged.len(), 1);
        assert_eq!(d.new.len(), 1);
    }

    #[test]
    fn render_and_json_agree_on_counts() {
        let d = classify(&[rec("aa", "a.c", 1)], &[rec("bb", "b.c", 2)]);
        let text = d.render();
        assert!(text.starts_with("diff: 1 new, 1 fixed, 0 unchanged"));
        assert!(text.contains("+ b.c:2:"));
        assert!(text.contains("- a.c:1:"));
        let j = d.to_json();
        assert_eq!(j["summary"]["new"], 1);
        assert_eq!(j["summary"]["fixed"], 1);
    }

    #[test]
    fn fail_on_parses() {
        assert_eq!(FailOn::parse("new"), Ok(FailOn::New));
        assert_eq!(FailOn::parse("any"), Ok(FailOn::Any));
        assert_eq!(FailOn::parse("none"), Ok(FailOn::None));
        assert!(FailOn::parse("sometimes").is_err());
    }

    #[test]
    fn baseline_roundtrip() {
        let dir = std::env::temp_dir().join(format!("ofence-diff-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        let b = Baseline::new("run-00", vec![rec("aa", "a.c", 1)]);
        write_baseline(&path, &b).unwrap();
        let back = load_baseline(&path).unwrap();
        assert_eq!(back.created_run_id, "run-00");
        assert_eq!(back.findings, b.findings);
        // And the same file parses through records_from_json.
        let doc: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(records_from_json(&doc).unwrap(), b.findings);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn records_from_json_rejects_v1_reports() {
        let doc = serde_json::json!({"schema_version": 1, "deviations": []});
        let err = records_from_json(&doc).unwrap_err();
        assert!(err.contains("schema_version 1"), "{err}");
        let doc = serde_json::json!({"stats": {}});
        assert!(records_from_json(&doc).is_err());
    }

    #[test]
    fn split_by_baseline_finds_fresh() {
        let b = Baseline::new("run-00", vec![rec("aa", "a.c", 1)]);
        let current = vec![rec("aa", "a.c", 31), rec("bb", "a.c", 40)];
        let (fresh, _) = split_by_baseline(&current, &b);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].fingerprint, "bb");
    }
}
