//! Analysis configuration — the paper's tunables plus ablation switches.

use serde::{Deserialize, Serialize};

/// Tunable parameters of the analysis.
///
/// Defaults are the paper's choices (§4.2): explore 5 statements around
/// write barriers and 50 around read barriers, require 2 common shared
/// objects to pair, detect implicit IPC barriers, expand one call level.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// Statements explored on each side of a write barrier.
    pub write_window: u32,
    /// Statements explored on each side of a read barrier.
    pub read_window: u32,
    /// Minimum number of common shared objects required to pair two
    /// barriers.
    pub min_shared_objects: usize,
    /// Treat wake-up/IPC calls after a write barrier as implicit read
    /// barriers and leave such writers unpaired (§4.2).
    pub implicit_ipc: bool,
    /// Merge accesses of same-file callees at call sites (±1 call level,
    /// §4.2).
    pub callee_expansion: bool,
    /// Inter-procedural summary composition depth: merge accesses of
    /// (transitive) callees reached through up to this many call edges,
    /// across files, using composed function summaries. `0` disables the
    /// pass entirely (paper behaviour: only the same-file ±1 expansion
    /// above applies); `2` lets a barrier in `caller.c` order an access
    /// two callee levels away in another translation unit. Cycles in the
    /// call graph are collapsed via SCC condensation, so any depth
    /// terminates.
    pub ipa_depth: u32,
    /// Also look at immediate same-file callers of the barrier's function.
    pub caller_expansion: bool,
    /// Weight candidate pairings by the product of object distances
    /// (Algorithm 1). Disabling is an ablation: first match wins.
    pub distance_weighting: bool,
    /// Exclude "generic" container types (list heads etc.) from pairing
    /// objects. The paper reports these cause most incorrect pairings;
    /// off by default to match the published false-positive behaviour.
    pub filter_generic_types: bool,
    /// §6.4's proposed extension: also treat fully-ordered atomic RMW
    /// operations (`atomic_dec_and_test`, `test_and_set_bit`, …) as
    /// pairable barrier sites, so barriers that synchronize with
    /// atomics-based code get paired. Off by default (paper behaviour).
    pub pair_with_atomics: bool,
    /// Missing-barrier detection: for each write barrier Algorithm 1
    /// leaves unpaired (no match, not implicit IPC), look for fence-less
    /// reader functions that load the same ordered objects and report the
    /// absent read fence. Off by default — it goes beyond the paper's
    /// deviation list.
    pub detect_missing: bool,
    /// Outlier rule for the missing-barrier detector: only report a
    /// fence-less reader when the guard load conditionally dominates the
    /// dependent loads and sibling readers of the same objects keep their
    /// fence (majority evidence that the fence — not the writer's barrier
    /// — is the anomaly). Disabling is an ablation: every object overlap
    /// is reported.
    pub outlier_rule: bool,
    /// Use reaching-definitions evidence for the racy re-read checker
    /// (deviation #3): a wrong-side load only counts as a re-read when
    /// the first load still reaches it (no intervening store to the same
    /// object kills it). Disabling falls back to the window-count
    /// heuristic that flags any read on both sides.
    pub dataflow_reread: bool,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            write_window: 5,
            read_window: 50,
            min_shared_objects: 2,
            implicit_ipc: true,
            callee_expansion: true,
            ipa_depth: 0,
            caller_expansion: true,
            distance_weighting: true,
            filter_generic_types: false,
            pair_with_atomics: false,
            detect_missing: false,
            outlier_rule: true,
            dataflow_reread: true,
        }
    }
}

impl AnalysisConfig {
    /// Window for a barrier playing the given role.
    pub fn window_for(&self, write_side: bool) -> u32 {
        if write_side {
            self.write_window
        } else {
            self.read_window
        }
    }

    /// Struct names considered "generic" when [`Self::filter_generic_types`]
    /// is on — containers shared by unrelated subsystems.
    pub fn is_generic_type(&self, strukt: &str) -> bool {
        self.filter_generic_types
            && matches!(
                strukt,
                "list_head"
                    | "hlist_head"
                    | "hlist_node"
                    | "rb_node"
                    | "rb_root"
                    | "llist_node"
                    | "llist_head"
                    | "kref"
                    | "refcount_struct"
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = AnalysisConfig::default();
        assert_eq!(c.write_window, 5);
        assert_eq!(c.read_window, 50);
        assert_eq!(c.min_shared_objects, 2);
        assert!(c.implicit_ipc);
        // Summary composition is an extension: off by default so the
        // default pipeline matches the paper exactly.
        assert_eq!(c.ipa_depth, 0);
    }

    #[test]
    fn window_selection() {
        let c = AnalysisConfig::default();
        assert_eq!(c.window_for(true), 5);
        assert_eq!(c.window_for(false), 50);
    }

    #[test]
    fn generic_filter_respects_flag() {
        let mut c = AnalysisConfig::default();
        assert!(!c.is_generic_type("list_head"));
        c.filter_generic_types = true;
        assert!(c.is_generic_type("list_head"));
        assert!(!c.is_generic_type("sock_reuseport"));
    }
}
