//! SARIF 2.1.0 export (`analyze --sarif-out FILE`).
//!
//! One `run` per analysis, one `result` per deviation, with the stable
//! content-based fingerprint carried as
//! `partialFingerprints["ofenceFingerprint/v1"]` — the key GitHub code
//! scanning and other SARIF consumers use to track a finding across
//! commits even when its line moves. Mapping details are documented in
//! `docs/SCHEMA.md`.

use crate::engine::AnalysisResult;
use crate::fingerprint::{finding_records, FindingRecord};

/// The `partialFingerprints` key carrying the ofence fingerprint. Keep
/// the literal in sync with [`FINGERPRINT_VERSION`] (asserted in tests).
pub const PARTIAL_FINGERPRINT_KEY: &str = "ofenceFingerprint/v1";

/// The SARIF spec version emitted.
pub const SARIF_VERSION: &str = "2.1.0";
/// Canonical schema URI for SARIF 2.1.0 documents.
pub const SARIF_SCHEMA: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

/// Every rule ofence can emit, with the short description SARIF viewers
/// show next to results. Order is stable (new rules append).
const RULES: &[(&str, &str)] = &[
    (
        "misplaced-access",
        "Memory access on the wrong side of a paired barrier",
    ),
    (
        "wrong-barrier-type",
        "Barrier kind does not match its pairing partner",
    ),
    (
        "repeated-read",
        "Shared variable re-read across a read barrier",
    ),
    (
        "unneeded-barrier",
        "Barrier ordering already provided by a callee",
    ),
    ("missing-once", "Shared access lacking READ_ONCE/WRITE_ONCE"),
    (
        "missing-barrier",
        "Reader lacking the fence its pairing writers have",
    ),
];

fn result_value(rec: &FindingRecord) -> serde_json::Value {
    let mut v = serde_json::json!({
        "ruleId": rec.rule,
        "level": "warning",
        "message": { "text": rec.message },
        "locations": [{
            "physicalLocation": {
                "artifactLocation": { "uri": rec.file },
                "region": {
                    "startLine": rec.line,
                    "startColumn": rec.column,
                },
            },
            "logicalLocations": [{
                "name": rec.function,
                "kind": "function",
            }],
        }],
        "partialFingerprints": {
            "ofenceFingerprint/v1": rec.fingerprint,
        },
    });
    // Inter-procedural provenance rides in `properties` so it never
    // perturbs partialFingerprints-based tracking across commits.
    if !rec.via_calls.is_empty() {
        if let serde_json::Value::Object(ref mut obj) = v {
            obj.insert(
                "properties".to_string(),
                serde_json::json!({ "viaCalls": rec.via_calls }),
            );
        }
    }
    v
}

/// Render an analysis result as a SARIF 2.1.0 document. Deviations (the
/// triage surface `analyze` reports and exits on) become `results`;
/// run-level provenance (run id, schema version) rides in
/// `runs[0].properties`.
pub fn to_sarif(result: &AnalysisResult) -> serde_json::Value {
    let records = finding_records(&result.deviations, &result.sites, &result.files);
    let rules: Vec<serde_json::Value> = RULES
        .iter()
        .map(|(id, desc)| {
            serde_json::json!({
                "id": id,
                "shortDescription": { "text": desc },
            })
        })
        .collect();
    let results: Vec<serde_json::Value> = records.iter().map(result_value).collect();
    serde_json::json!({
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "ofence",
                    "version": env!("CARGO_PKG_VERSION"),
                    "informationUri": "https://example.invalid/ofence",
                    "rules": rules,
                },
            },
            "results": results,
            "properties": {
                "runId": result.run_id,
                "schemaVersion": crate::json::SCHEMA_VERSION,
            },
        }],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalysisConfig;
    use crate::engine::{Engine, SourceFile};
    use crate::fingerprint::FINGERPRINT_VERSION;

    fn buggy_result() -> AnalysisResult {
        Engine::new(AnalysisConfig::default()).analyze(&[SourceFile::new(
            "xprt.c",
            r#"struct rpc { int len; int recd; int out; };
void complete(struct rpc *req) {
    req->len = 4;
    smp_wmb();
    req->recd = 1;
}
void decode(struct rpc *req) {
    smp_rmb();
    if (!req->recd)
        return;
    req->out = req->len;
}
"#,
        )])
    }

    #[test]
    fn sarif_has_required_structure() {
        let r = buggy_result();
        assert!(!r.deviations.is_empty());
        let doc = to_sarif(&r);
        assert_eq!(doc["version"], SARIF_VERSION);
        assert!(doc["$schema"].as_str().unwrap().contains("2.1.0"));
        let driver = &doc["runs"][0]["tool"]["driver"];
        assert_eq!(driver["name"], "ofence");
        assert!(!driver["rules"].as_array().unwrap().is_empty());
        let results = doc["runs"][0]["results"].as_array().unwrap();
        assert_eq!(results.len(), r.deviations.len());
        for res in results {
            let fp = &res["partialFingerprints"]["ofenceFingerprint/v1"];
            assert_eq!(fp.as_str().unwrap().len(), 16);
            let region = &res["locations"][0]["physicalLocation"]["region"];
            assert!(region["startLine"].as_u64().unwrap() >= 1);
            assert!(region["startColumn"].as_u64().unwrap() >= 1);
            assert!(res["ruleId"].as_str().is_some());
        }
    }

    #[test]
    fn fingerprint_key_matches_version() {
        assert_eq!(
            PARTIAL_FINGERPRINT_KEY,
            format!("ofenceFingerprint/v{FINGERPRINT_VERSION}")
        );
    }

    #[test]
    fn sarif_rule_ids_resolve_to_declared_rules() {
        let doc = to_sarif(&buggy_result());
        let driver = &doc["runs"][0]["tool"]["driver"];
        let declared: Vec<&str> = driver["rules"]
            .as_array()
            .unwrap()
            .iter()
            .map(|r| r["id"].as_str().unwrap())
            .collect();
        for res in doc["runs"][0]["results"].as_array().unwrap() {
            assert!(declared.contains(&res["ruleId"].as_str().unwrap()));
        }
    }

    #[test]
    fn sarif_roundtrips_through_parser() {
        let doc = to_sarif(&buggy_result());
        let text = serde_json::to_string_pretty(&doc).unwrap();
        let back: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back["version"], SARIF_VERSION);
        assert_eq!(
            back["runs"][0]["results"].as_array().unwrap().len(),
            doc["runs"][0]["results"].as_array().unwrap().len()
        );
    }
}
