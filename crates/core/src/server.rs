//! The analysis daemon's wire protocol: newline-delimited JSON-RPC over
//! TCP, serving a shared [`Session`](crate::session::Session).
//!
//! One request per line, one response per line, any number of requests
//! per connection:
//!
//! ```text
//! → {"id": 1, "method": "analyze"}
//! ← {"id": 1, "ok": true, "result": { ...schema v3 report... }}
//! → {"id": 2, "method": "explain", "params": {"file": "m.c", "line": 7}}
//! ← {"id": 2, "ok": false, "error": {"code": "failed", "message": "no barrier at m.c:7"}}
//! ```
//!
//! `id` is echoed verbatim (any JSON value; `null` when the request was
//! too broken to extract one). Methods: `ping`, `status`, `analyze`,
//! `analyze-file`, `explain`, `diff`, `baseline-gate`, `shutdown`.
//! `result` payloads are exactly the documents the one-shot CLI prints
//! (`analyze --json`, `explain --json`, `diff --json`), so a client can
//! swap between the two without reparsing.
//!
//! The transport is deliberately boring — `std::net`, thread per
//! connection, no async runtime — mirroring `obs/serve.rs`. What makes
//! it safe under fire is the error discipline: every malformed input
//! (truncated line, oversized payload, invalid UTF-8, unknown method,
//! non-object request) produces a structured error response on the same
//! connection, a panic inside a handler is caught and answered as
//! `internal`, and a mid-request disconnect just ends that connection's
//! thread. The protocol fuzz suite in `tests/server.rs` holds the daemon
//! to exactly that contract.

use crate::session::{panic_message, Session, SessionCounters};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Longest accepted request line, newline excluded. Anything longer is
/// answered with an `oversized` error; the remainder of the line is
/// drained (never buffered) so the connection stays usable.
pub const MAX_REQUEST_BYTES: usize = 4 << 20;

/// A structured protocol error: machine-readable code + human message.
struct RpcError {
    code: &'static str,
    message: String,
}

impl RpcError {
    fn bad_request(message: impl Into<String>) -> RpcError {
        RpcError {
            code: "bad_request",
            message: message.into(),
        }
    }

    fn failed(message: String) -> RpcError {
        RpcError {
            code: "failed",
            message,
        }
    }
}

/// Handle on a running analysis server. Dropping it (or calling
/// [`Server::shutdown`]) stops the listener thread; connection threads
/// end when their clients disconnect.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    session: Arc<Session>,
}

impl Server {
    /// The actually bound address — with port `0` the OS picks, and this
    /// is where callers learn it.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn session(&self) -> Arc<Session> {
        self.session.clone()
    }

    /// True once a client's `shutdown` request (or [`Server::shutdown`])
    /// has stopped the listener.
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Stop accepting connections and join the listener thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_and_join();
        }
    }
}

/// Bind `addr` (e.g. `127.0.0.1:7433`, or port `0` to let the OS pick)
/// and serve the session's methods until the handle is shut down, a
/// client sends `shutdown`, or the handle is dropped.
pub fn serve(addr: &str, session: Arc<Session>) -> Result<Server, String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = stop.clone();
    let thread_session = session.clone();
    let handle = std::thread::Builder::new()
        .name("ofence-serve".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if thread_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let session = thread_session.clone();
                let stop = thread_stop.clone();
                let _ = std::thread::Builder::new()
                    .name("ofence-serve-conn".into())
                    .spawn(move || handle_connection(stream, session, local, stop));
            }
        })
        .map_err(|e| format!("spawn listener thread: {e}"))?;
    Ok(Server {
        addr: local,
        stop,
        handle: Some(handle),
        session,
    })
}

/// What one attempt to read a request line produced.
enum LineRead {
    /// A complete line (without the trailing newline) is in the buffer.
    Line,
    /// Clean end of stream (or a mid-line disconnect: nobody to answer).
    Eof,
    /// The line exceeded [`MAX_REQUEST_BYTES`]; the excess was drained.
    Oversized,
}

/// Read one newline-terminated line into `buf`, refusing to buffer more
/// than the cap: once a line exceeds it, the rest is read and discarded
/// so the next request starts clean — a hostile client can not make the
/// daemon hold its payload in memory.
fn read_line_capped(reader: &mut impl BufRead, buf: &mut Vec<u8>) -> LineRead {
    buf.clear();
    let mut over = false;
    loop {
        let chunk = match reader.fill_buf() {
            // EOF — including mid-line (truncated request: nobody left
            // to answer) and mid-oversized-line.
            Ok([]) => return LineRead::Eof,
            Ok(chunk) => chunk,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return LineRead::Eof,
        };
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.map(|i| i + 1).unwrap_or(chunk.len());
        if !over {
            let keep = take - usize::from(newline.is_some());
            if buf.len() + keep > MAX_REQUEST_BYTES {
                over = true;
            } else {
                buf.extend_from_slice(&chunk[..keep]);
            }
        }
        reader.consume(take);
        if newline.is_some() {
            return if over {
                LineRead::Oversized
            } else {
                LineRead::Line
            };
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    session: Arc<Session>,
    server_addr: SocketAddr,
    stop: Arc<AtomicBool>,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let line = match read_line_capped(&mut reader, &mut buf) {
            LineRead::Eof => return,
            LineRead::Oversized => {
                SessionCounters::bump_errors(&session.counters);
                let resp = error_response(
                    serde_json::Value::Null,
                    "oversized",
                    &format!("request exceeds {MAX_REQUEST_BYTES} bytes"),
                );
                if write_line(&mut writer, &resp).is_err() {
                    return;
                }
                continue;
            }
            LineRead::Line => &buf,
        };
        if line.iter().all(|b| b.is_ascii_whitespace()) {
            continue;
        }
        let (response, shutdown) = respond(&session, line);
        if write_line(&mut writer, &response).is_err() {
            return;
        }
        if shutdown {
            stop.store(true, Ordering::SeqCst);
            // Unblock the listener's accept() so it observes the flag.
            let _ = TcpStream::connect_timeout(&server_addr, Duration::from_millis(250));
            return;
        }
    }
}

fn write_line(writer: &mut TcpStream, response: &serde_json::Value) -> std::io::Result<()> {
    let mut line = serde_json::to_string(response).expect("response serializes");
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

fn ok_response(id: serde_json::Value, result: serde_json::Value) -> serde_json::Value {
    serde_json::json!({ "id": id, "ok": true, "result": result })
}

fn error_response(id: serde_json::Value, code: &str, message: &str) -> serde_json::Value {
    serde_json::json!({
        "id": id,
        "ok": false,
        "error": { "code": code, "message": message },
    })
}

/// Parse and dispatch one request line. Returns the response and whether
/// the client asked the daemon to shut down.
fn respond(session: &Session, line: &[u8]) -> (serde_json::Value, bool) {
    let fail = |id: serde_json::Value, e: RpcError| {
        SessionCounters::bump_errors(&session.counters);
        (error_response(id, e.code, &e.message), false)
    };
    let text = match std::str::from_utf8(line) {
        Ok(t) => t,
        Err(_) => {
            return fail(
                serde_json::Value::Null,
                RpcError::bad_request("request is not valid UTF-8"),
            )
        }
    };
    let doc: serde_json::Value = match serde_json::from_str(text) {
        Ok(d) => d,
        Err(e) => {
            return fail(
                serde_json::Value::Null,
                RpcError::bad_request(format!("request is not JSON: {e}")),
            )
        }
    };
    let Some(obj) = doc.as_object() else {
        return fail(
            serde_json::Value::Null,
            RpcError::bad_request("request must be a JSON object"),
        );
    };
    let id = obj.get("id").cloned().unwrap_or(serde_json::Value::Null);
    let Some(method) = obj.get("method").and_then(|m| m.as_str()) else {
        return fail(id, RpcError::bad_request("missing string field `method`"));
    };
    if method == "shutdown" {
        return (
            ok_response(id, serde_json::json!({ "stopping": true })),
            true,
        );
    }
    let params = obj.get("params");
    // A handler panic must kill neither the daemon nor the connection:
    // catch it and answer `internal`. Session state stays usable — its
    // locks recover from poisoning.
    let outcome = catch_unwind(AssertUnwindSafe(|| dispatch(session, method, params)));
    match outcome {
        Ok(Ok(result)) => (ok_response(id, result), false),
        Ok(Err(e)) => {
            // `failed` errors come from session methods, whose whole
            // bodies run inside the session's request tracking — already
            // counted in `serve_errors`. Protocol-level errors never
            // reach a session method, so they are counted here.
            if e.code != "failed" {
                SessionCounters::bump_errors(&session.counters);
            }
            (error_response(id, e.code, &e.message), false)
        }
        Err(panic) => {
            let message = panic_message(panic.as_ref());
            SessionCounters::bump_errors(&session.counters);
            (
                error_response(id, "internal", &format!("handler panicked: {message}")),
                false,
            )
        }
    }
}

fn dispatch(
    session: &Session,
    method: &str,
    params: Option<&serde_json::Value>,
) -> Result<serde_json::Value, RpcError> {
    match method {
        "ping" => Ok(serde_json::json!({ "pong": true })),
        "status" => Ok(session.status_document()),
        "analyze" => session.analyze_document().map_err(RpcError::failed),
        "analyze-file" => {
            let file = param_str(params, "file")?;
            session
                .analyze_file_document(file)
                .map_err(RpcError::failed)
        }
        "explain" => {
            let file = param_str(params, "file")?;
            let line = param_u32(params, "line")?;
            session
                .explain_document(file, line)
                .map_err(RpcError::failed)
        }
        "diff" => {
            let old = param_str(params, "old")?;
            let new = param_str(params, "new")?;
            session.diff_document(old, new).map_err(RpcError::failed)
        }
        "baseline-gate" => {
            let baseline = params
                .and_then(|p| p.get("baseline"))
                .ok_or_else(|| RpcError::bad_request("missing params field `baseline`"))?;
            let fail_on = match params.and_then(|p| p.get("fail_on")) {
                None => crate::diffing::FailOn::New,
                Some(v) => {
                    let s = v.as_str().ok_or_else(|| {
                        RpcError::bad_request("params field `fail_on` must be a string")
                    })?;
                    crate::diffing::FailOn::parse(s).map_err(RpcError::bad_request)?
                }
            };
            session
                .baseline_gate_document(baseline, fail_on)
                .map_err(RpcError::failed)
        }
        other => Err(RpcError {
            code: "unknown_method",
            message: format!(
                "unknown method `{other}`; expected ping, status, analyze, analyze-file, explain, diff, baseline-gate, or shutdown"
            ),
        }),
    }
}

fn param_str<'p>(params: Option<&'p serde_json::Value>, key: &str) -> Result<&'p str, RpcError> {
    params
        .and_then(|p| p.get(key))
        .and_then(|v| v.as_str())
        .ok_or_else(|| RpcError::bad_request(format!("missing string params field `{key}`")))
}

fn param_u32(params: Option<&serde_json::Value>, key: &str) -> Result<u32, RpcError> {
    params
        .and_then(|p| p.get(key))
        .and_then(|v| v.as_u64())
        .and_then(|v| u32::try_from(v).ok())
        .ok_or_else(|| RpcError::bad_request(format!("missing integer params field `{key}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalysisConfig;
    use crate::session::SessionOptions;
    use std::io::BufRead;

    const CLEAN: &str = "struct m { int init; int y; };\n\
void reader(struct m *a) { if (!a->init) return; smp_rmb(); f(a->y); }\n\
void writer(struct m *b) { b->y = 1; smp_wmb(); b->init = 1; }\n";

    fn corpus(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ofence-server-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("m.c"), CLEAN).unwrap();
        dir
    }

    fn start(dir: &std::path::Path) -> Server {
        let session = Arc::new(Session::new(SessionOptions {
            config: AnalysisConfig::default(),
            paths: vec![dir.display().to_string()],
            cache_dir: None,
            history_dir: None,
        }));
        serve("127.0.0.1:0", session).unwrap()
    }

    struct Client {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let writer = TcpStream::connect(addr).unwrap();
            let reader = BufReader::new(writer.try_clone().unwrap());
            Client { reader, writer }
        }

        fn send_raw(&mut self, line: &[u8]) {
            self.writer.write_all(line).unwrap();
            self.writer.write_all(b"\n").unwrap();
        }

        fn recv(&mut self) -> serde_json::Value {
            let mut line = String::new();
            self.reader.read_line(&mut line).unwrap();
            serde_json::from_str(&line).unwrap()
        }

        fn call(&mut self, request: serde_json::Value) -> serde_json::Value {
            self.send_raw(serde_json::to_string(&request).unwrap().as_bytes());
            self.recv()
        }
    }

    #[test]
    fn ping_analyze_and_unknown_method_roundtrip() {
        let dir = corpus("roundtrip");
        let server = start(&dir);
        let mut client = Client::connect(server.addr());
        let pong = client.call(serde_json::json!({"id": 1, "method": "ping"}));
        assert_eq!(pong["ok"], true);
        assert_eq!(pong["id"], 1);
        assert_eq!(pong["result"]["pong"], true);
        let report = client.call(serde_json::json!({"id": "a", "method": "analyze"}));
        assert_eq!(report["ok"], true, "{report}");
        assert_eq!(report["id"], "a");
        assert_eq!(
            report["result"]["schema_version"],
            crate::json::SCHEMA_VERSION
        );
        let err = client.call(serde_json::json!({"id": 2, "method": "frobnicate"}));
        assert_eq!(err["ok"], false);
        assert_eq!(err["error"]["code"], "unknown_method");
        // The connection survives the error.
        let pong = client.call(serde_json::json!({"id": 3, "method": "ping"}));
        assert_eq!(pong["ok"], true);
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_lines_get_structured_errors() {
        let dir = corpus("malformed");
        let server = start(&dir);
        let mut client = Client::connect(server.addr());
        client.send_raw(b"this is not json");
        let err = client.recv();
        assert_eq!(err["error"]["code"], "bad_request");
        assert!(err["id"].is_null());
        client.send_raw(&[0xff, 0xfe, 0x80]);
        let err = client.recv();
        assert_eq!(err["error"]["code"], "bad_request");
        client.send_raw(b"[1, 2, 3]");
        let err = client.recv();
        assert_eq!(err["error"]["code"], "bad_request");
        client.send_raw(b"{\"id\": 9}");
        let err = client.recv();
        assert_eq!(err["error"]["code"], "bad_request");
        assert_eq!(err["id"], 9);
        // Still serving after the garbage.
        let pong = client.call(serde_json::json!({"id": 4, "method": "ping"}));
        assert_eq!(pong["ok"], true);
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_line_is_drained_and_rejected() {
        let dir = corpus("oversized");
        let server = start(&dir);
        let mut client = Client::connect(server.addr());
        let huge = vec![b'x'; MAX_REQUEST_BYTES + 64];
        client.send_raw(&huge);
        let err = client.recv();
        assert_eq!(err["error"]["code"], "oversized");
        // The oversized line was fully consumed: the next request parses.
        let pong = client.call(serde_json::json!({"id": 1, "method": "ping"}));
        assert_eq!(pong["ok"], true);
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_method_stops_the_listener() {
        let dir = corpus("shutdown");
        let server = start(&dir);
        let addr = server.addr();
        let mut client = Client::connect(addr);
        let ack = client.call(serde_json::json!({"id": 1, "method": "shutdown"}));
        assert_eq!(ack["result"]["stopping"], true);
        // The listener notices promptly; poll until the flag flips.
        for _ in 0..100 {
            if server.stopped() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(server.stopped());
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn explain_requires_params() {
        let dir = corpus("params");
        let server = start(&dir);
        let mut client = Client::connect(server.addr());
        let err = client.call(serde_json::json!({"id": 1, "method": "explain"}));
        assert_eq!(err["error"]["code"], "bad_request");
        let ok = client.call(serde_json::json!({
            "id": 2,
            "method": "explain",
            "params": {"file": "m.c", "line": 2},
        }));
        assert_eq!(ok["ok"], true, "{ok}");
        assert!(ok["result"]["target"].is_object());
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
