//! The analysis daemon's wire protocol: newline-delimited JSON-RPC over
//! TCP, serving a shared [`Session`](crate::session::Session).
//!
//! One request per line, one response per line, any number of requests
//! per connection:
//!
//! ```text
//! → {"id": 1, "method": "analyze"}
//! ← {"id": 1, "ok": true, "result": { ...schema v3 report... }}
//! → {"id": 2, "method": "explain", "params": {"file": "m.c", "line": 7}}
//! ← {"id": 2, "ok": false, "error": {"code": "failed", "message": "no barrier at m.c:7"}}
//! ```
//!
//! `id` is echoed verbatim (any JSON value; `null` when the request was
//! too broken to extract one). Methods: `ping`, `status`, `analyze`,
//! `analyze-file`, `explain`, `diff`, `baseline-gate`, `shutdown`.
//! `result` payloads are exactly the documents the one-shot CLI prints
//! (`analyze --json`, `explain --json`, `diff --json`), so a client can
//! swap between the two without reparsing.
//!
//! The transport is deliberately boring — `std::net`, thread per
//! connection, no async runtime — mirroring `obs/serve.rs`. What makes
//! it safe under fire is the error discipline: every malformed input
//! (truncated line, oversized payload, invalid UTF-8, unknown method,
//! non-object request) produces a structured error response on the same
//! connection, a panic inside a handler is caught and answered as
//! `internal`, and a mid-request disconnect just ends that connection's
//! thread. The protocol fuzz suite in `tests/server.rs` holds the daemon
//! to exactly that contract.

use crate::session::{panic_message, Session, SessionCounters};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Longest accepted request line, newline excluded. Anything longer is
/// answered with an `oversized` error; the remainder of the line is
/// drained (never buffered) so the connection stays usable.
pub const MAX_REQUEST_BYTES: usize = 4 << 20;

/// Longest accepted client-supplied `request_id`. Ids are echoed into
/// responses, traces, and ledger lines; an unbounded one would let a
/// client inflate all three.
pub const MAX_REQUEST_ID_CHARS: usize = 128;

/// A structured protocol error: machine-readable code + human message.
struct RpcError {
    code: &'static str,
    message: String,
}

impl RpcError {
    fn bad_request(message: impl Into<String>) -> RpcError {
        RpcError {
            code: "bad_request",
            message: message.into(),
        }
    }

    fn failed(message: String) -> RpcError {
        RpcError {
            code: "failed",
            message,
        }
    }
}

/// Handle on a running analysis server. Dropping it (or calling
/// [`Server::shutdown`]) stops the listener thread; connection threads
/// end when their clients disconnect.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    session: Arc<Session>,
}

impl Server {
    /// The actually bound address — with port `0` the OS picks, and this
    /// is where callers learn it.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn session(&self) -> Arc<Session> {
        self.session.clone()
    }

    /// True once a client's `shutdown` request (or [`Server::shutdown`])
    /// has stopped the listener.
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Stop accepting connections and join the listener thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_and_join();
        }
    }
}

/// Bind `addr` (e.g. `127.0.0.1:7433`, or port `0` to let the OS pick)
/// and serve the session's methods until the handle is shut down, a
/// client sends `shutdown`, or the handle is dropped.
pub fn serve(addr: &str, session: Arc<Session>) -> Result<Server, String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = stop.clone();
    let thread_session = session.clone();
    let handle = std::thread::Builder::new()
        .name("ofence-serve".into())
        .spawn(move || {
            // Numbered connection threads (`serve-conn-<n>`) so a stuck
            // connection is identifiable in /proc, plus an active-count
            // gauge on /metrics + /health.
            let conn_seq = AtomicU64::new(0);
            let active = Arc::new(AtomicU64::new(0));
            for stream in listener.incoming() {
                if thread_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let session = thread_session.clone();
                let stop = thread_stop.clone();
                let n = conn_seq.fetch_add(1, Ordering::Relaxed);
                let gauge = ConnGauge::open(active.clone(), session.live());
                let _ = std::thread::Builder::new()
                    .name(format!("serve-conn-{n}"))
                    .spawn(move || {
                        let _gauge = gauge;
                        handle_connection(stream, session, local, stop)
                    });
            }
        })
        .map_err(|e| format!("spawn listener thread: {e}"))?;
    Ok(Server {
        addr: local,
        stop,
        handle: Some(handle),
        session,
    })
}

/// Keeps the `serve_connections_active` gauge honest: incremented when a
/// connection is accepted, decremented when its handler thread ends —
/// including panics and spawn failures, since the decrement lives in
/// `Drop`.
struct ConnGauge {
    active: Arc<AtomicU64>,
    live: Arc<obs::Live>,
}

impl ConnGauge {
    fn open(active: Arc<AtomicU64>, live: Arc<obs::Live>) -> ConnGauge {
        let now = active.fetch_add(1, Ordering::SeqCst) + 1;
        live.set_gauge("serve_connections_active", now);
        ConnGauge { active, live }
    }
}

impl Drop for ConnGauge {
    fn drop(&mut self) {
        let now = self.active.fetch_sub(1, Ordering::SeqCst).saturating_sub(1);
        self.live.set_gauge("serve_connections_active", now);
    }
}

/// What one attempt to read a request line produced.
enum LineRead {
    /// A complete line (without the trailing newline) is in the buffer.
    Line,
    /// Clean end of stream (or a mid-line disconnect: nobody to answer).
    Eof,
    /// The line exceeded [`MAX_REQUEST_BYTES`]; the excess was drained.
    Oversized,
}

/// Read one newline-terminated line into `buf`, refusing to buffer more
/// than the cap: once a line exceeds it, the rest is read and discarded
/// so the next request starts clean — a hostile client can not make the
/// daemon hold its payload in memory.
fn read_line_capped(reader: &mut impl BufRead, buf: &mut Vec<u8>) -> LineRead {
    buf.clear();
    let mut over = false;
    loop {
        let chunk = match reader.fill_buf() {
            // EOF — including mid-line (truncated request: nobody left
            // to answer) and mid-oversized-line.
            Ok([]) => return LineRead::Eof,
            Ok(chunk) => chunk,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return LineRead::Eof,
        };
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.map(|i| i + 1).unwrap_or(chunk.len());
        if !over {
            let keep = take - usize::from(newline.is_some());
            if buf.len() + keep > MAX_REQUEST_BYTES {
                over = true;
            } else {
                buf.extend_from_slice(&chunk[..keep]);
            }
        }
        reader.consume(take);
        if newline.is_some() {
            return if over {
                LineRead::Oversized
            } else {
                LineRead::Line
            };
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    session: Arc<Session>,
    server_addr: SocketAddr,
    stop: Arc<AtomicBool>,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let line = match read_line_capped(&mut reader, &mut buf) {
            LineRead::Eof => return,
            LineRead::Oversized => {
                SessionCounters::bump_errors(&session.counters);
                let resp = error_response(
                    serde_json::Value::Null,
                    &session.assign_request_id(),
                    "oversized",
                    &format!("request exceeds {MAX_REQUEST_BYTES} bytes"),
                );
                if write_line(&mut writer, &resp).is_err() {
                    return;
                }
                continue;
            }
            LineRead::Line => &buf,
        };
        if line.iter().all(|b| b.is_ascii_whitespace()) {
            continue;
        }
        let (response, shutdown) = respond(&session, line);
        if write_line(&mut writer, &response).is_err() {
            return;
        }
        if shutdown {
            stop.store(true, Ordering::SeqCst);
            // Unblock the listener's accept() so it observes the flag.
            let _ = TcpStream::connect_timeout(&server_addr, Duration::from_millis(250));
            return;
        }
    }
}

fn write_line(writer: &mut TcpStream, response: &serde_json::Value) -> std::io::Result<()> {
    let mut line = serde_json::to_string(response).expect("response serializes");
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

fn ok_response(
    id: serde_json::Value,
    request_id: &str,
    result: serde_json::Value,
) -> serde_json::Value {
    serde_json::json!({ "id": id, "request_id": request_id, "ok": true, "result": result })
}

fn error_response(
    id: serde_json::Value,
    request_id: &str,
    code: &str,
    message: &str,
) -> serde_json::Value {
    serde_json::json!({
        "id": id,
        "request_id": request_id,
        "ok": false,
        "error": { "code": code, "message": message },
    })
}

/// Parse and dispatch one request line. Returns the response and whether
/// the client asked the daemon to shut down.
///
/// Every response — success or any flavor of failure — carries a
/// `request_id`: the client's, when the envelope supplied a valid one,
/// or a server-assigned id otherwise. Requests too broken to parse get a
/// server-assigned id too, so a daemon-side log line exists for every
/// answered request.
fn respond(session: &Session, line: &[u8]) -> (serde_json::Value, bool) {
    let fail = |id: serde_json::Value, request_id: &str, e: RpcError| {
        SessionCounters::bump_errors(&session.counters);
        (error_response(id, request_id, e.code, &e.message), false)
    };
    let text = match std::str::from_utf8(line) {
        Ok(t) => t,
        Err(_) => {
            return fail(
                serde_json::Value::Null,
                &session.assign_request_id(),
                RpcError::bad_request("request is not valid UTF-8"),
            )
        }
    };
    let doc: serde_json::Value = match serde_json::from_str(text) {
        Ok(d) => d,
        Err(e) => {
            return fail(
                serde_json::Value::Null,
                &session.assign_request_id(),
                RpcError::bad_request(format!("request is not JSON: {e}")),
            )
        }
    };
    let Some(obj) = doc.as_object() else {
        return fail(
            serde_json::Value::Null,
            &session.assign_request_id(),
            RpcError::bad_request("request must be a JSON object"),
        );
    };
    let id = obj.get("id").cloned().unwrap_or(serde_json::Value::Null);
    // A client-supplied request id must be a usable one; anything else
    // is answered (under a server-assigned id) rather than half-honored.
    let request_id = match obj.get("request_id") {
        None => session.assign_request_id(),
        Some(v) => match v.as_str() {
            Some(s) if !s.is_empty() && s.chars().count() <= MAX_REQUEST_ID_CHARS => s.to_string(),
            _ => {
                return fail(
                    id,
                    &session.assign_request_id(),
                    RpcError::bad_request(format!(
                        "field `request_id` must be a non-empty string of at most {MAX_REQUEST_ID_CHARS} characters"
                    )),
                )
            }
        },
    };
    let Some(method) = obj.get("method").and_then(|m| m.as_str()) else {
        return fail(
            id,
            &request_id,
            RpcError::bad_request("missing string field `method`"),
        );
    };
    if method == "shutdown" {
        return (
            ok_response(id, &request_id, serde_json::json!({ "stopping": true })),
            true,
        );
    }
    let params = obj.get("params");
    // A handler panic must kill neither the daemon nor the connection:
    // catch it and answer `internal`. Session state stays usable — its
    // locks recover from poisoning.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        dispatch(session, method, params, &request_id)
    }));
    match outcome {
        Ok(Ok(result)) => (ok_response(id, &request_id, result), false),
        Ok(Err(e)) => {
            // `failed` errors come from session methods, whose whole
            // bodies run inside the session's request tracking — already
            // counted in `serve_errors`. Protocol-level errors never
            // reach a session method, so they are counted here.
            if e.code != "failed" {
                SessionCounters::bump_errors(&session.counters);
            }
            (error_response(id, &request_id, e.code, &e.message), false)
        }
        Err(panic) => {
            let message = panic_message(panic.as_ref());
            SessionCounters::bump_errors(&session.counters);
            (
                error_response(
                    id,
                    &request_id,
                    "internal",
                    &format!("handler panicked: {message}"),
                ),
                false,
            )
        }
    }
}

fn dispatch(
    session: &Session,
    method: &str,
    params: Option<&serde_json::Value>,
    request_id: &str,
) -> Result<serde_json::Value, RpcError> {
    // Tracked methods get a request context carrying the wire-level id,
    // so their spans, trace, and ledger line all correlate with the
    // response envelope.
    let ctx = || session.begin_request(method, Some(request_id.to_string()));
    match method {
        "ping" => Ok(serde_json::json!({ "pong": true })),
        "status" => Ok(session.status_document()),
        "trace" => {
            let wanted = param_str(params, "request_id")?;
            session.trace_document(wanted).map_err(RpcError::failed)
        }
        "analyze" => session.analyze_document(&ctx()).map_err(RpcError::failed),
        "analyze-file" => {
            let file = param_str(params, "file")?;
            session
                .analyze_file_document(&ctx(), file)
                .map_err(RpcError::failed)
        }
        "explain" => {
            let file = param_str(params, "file")?;
            let line = param_u32(params, "line")?;
            session
                .explain_document(&ctx(), file, line)
                .map_err(RpcError::failed)
        }
        "diff" => {
            let old = param_str(params, "old")?;
            let new = param_str(params, "new")?;
            session
                .diff_document(&ctx(), old, new)
                .map_err(RpcError::failed)
        }
        "baseline-gate" => {
            let baseline = params
                .and_then(|p| p.get("baseline"))
                .ok_or_else(|| RpcError::bad_request("missing params field `baseline`"))?;
            let fail_on = match params.and_then(|p| p.get("fail_on")) {
                None => crate::diffing::FailOn::New,
                Some(v) => {
                    let s = v.as_str().ok_or_else(|| {
                        RpcError::bad_request("params field `fail_on` must be a string")
                    })?;
                    crate::diffing::FailOn::parse(s).map_err(RpcError::bad_request)?
                }
            };
            session
                .baseline_gate_document(&ctx(), baseline, fail_on)
                .map_err(RpcError::failed)
        }
        other => Err(RpcError {
            code: "unknown_method",
            message: format!(
                "unknown method `{other}`; expected ping, status, trace, analyze, analyze-file, explain, diff, baseline-gate, or shutdown"
            ),
        }),
    }
}

fn param_str<'p>(params: Option<&'p serde_json::Value>, key: &str) -> Result<&'p str, RpcError> {
    params
        .and_then(|p| p.get(key))
        .and_then(|v| v.as_str())
        .ok_or_else(|| RpcError::bad_request(format!("missing string params field `{key}`")))
}

fn param_u32(params: Option<&serde_json::Value>, key: &str) -> Result<u32, RpcError> {
    params
        .and_then(|p| p.get(key))
        .and_then(|v| v.as_u64())
        .and_then(|v| u32::try_from(v).ok())
        .ok_or_else(|| RpcError::bad_request(format!("missing integer params field `{key}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalysisConfig;
    use crate::session::SessionOptions;
    use std::io::BufRead;

    const CLEAN: &str = "struct m { int init; int y; };\n\
void reader(struct m *a) { if (!a->init) return; smp_rmb(); f(a->y); }\n\
void writer(struct m *b) { b->y = 1; smp_wmb(); b->init = 1; }\n";

    fn corpus(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ofence-server-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("m.c"), CLEAN).unwrap();
        dir
    }

    fn start(dir: &std::path::Path) -> Server {
        let session = Arc::new(Session::new(SessionOptions {
            config: AnalysisConfig::default(),
            paths: vec![dir.display().to_string()],
            cache_dir: None,
            history_dir: None,
        }));
        serve("127.0.0.1:0", session).unwrap()
    }

    struct Client {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let writer = TcpStream::connect(addr).unwrap();
            let reader = BufReader::new(writer.try_clone().unwrap());
            Client { reader, writer }
        }

        fn send_raw(&mut self, line: &[u8]) {
            self.writer.write_all(line).unwrap();
            self.writer.write_all(b"\n").unwrap();
        }

        fn recv(&mut self) -> serde_json::Value {
            let mut line = String::new();
            self.reader.read_line(&mut line).unwrap();
            serde_json::from_str(&line).unwrap()
        }

        fn call(&mut self, request: serde_json::Value) -> serde_json::Value {
            self.send_raw(serde_json::to_string(&request).unwrap().as_bytes());
            self.recv()
        }
    }

    #[test]
    fn ping_analyze_and_unknown_method_roundtrip() {
        let dir = corpus("roundtrip");
        let server = start(&dir);
        let mut client = Client::connect(server.addr());
        let pong = client.call(serde_json::json!({"id": 1, "method": "ping"}));
        assert_eq!(pong["ok"], true);
        assert_eq!(pong["id"], 1);
        assert_eq!(pong["result"]["pong"], true);
        let report = client.call(serde_json::json!({"id": "a", "method": "analyze"}));
        assert_eq!(report["ok"], true, "{report}");
        assert_eq!(report["id"], "a");
        assert_eq!(
            report["result"]["schema_version"],
            crate::json::SCHEMA_VERSION
        );
        let err = client.call(serde_json::json!({"id": 2, "method": "frobnicate"}));
        assert_eq!(err["ok"], false);
        assert_eq!(err["error"]["code"], "unknown_method");
        // The connection survives the error.
        let pong = client.call(serde_json::json!({"id": 3, "method": "ping"}));
        assert_eq!(pong["ok"], true);
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_lines_get_structured_errors() {
        let dir = corpus("malformed");
        let server = start(&dir);
        let mut client = Client::connect(server.addr());
        client.send_raw(b"this is not json");
        let err = client.recv();
        assert_eq!(err["error"]["code"], "bad_request");
        assert!(err["id"].is_null());
        client.send_raw(&[0xff, 0xfe, 0x80]);
        let err = client.recv();
        assert_eq!(err["error"]["code"], "bad_request");
        client.send_raw(b"[1, 2, 3]");
        let err = client.recv();
        assert_eq!(err["error"]["code"], "bad_request");
        client.send_raw(b"{\"id\": 9}");
        let err = client.recv();
        assert_eq!(err["error"]["code"], "bad_request");
        assert_eq!(err["id"], 9);
        // Still serving after the garbage.
        let pong = client.call(serde_json::json!({"id": 4, "method": "ping"}));
        assert_eq!(pong["ok"], true);
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_line_is_drained_and_rejected() {
        let dir = corpus("oversized");
        let server = start(&dir);
        let mut client = Client::connect(server.addr());
        let huge = vec![b'x'; MAX_REQUEST_BYTES + 64];
        client.send_raw(&huge);
        let err = client.recv();
        assert_eq!(err["error"]["code"], "oversized");
        // The oversized line was fully consumed: the next request parses.
        let pong = client.call(serde_json::json!({"id": 1, "method": "ping"}));
        assert_eq!(pong["ok"], true);
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_method_stops_the_listener() {
        let dir = corpus("shutdown");
        let server = start(&dir);
        let addr = server.addr();
        let mut client = Client::connect(addr);
        let ack = client.call(serde_json::json!({"id": 1, "method": "shutdown"}));
        assert_eq!(ack["result"]["stopping"], true);
        // The listener notices promptly; poll until the flag flips.
        for _ in 0..100 {
            if server.stopped() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(server.stopped());
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_response_carries_a_request_id() {
        let dir = corpus("reqid");
        let server = start(&dir);
        let mut client = Client::connect(server.addr());
        // Server-assigned when absent — and distinct per request.
        let a = client.call(serde_json::json!({"id": 1, "method": "ping"}));
        let b = client.call(serde_json::json!({"id": 2, "method": "ping"}));
        let a_id = a["request_id"].as_str().unwrap().to_string();
        let b_id = b["request_id"].as_str().unwrap().to_string();
        assert!(!a_id.is_empty());
        assert_ne!(a_id, b_id);
        // Client-supplied ids are echoed verbatim.
        let c = client.call(serde_json::json!({
            "id": 3, "request_id": "ci-7", "method": "ping",
        }));
        assert_eq!(c["request_id"], "ci-7");
        // Errors carry one too — including unparseable lines.
        client.send_raw(b"not json at all");
        let err = client.recv();
        assert!(!err["request_id"].as_str().unwrap().is_empty(), "{err}");
        let err = client.call(serde_json::json!({"id": 4, "method": "nope"}));
        assert_eq!(err["error"]["code"], "unknown_method");
        assert!(!err["request_id"].as_str().unwrap().is_empty());
        // A bogus request_id is rejected, under a server-assigned id.
        let err = client.call(serde_json::json!({
            "id": 5, "request_id": 42, "method": "ping",
        }));
        assert_eq!(err["error"]["code"], "bad_request", "{err}");
        assert!(err["error"]["message"]
            .as_str()
            .unwrap()
            .contains("request_id"));
        let err = client.call(serde_json::json!({
            "id": 6, "request_id": "x".repeat(MAX_REQUEST_ID_CHARS + 1), "method": "ping",
        }));
        assert_eq!(err["error"]["code"], "bad_request", "{err}");
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_method_returns_the_span_tree_of_a_prior_request() {
        let dir = corpus("trace");
        let server = start(&dir);
        let mut client = Client::connect(server.addr());
        let report = client.call(serde_json::json!({
            "id": 1, "request_id": "want-this-trace", "method": "analyze",
        }));
        assert_eq!(report["ok"], true, "{report}");
        let trace = client.call(serde_json::json!({
            "id": 2, "method": "trace", "params": {"request_id": "want-this-trace"},
        }));
        assert_eq!(trace["ok"], true, "{trace}");
        let doc = &trace["result"];
        assert_eq!(doc["request_id"], "want-this-trace");
        assert_eq!(doc["method"], "analyze");
        assert_eq!(doc["outcome"], "ok");
        assert_eq!(doc["spans"][0]["name"], "request");
        // Unknown id → failed; missing param → bad_request.
        let err = client.call(serde_json::json!({
            "id": 3, "method": "trace", "params": {"request_id": "never-seen"},
        }));
        assert_eq!(err["error"]["code"], "failed", "{err}");
        let err = client.call(serde_json::json!({"id": 4, "method": "trace"}));
        assert_eq!(err["error"]["code"], "bad_request", "{err}");
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn explain_requires_params() {
        let dir = corpus("params");
        let server = start(&dir);
        let mut client = Client::connect(server.addr());
        let err = client.call(serde_json::json!({"id": 1, "method": "explain"}));
        assert_eq!(err["error"]["code"], "bad_request");
        let ok = client.call(serde_json::json!({
            "id": 2,
            "method": "explain",
            "params": {"file": "m.c", "line": 2},
        }));
        assert_eq!(ok["ok"], true, "{ok}");
        assert!(ok["result"]["target"].is_object());
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
