//! Stable, content-based finding fingerprints.
//!
//! Every deviation (and annotation finding) gets an identity that
//! survives unrelated edits: prepending comments, renaming unrelated
//! functions, or reordering sibling functions must not change it, while
//! moving or rewriting the flagged statement must. This is what makes
//! longitudinal triage possible — the run ledger ([`crate::history`]),
//! `ofence diff` ([`crate::diffing`]), baselines, and the SARIF
//! `partialFingerprints` export all key on it, in the same spirit as
//! clang-tidy/CodeChecker issue hashes.
//!
//! ## What goes into a fingerprint
//!
//! * a **kind digest** — the deviation class plus its stable payload
//!   (correct side, replacement barrier, providing callee, …);
//! * the **barrier kind** at fault (`smp_wmb`, `smp_rmb`, …);
//! * the **shared object** `(struct, field)`, when one is involved;
//! * the **file name** and **function name** containing the finding;
//! * a **context digest**: the normalized tokens of the source line(s)
//!   holding the anchor statement (the flagged access, or the barrier
//!   itself for barrier-level findings). Byte offsets and line numbers
//!   are deliberately excluded, so line shifts are invisible;
//! * an **ordinal** distinguishing otherwise-identical findings in the
//!   same file (k-th occurrence, ordered by position).

use crate::deviation::{Deviation, DeviationKind};
use crate::ir::BarrierSite;
use crate::sites::FileAnalysis;
use ckit::span::Span;
use serde::{Deserialize, Serialize};

/// Bump when the fingerprint recipe changes; stored in SARIF as the
/// `partialFingerprints` key suffix (`ofenceFingerprint/v1`).
pub const FINGERPRINT_VERSION: u32 = 1;

/// A finding reduced to its longitudinal identity plus enough metadata
/// to render a one-line report. This is the unit the ledger, baselines,
/// and `ofence diff` operate on.
///
/// `Serialize`/`Deserialize` are hand-written so `via_calls` is omitted
/// when empty: schema v2 consumers and depth-0 reports see the exact
/// pre-IPA shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FindingRecord {
    /// Stable content-based identity, 16 hex digits.
    pub fingerprint: String,
    /// Human class name (`deviation_class`), e.g. "misplaced memory access".
    pub class: String,
    /// Kebab-case rule id (`deviation_rule`), e.g. "misplaced-access".
    pub rule: String,
    pub file: String,
    pub function: String,
    /// 1-based line of the anchor at record time — display only, never
    /// part of the identity.
    pub line: u32,
    /// 1-based column of the anchor — display only.
    pub column: u32,
    /// The shared object involved, rendered, when one is.
    pub object: Option<String>,
    pub message: String,
    /// Call chain the summary composition pass walked from the barrier's
    /// function to reach the finding's object (outermost callee first).
    /// Empty for intra-procedural findings and below `--ipa-depth 1`.
    /// Provenance only — never part of the fingerprint, so a finding
    /// keeps its identity whether it was found directly or via calls.
    pub via_calls: Vec<String>,
}

impl Serialize for FindingRecord {
    fn to_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("fingerprint".to_string(), self.fingerprint.to_value());
        m.insert("class".to_string(), self.class.to_value());
        m.insert("rule".to_string(), self.rule.to_value());
        m.insert("file".to_string(), self.file.to_value());
        m.insert("function".to_string(), self.function.to_value());
        m.insert("line".to_string(), self.line.to_value());
        m.insert("column".to_string(), self.column.to_value());
        m.insert("object".to_string(), self.object.to_value());
        m.insert("message".to_string(), self.message.to_value());
        if !self.via_calls.is_empty() {
            m.insert("via_calls".to_string(), self.via_calls.to_value());
        }
        serde::Value::Object(m)
    }
}

impl Deserialize for FindingRecord {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Object(m) = v else {
            return Err(serde::Error::new("FindingRecord: expected object"));
        };
        Ok(FindingRecord {
            fingerprint: serde::de_field(m.get("fingerprint"), "fingerprint")?,
            class: serde::de_field(m.get("class"), "class")?,
            rule: serde::de_field(m.get("rule"), "rule")?,
            file: serde::de_field(m.get("file"), "file")?,
            function: serde::de_field(m.get("function"), "function")?,
            line: serde::de_field(m.get("line"), "line")?,
            column: serde::de_field(m.get("column"), "column")?,
            object: serde::de_field(m.get("object"), "object")?,
            message: serde::de_field(m.get("message"), "message")?,
            via_calls: match m.get("via_calls") {
                Some(v) => Deserialize::from_value(v)?,
                None => Vec::new(),
            },
        })
    }
}

impl FindingRecord {
    /// The one-line rendering shared by `ofence watch` and `ofence diff`.
    pub fn render_line(&self) -> String {
        format!(
            "{}:{}: {} in {}",
            self.file, self.line, self.class, self.function
        )
    }
}

/// Kebab-case rule id for a deviation class (SARIF `ruleId`, baseline
/// bookkeeping). Stable; new classes append, existing ids never change.
pub fn deviation_rule(kind: &DeviationKind) -> &'static str {
    match kind {
        DeviationKind::Misplaced { .. } => "misplaced-access",
        DeviationKind::WrongBarrierType { .. } => "wrong-barrier-type",
        DeviationKind::RepeatedRead { .. } => "repeated-read",
        DeviationKind::UnneededBarrier { .. } => "unneeded-barrier",
        DeviationKind::MissingOnce { .. } => "missing-once",
        DeviationKind::MissingBarrier { .. } => "missing-barrier",
    }
}

/// The class digest: rule id plus the payload fields that are part of the
/// finding's meaning (but none that encode positions).
fn kind_digest(kind: &DeviationKind) -> String {
    match kind {
        DeviationKind::Misplaced { correct_side } => {
            format!("misplaced-access:{correct_side:?}")
        }
        DeviationKind::WrongBarrierType { replacement } => {
            format!("wrong-barrier-type:{}", replacement.name())
        }
        // `first_read_span` is positional: excluded.
        DeviationKind::RepeatedRead { .. } => "repeated-read".to_string(),
        DeviationKind::UnneededBarrier { provided_by } => {
            format!("unneeded-barrier:{provided_by}")
        }
        DeviationKind::MissingOnce { once } => format!("missing-once:{once:?}"),
        DeviationKind::MissingBarrier {
            writer_function,
            fence,
        } => format!("missing-barrier:{writer_function}:{fence}"),
    }
}

/// Hash of the normalized tokens of the full source line(s) covered by
/// `span`. Tokens are maximal `[A-Za-z0-9_]` runs plus single punctuation
/// characters; all whitespace (indentation, alignment, line breaks inside
/// the statement) collapses to a single separator. Out-of-range spans
/// hash the empty token stream rather than panicking.
pub fn context_digest(source: &str, span: Span) -> u64 {
    let len = source.len();
    let lo = (span.lo as usize).min(len);
    let hi = (span.hi as usize).clamp(lo, len);
    let start = source[..lo].rfind('\n').map(|i| i + 1).unwrap_or(0);
    let end = source[hi..].find('\n').map(|i| hi + i).unwrap_or(len);
    let mut normalized = String::new();
    let mut in_word = false;
    for c in source[start..end].chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            if !in_word && !normalized.is_empty() {
                normalized.push(' ');
            }
            normalized.push(c);
            in_word = true;
        } else {
            in_word = false;
            if !c.is_whitespace() {
                if !normalized.is_empty() {
                    normalized.push(' ');
                }
                normalized.push(c);
            }
        }
    }
    crate::cache::content_hash(normalized.as_bytes())
}

/// The anchor span of a finding: the flagged access when there is one,
/// the barrier statement otherwise.
fn anchor_span(d: &Deviation) -> Span {
    d.access_span.unwrap_or(d.site.span)
}

/// Position-independent base fingerprint (before ordinal disambiguation).
fn base_fingerprint(d: &Deviation, barrier_kind: &str, source: &str) -> u64 {
    let object = d
        .object
        .as_ref()
        .map(|o| format!("{}#{}", o.strukt, o.field))
        .unwrap_or_default();
    let parts = [
        format!("v{FINGERPRINT_VERSION}"),
        kind_digest(&d.kind),
        barrier_kind.to_string(),
        object,
        d.site.file_name.clone(),
        d.site.function.clone(),
        format!("{:016x}", context_digest(source, anchor_span(d))),
    ];
    crate::cache::content_hash(parts.join("\u{1f}").as_bytes())
}

/// Compute the [`FindingRecord`] of every deviation, with identical
/// findings in the same file disambiguated by occurrence order (the k-th
/// copy keeps ordinal k, which is stable under line shifts because the
/// relative order of statements is preserved).
pub fn finding_records(
    devs: &[Deviation],
    sites: &[BarrierSite],
    files: &[std::sync::Arc<FileAnalysis>],
) -> Vec<FindingRecord> {
    // Base fingerprints first, in deviation order.
    let bases: Vec<u64> = devs
        .iter()
        .map(|d| {
            let barrier_kind = sites
                .get(d.barrier.0 as usize)
                .map(|s| s.kind.name())
                .unwrap_or("");
            let source = files.get(d.site.file).map(|f| &*f.source).unwrap_or("");
            base_fingerprint(d, barrier_kind, source)
        })
        .collect();
    // Ordinals: among findings sharing a base, order by anchor position.
    let mut order: Vec<usize> = (0..devs.len()).collect();
    order.sort_by_key(|&i| (bases[i], anchor_span(&devs[i]).lo, i));
    let mut ordinals = vec![0usize; devs.len()];
    for w in 0..order.len() {
        if w > 0 && bases[order[w]] == bases[order[w - 1]] {
            ordinals[order[w]] = ordinals[order[w - 1]] + 1;
        }
    }
    devs.iter()
        .enumerate()
        .map(|(i, d)| {
            let fp =
                crate::cache::content_hash(format!("{:016x}#{}", bases[i], ordinals[i]).as_bytes());
            let source = files.get(d.site.file).map(|f| &*f.source).unwrap_or("");
            let pos = if source.is_empty() {
                ckit::span::LineCol {
                    line: d.site.line,
                    col: 1,
                }
            } else {
                ckit::SourceMap::new(d.site.file_name.clone(), source).lookup(anchor_span(d).lo)
            };
            // Provenance: the call chain through which the barrier's
            // window sees the finding's object, when it only sees it via
            // the summary pass.
            let via_calls = match (&d.object, sites.get(d.barrier.0 as usize)) {
                (Some(o), Some(s)) => s.via_of(o).map(<[String]>::to_vec).unwrap_or_default(),
                _ => Vec::new(),
            };
            FindingRecord {
                fingerprint: format!("{fp:016x}"),
                class: crate::report::deviation_class(&d.kind).to_string(),
                rule: deviation_rule(&d.kind).to_string(),
                file: d.site.file_name.clone(),
                function: d.site.function.clone(),
                line: pos.line,
                column: pos.col,
                object: d.object.as_ref().map(|o| o.to_string()),
                message: d.explanation.clone(),
                via_calls,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalysisConfig;
    use crate::engine::{Engine, SourceFile};

    const BUGGY: &str = r#"struct rpc { int len; int recd; int out; };
void complete(struct rpc *req) {
    req->len = 4;
    smp_wmb();
    req->recd = 1;
}
void decode(struct rpc *req) {
    smp_rmb();
    if (!req->recd)
        return;
    req->out = req->len;
}
"#;

    fn fingerprints_of(src: &str) -> Vec<String> {
        let r = Engine::new(AnalysisConfig::default()).analyze(&[SourceFile::new("xprt.c", src)]);
        let mut fps: Vec<String> = finding_records(&r.deviations, &r.sites, &r.files)
            .into_iter()
            .map(|rec| rec.fingerprint)
            .collect();
        fps.sort();
        fps
    }

    #[test]
    fn context_digest_ignores_whitespace() {
        let a = "x = req->len;\n";
        let b = "\t\tx   =  req ->len ;\n";
        let sa = Span::new(0, a.len() as u32 - 1);
        let sb = Span::new(2, b.len() as u32 - 1);
        assert_eq!(context_digest(a, sa), context_digest(b, sb));
    }

    #[test]
    fn context_digest_sees_token_changes() {
        let a = "x = req->len;\n";
        let b = "x = req->cap;\n";
        let s = Span::new(0, 13);
        assert_ne!(context_digest(a, s), context_digest(b, s));
    }

    #[test]
    fn context_digest_out_of_range_is_safe() {
        // Out-of-range spans clamp to the end of the source (no panic)
        // and digest the line they land on.
        assert_eq!(
            context_digest("short", Span::new(100, 200)),
            context_digest("short", Span::new(0, 5))
        );
        assert_eq!(
            context_digest("", Span::new(10, 20)),
            context_digest("", Span::new(0, 0))
        );
    }

    #[test]
    fn prepending_comments_keeps_fingerprints() {
        let base = fingerprints_of(BUGGY);
        assert!(!base.is_empty());
        let mut banner = String::new();
        for i in 0..100 {
            banner.push_str(&format!("/* shift {i} */\n"));
        }
        let shifted = format!("{banner}{BUGGY}");
        assert_eq!(base, fingerprints_of(&shifted));
        // Blank lines too.
        let blank = format!("\n\n\n\n{BUGGY}");
        assert_eq!(base, fingerprints_of(&blank));
    }

    #[test]
    fn reordering_sibling_functions_keeps_fingerprints() {
        let swapped = r#"struct rpc { int len; int recd; int out; };
void decode(struct rpc *req) {
    smp_rmb();
    if (!req->recd)
        return;
    req->out = req->len;
}
void complete(struct rpc *req) {
    req->len = 4;
    smp_wmb();
    req->recd = 1;
}
"#;
        assert_eq!(fingerprints_of(BUGGY), fingerprints_of(swapped));
    }

    #[test]
    fn rewriting_the_flagged_statement_changes_fingerprints() {
        // The misplaced read moves into a different statement: same class,
        // same object, same function — but a different anchor.
        let moved = BUGGY.replace(
            "    if (!req->recd)\n        return;",
            "    int done = req->recd;\n    if (!done)\n        return;",
        );
        assert_ne!(fingerprints_of(BUGGY), fingerprints_of(&moved));
    }

    #[test]
    fn identical_findings_get_distinct_ordinals() {
        // Two copies of the same buggy pattern in one file, with the same
        // struct/function-irrelevant shape: records must not collide.
        let r = Engine::new(AnalysisConfig::default()).analyze(&[SourceFile::new(
            "dup.c",
            r#"struct d { int len; int recd; };
void dec(struct d *req) {
    smp_rmb();
    if (!req->recd)
        g(req->len);
    smp_rmb();
    if (!req->recd)
        g(req->len);
}
void com(struct d *req) {
    req->len = 4;
    smp_wmb();
    req->recd = 1;
}
"#,
        )]);
        let recs = finding_records(&r.deviations, &r.sites, &r.files);
        let mut fps: Vec<&str> = recs.iter().map(|r| r.fingerprint.as_str()).collect();
        fps.sort_unstable();
        let before = fps.len();
        fps.dedup();
        assert_eq!(before, fps.len(), "fingerprints collided: {recs:?}");
    }

    #[test]
    fn records_carry_display_metadata() {
        let r = Engine::new(AnalysisConfig::default()).analyze(&[SourceFile::new("xprt.c", BUGGY)]);
        let recs = finding_records(&r.deviations, &r.sites, &r.files);
        let mis = recs
            .iter()
            .find(|r| r.rule == "misplaced-access")
            .expect("misplaced finding");
        assert_eq!(mis.file, "xprt.c");
        assert_eq!(mis.function, "decode");
        assert_eq!(mis.line, 9);
        assert_eq!(mis.object.as_deref(), Some("(struct rpc, recd)"));
        assert!(mis.render_line().contains("xprt.c:9:"));
        assert_eq!(mis.fingerprint.len(), 16);
    }
}
