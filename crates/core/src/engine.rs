//! The whole-corpus analysis engine.
//!
//! Parses and analyzes files in parallel (one worker per core, like
//! OFence's 16-core 8-minute kernel runs), performs the global pairing,
//! runs the checkers, synthesizes patches, and computes statistics.
//! A per-file cache keyed by content hash gives the paper's <30 s
//! single-file incremental re-analysis (§6.1).

use crate::annotate;
use crate::config::AnalysisConfig;
use crate::deviation::{check_all_traced, Deviation};
use crate::ir::*;
use crate::pairing::{pair_barriers_traced, PairingResult};
use crate::patch::{synthesize, Patch};
use crate::report::{DistanceHistogram, Stats};
use crate::sites::{analyze_file_traced, FileAnalysis};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// An input file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceFile {
    pub name: String,
    pub content: std::sync::Arc<str>,
}

impl SourceFile {
    pub fn new(name: impl Into<String>, content: impl Into<std::sync::Arc<str>>) -> Self {
        SourceFile {
            name: name.into(),
            content: content.into(),
        }
    }
}

/// Complete result of one analysis run.
#[derive(Debug)]
pub struct AnalysisResult {
    /// Unique id of this run (`run-` + 16 hex digits), recorded in the
    /// JSON report and the `.ofence/history.jsonl` ledger so reports and
    /// ledger entries can be cross-referenced by `ofence diff`.
    pub run_id: String,
    /// Per-file analyses, shared with the engine's cache: an `Arc` whose
    /// copy-on-write mutations (global site ids, IPA augmentation) touch
    /// only the files that actually have barrier sites.
    pub files: Vec<Arc<FileAnalysis>>,
    /// All barrier sites, globally numbered.
    pub sites: Vec<BarrierSite>,
    pub pairing: PairingResult,
    pub deviations: Vec<Deviation>,
    pub patches: Vec<Patch>,
    /// §7 annotation findings and patches, kept separate from bug fixes.
    pub annotations: Vec<Deviation>,
    pub annotation_patches: Vec<Patch>,
    pub stats: Stats,
    /// Observability snapshot of this run: phase spans with per-file
    /// attribution, decision counters, histograms. Feeds `--trace-out`
    /// (Chrome tracing) and `--metrics-out` (Prometheus text).
    pub obs: obs::Snapshot,
}

impl AnalysisResult {
    /// The site with a given id (ids are dense indices into `sites`).
    pub fn site(&self, id: BarrierId) -> &BarrierSite {
        &self.sites[id.0 as usize]
    }

    /// Figure 7 data: distances of read accesses around read barriers.
    pub fn read_distance_histogram(&self) -> DistanceHistogram {
        let mut h = DistanceHistogram::default();
        for s in &self.sites {
            if !s.is_read_barrier() {
                continue;
            }
            for a in &s.accesses {
                if a.kind == AccessKind::Read {
                    h.record(a.distance);
                }
            }
        }
        h
    }

    /// Figure 6 companion: distances of write accesses around write
    /// barriers.
    pub fn write_distance_histogram(&self) -> DistanceHistogram {
        let mut h = DistanceHistogram::default();
        for s in &self.sites {
            if !s.is_write_barrier() {
                continue;
            }
            for a in &s.accesses {
                if a.kind == AccessKind::Write {
                    h.record(a.distance);
                }
            }
        }
        h
    }
}

/// The analysis engine. Holds configuration, the incremental cache, and
/// the run recorder.
/// Per-worker result slot: locked only by its owning worker.
type WorkerSlot = Mutex<Vec<(usize, Arc<FileAnalysis>)>>;

pub struct Engine {
    pub config: AnalysisConfig,
    /// file path -> (content hash, cached per-file analysis). An entry is
    /// used only when both the path and the content hash match; entries
    /// whose path vanished from the corpus are evicted on every run.
    /// Entries are `Arc`-shared with run results, so a warm hit is a
    /// refcount bump instead of a deep `FileAnalysis` clone.
    cache: HashMap<String, (u64, Arc<FileAnalysis>)>,
    /// Observability recorder, reset at the start of every run so spans
    /// and counters are per-run (never cumulative across incremental
    /// re-analyses).
    recorder: obs::Recorder,
    /// Counters accumulated between runs (e.g. by a disk-cache load) and
    /// flushed into the recorder right after the per-run reset, so they
    /// land in the next run's snapshot.
    pending_counts: Vec<(String, u64)>,
    /// How many entries the "slowest files" ranking keeps (`--slow-files`).
    /// Presentation only — deliberately not part of [`AnalysisConfig`],
    /// so changing it never invalidates caches or fingerprints.
    slow_files: usize,
}

impl Engine {
    pub fn new(config: AnalysisConfig) -> Engine {
        Engine {
            config,
            cache: HashMap::new(),
            recorder: obs::Recorder::new(),
            pending_counts: Vec::new(),
            slow_files: DEFAULT_SLOW_FILES,
        }
    }

    /// Keep the top `n` slowest files in [`Stats::slowest_files`]
    /// (default [`DEFAULT_SLOW_FILES`]).
    pub fn set_slow_files(&mut self, n: usize) {
        self.slow_files = n;
    }

    /// The engine's recorder (e.g. to add caller-side spans around a run).
    pub fn recorder(&self) -> &obs::Recorder {
        &self.recorder
    }

    /// Hydrate the incremental cache from `dir` (see [`crate::cache`]).
    /// Stale or corrupt caches are discarded, never an error; the number
    /// of loaded entries is reported as `cache_loads` in the next run's
    /// counters.
    pub fn load_disk_cache(&mut self, dir: &std::path::Path) -> crate::cache::LoadOutcome {
        let t0 = std::time::Instant::now();
        let (entries, outcome) = crate::cache::load(dir, &self.config);
        self.pending_counts
            .push(("shard_load_us".to_string(), t0.elapsed().as_micros() as u64));
        self.pending_counts
            .push(("cache_loads".to_string(), entries.len() as u64));
        if matches!(outcome, crate::cache::LoadOutcome::Discarded { .. }) {
            self.pending_counts.push(("cache_discarded".to_string(), 1));
        }
        self.cache.extend(entries);
        outcome
    }

    /// Flush the incremental cache to `dir`, creating it if needed.
    /// Returns the number of entries written. The wall time spent
    /// writing shards is queued as `shard_save_us` for the *next* run's
    /// snapshot (a save happens after the current run's snapshot is
    /// already taken).
    pub fn save_disk_cache(&mut self, dir: &std::path::Path) -> Result<usize, String> {
        let t0 = std::time::Instant::now();
        let n = crate::cache::save(dir, &self.config, &self.cache)?;
        self.pending_counts
            .push(("shard_save_us".to_string(), t0.elapsed().as_micros() as u64));
        Ok(n)
    }

    /// Queue a counter for the next run's snapshot (used by drivers that
    /// want their own counters — e.g. `watch_iterations` — exported next
    /// to the engine's).
    pub fn queue_count(&mut self, name: &str, delta: u64) {
        self.pending_counts.push((name.to_string(), delta));
    }

    /// Analyze a corpus from scratch (cache is still populated for
    /// subsequent incremental runs).
    pub fn analyze(&mut self, files: &[SourceFile]) -> AnalysisResult {
        self.recorder.reset();
        for (name, delta) in self.pending_counts.drain(..) {
            self.recorder.count(&name, delta);
        }
        let root = self.recorder.open("analyze");
        let analyses = self.analyze_files(files);
        self.finish(analyses, root)
    }

    /// Re-analyze after edits: unchanged files come from the cache, only
    /// changed files are re-parsed; pairing and checking always re-run
    /// globally (they are cheap relative to parsing).
    pub fn analyze_incremental(&mut self, files: &[SourceFile]) -> AnalysisResult {
        self.analyze(files)
    }

    fn analyze_files(&mut self, files: &[SourceFile]) -> Vec<Arc<FileAnalysis>> {
        // Evict entries whose path is gone from the corpus: a rename or
        // deletion must not leave a stale FileAnalysis that a future save
        // would write back to disk.
        let current: std::collections::HashSet<&str> =
            files.iter().map(|f| f.name.as_str()).collect();
        let before = self.cache.len();
        self.cache.retain(|path, _| current.contains(path.as_str()));
        self.recorder
            .count("cache_evictions", (before - self.cache.len()) as u64);
        // Split into cached and to-do.
        let mut results: Vec<Option<Arc<FileAnalysis>>> = vec![None; files.len()];
        let mut todo: Vec<usize> = Vec::new();
        for (i, f) in files.iter().enumerate() {
            let h = fnv1a(f.content.as_bytes());
            match self.cache.get_mut(&f.name) {
                Some((ch, fa)) if *ch == h => {
                    // Warm hit: a refcount bump. The cached entry is
                    // patched in place (copy-on-write) the first time it
                    // is served at a new corpus position or without its
                    // source text (disk-loaded entries carry none — the
                    // hash match guarantees it equals the live content);
                    // steady-state watch iterations clone nothing.
                    if fa.file != i || fa.source.is_empty() {
                        let m = Arc::make_mut(fa);
                        m.file = i;
                        if m.source.is_empty() {
                            m.source = f.content.clone();
                        }
                        for s in &mut m.sites {
                            s.site.file = i;
                        }
                    }
                    results[i] = Some(fa.clone());
                    self.recorder.count("engine_cache_hits", 1);
                }
                _ => todo.push(i),
            }
        }
        self.recorder
            .count("engine_files_analyzed", todo.len() as u64);
        // Parallel per-file analysis of the remainder on the persistent
        // work-stealing pool. Largest files first: the round-robin deal
        // spreads the heavy head across worker deques, and stealing only
        // has to trim the tail.
        todo.sort_by_key(|&i| std::cmp::Reverse(files[i].content.len()));
        let pool = crate::pool::global();
        self.recorder
            .count("workers", pool.workers().min(todo.len().max(1)) as u64);
        // Per-worker result vectors: each slot is locked only by its
        // owning worker, replacing the old contended `Mutex<Vec<_>>`.
        let slots: Vec<WorkerSlot> = (0..pool.workers())
            .map(|_| Mutex::new(Vec::new()))
            .collect();
        let config = &self.config;
        let rec = &self.recorder;
        let frontend = &ckit::FrontendConfig::default();
        pool.run_batch(&todo, rec, &|w, i| {
            let f = &files[i];
            let fa = match ckit::parse_traced_shared(&f.name, &f.content, frontend, rec) {
                Ok(parsed) => analyze_file_traced(i, &parsed, config, rec),
                Err(_) => {
                    rec.count("engine_unparseable_files", 1);
                    FileAnalysis {
                        file: i,
                        name: f.name.clone(),
                        source: f.content.clone(),
                        sites: Vec::new(),
                        functions: Vec::new(),
                        parse_error_count: 1,
                        summaries: Vec::new(),
                        window_calls: Vec::new(),
                    }
                }
            };
            slots[w]
                .lock()
                .expect("worker slot")
                .push((i, Arc::new(fa)));
        });
        for slot in slots {
            for (i, fa) in slot.into_inner().expect("worker slot") {
                // The cache and the result share the same `Arc`: no deep
                // clone on insert, and `finish`'s mutations copy-on-write
                // only the files they touch.
                self.cache.insert(
                    files[i].name.clone(),
                    (fnv1a(files[i].content.as_bytes()), fa.clone()),
                );
                results[i] = Some(fa);
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every file analyzed"))
            .collect()
    }

    fn finish(&self, mut files: Vec<Arc<FileAnalysis>>, root: u64) -> AnalysisResult {
        let rec = &self.recorder;
        // Inter-procedural summary composition: merge (transitive) callee
        // accesses into barrier windows before pairing. Runs on the
        // cached per-file artifacts only — no re-parsing — so it is cheap
        // even on warm-cache incremental runs.
        let composed = if self.config.ipa_depth > 0 {
            let _span = rec.span("compose");
            // Composition is rooted at the callees named in barrier
            // windows: only their call cones can ever be spliced, so the
            // pass scales with the barrier neighborhood, not the corpus.
            let roots: Vec<(usize, String)> = files
                .iter()
                .flat_map(|fa| {
                    fa.window_calls
                        .iter()
                        .flatten()
                        .map(|c| (fa.file, c.callee.clone()))
                })
                .collect();
            let index =
                crate::summary::ComposedIndex::build_rooted(&files, self.config.ipa_depth, &roots);
            rec.count("ipa_compose_functions", index.len() as u64);
            let (touched, added) = crate::summary::augment_sites(&mut files, &index, &self.config);
            rec.count("ipa_sites_augmented", touched);
            rec.count("ipa_composed_accesses", added);
            Some(index)
        } else {
            None
        };
        // Assign global barrier ids, deterministic in file order.
        // Copy-on-write: only files that actually have sites are cloned
        // out of the cache-shared `Arc`s; site-free files stay shared.
        let mut sites: Vec<BarrierSite> = Vec::new();
        for fa in &mut files {
            if fa.sites.is_empty() {
                continue;
            }
            let m = Arc::make_mut(fa);
            for site in &mut m.sites {
                site.id = BarrierId(sites.len() as u32);
                sites.push(site.clone());
            }
        }
        let pairing = pair_barriers_traced(&sites, &self.config, rec);
        let mut deviations = check_all_traced(&sites, &pairing, &files, &self.config, rec);
        if self.config.detect_missing {
            deviations.extend(crate::missing::detect_traced(
                &files,
                &sites,
                &pairing,
                &self.config,
                composed.as_ref(),
                rec,
            ));
        }
        // Inline suppression: drop findings whose anchor line (or the
        // line above it) carries an `ofence-ignore` comment. Happens
        // before patch synthesis so suppressed findings produce nothing.
        let before = deviations.len();
        deviations.retain(|d| !suppressed(d, &files));
        rec.count("suppressed", (before - deviations.len()) as u64);
        let patches: Vec<Patch> = {
            let _span = rec.span("patch");
            deviations
                .iter()
                .filter_map(|d| synthesize(d, &files[d.site.file]))
                .collect()
        };
        rec.count("patches_emitted", patches.len() as u64);
        let (annotations, annotation_patches) = {
            let _span = rec.span("annotate");
            let mut annotations = annotate::find_missing_annotations(&sites, &pairing);
            annotations.retain(|d| !suppressed(d, &files));
            let annotation_patches: Vec<Patch> = annotations
                .iter()
                .filter_map(|d| annotate::synthesize_annotation(d, &files[d.site.file]))
                .collect();
            (annotations, annotation_patches)
        };
        rec.count("annotations_emitted", annotations.len() as u64);
        // Close the root span so the snapshot contains it, then derive the
        // run's wall-clock from that span (replaces the old ad-hoc Instant).
        rec.close(root);
        let obs = rec.snapshot();
        let stats = Stats::compute(
            &files,
            &sites,
            &pairing,
            &deviations,
            patches.len(),
            &obs,
            self.slow_files,
        );
        AnalysisResult {
            run_id: fresh_run_id(&self.config),
            files,
            sites,
            pairing,
            deviations,
            patches,
            annotations,
            annotation_patches,
            stats,
            obs,
        }
    }

    /// Figure 6: number of pairings as a function of the write-barrier
    /// exploration window.
    pub fn sweep_write_window(
        files: &[SourceFile],
        base: &AnalysisConfig,
        windows: impl IntoIterator<Item = u32>,
    ) -> Vec<(u32, usize)> {
        windows
            .into_iter()
            .map(|w| {
                let mut engine = Engine::new(AnalysisConfig {
                    write_window: w,
                    ..base.clone()
                });
                let r = engine.analyze(files);
                (w, r.stats.pairings)
            })
            .collect()
    }
}

/// Default length of the "slowest files" ranking (the historical top-5).
pub const DEFAULT_SLOW_FILES: usize = 5;

/// FNV-1a content hash for the incremental cache (shared with the disk
/// cache format).
use crate::cache::content_hash as fnv1a;

/// True when the finding's anchor line, or the line directly above it,
/// carries an `ofence-ignore` comment.
fn suppressed(d: &Deviation, files: &[Arc<FileAnalysis>]) -> bool {
    let Some(fa) = files.get(d.site.file) else {
        return false;
    };
    let anchor = d.access_span.unwrap_or(d.site.span);
    let lo = (anchor.lo as usize).min(fa.source.len());
    let line_start = fa.source[..lo].rfind('\n').map(|i| i + 1).unwrap_or(0);
    let line_end = fa.source[lo..]
        .find('\n')
        .map(|i| lo + i)
        .unwrap_or(fa.source.len());
    if fa.source[line_start..line_end].contains("ofence-ignore") {
        return true;
    }
    if line_start == 0 {
        return false;
    }
    let prev_start = fa.source[..line_start - 1]
        .rfind('\n')
        .map(|i| i + 1)
        .unwrap_or(0);
    fa.source[prev_start..line_start - 1].contains("ofence-ignore")
}

/// A unique run id: hash of the config fingerprint, the wall clock, and
/// a process-wide counter (so two runs in the same nanosecond still get
/// distinct ids). Not content-derived on purpose — two identical runs
/// are still two ledger entries.
fn fresh_run_id(config: &AnalysisConfig) -> String {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let seed = format!(
        "{:016x}:{nanos}:{seq}:{}",
        crate::cache::config_fingerprint(config),
        std::process::id()
    );
    format!("run-{:016x}", fnv1a(seed.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn listing1_files() -> Vec<SourceFile> {
        vec![
            SourceFile::new(
                "reader.c",
                r#"struct my_struct { int init; int y; };
void reader(struct my_struct *a) {
    if (!a->init)
        return;
    smp_rmb();
    f(a->y);
}
"#,
            ),
            SourceFile::new(
                "writer.c",
                r#"struct my_struct { int init; int y; };
void writer(struct my_struct *b) {
    b->y = 1;
    smp_wmb();
    b->init = 1;
}
"#,
            ),
        ]
    }

    #[test]
    fn cross_file_pairing() {
        let mut engine = Engine::new(AnalysisConfig::default());
        let r = engine.analyze(&listing1_files());
        assert_eq!(r.sites.len(), 2);
        assert_eq!(r.pairing.pairings.len(), 1);
        let p = &r.pairing.pairings[0];
        let files: Vec<usize> = p.members.iter().map(|&m| r.site(m).site.file).collect();
        assert!(files.contains(&0) && files.contains(&1));
    }

    #[test]
    fn site_ids_are_dense_and_ordered() {
        let mut engine = Engine::new(AnalysisConfig::default());
        let r = engine.analyze(&listing1_files());
        for (i, s) in r.sites.iter().enumerate() {
            assert_eq!(s.id.0 as usize, i);
        }
    }

    #[test]
    fn incremental_reuses_cache() {
        let files = listing1_files();
        let mut engine = Engine::new(AnalysisConfig::default());
        let r1 = engine.analyze(&files);
        // Unchanged re-run: identical results.
        let r2 = engine.analyze_incremental(&files);
        assert_eq!(r1.stats.pairings, r2.stats.pairings);
        assert_eq!(r1.sites.len(), r2.sites.len());
    }

    #[test]
    fn incremental_picks_up_edits() {
        let mut files = listing1_files();
        let mut engine = Engine::new(AnalysisConfig::default());
        let r1 = engine.analyze(&files);
        assert_eq!(r1.pairing.pairings.len(), 1);
        // Break the reader: remove its barrier.
        files[0].content = files[0].content.replace("smp_rmb();", ";").into();
        let r2 = engine.analyze_incremental(&files);
        assert_eq!(r2.sites.len(), 1);
        assert!(r2.pairing.pairings.is_empty());
    }

    #[test]
    fn stats_reflect_run() {
        let mut engine = Engine::new(AnalysisConfig::default());
        let r = engine.analyze(&listing1_files());
        assert_eq!(r.stats.files_total, 2);
        assert_eq!(r.stats.files_with_barriers, 2);
        assert_eq!(r.stats.barriers_total, 2);
        assert_eq!(r.stats.barriers_by_kind["smp_rmb"], 1);
        assert_eq!(r.stats.barriers_by_kind["smp_wmb"], 1);
        assert_eq!(r.stats.pairings, 1);
        assert!((r.stats.coverage - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unparseable_file_does_not_abort_run() {
        let mut files = listing1_files();
        files.push(SourceFile::new("broken.c", "int @ garbage"));
        let mut engine = Engine::new(AnalysisConfig::default());
        let r = engine.analyze(&files);
        assert_eq!(r.stats.files_total, 3);
        assert!(r.stats.parse_errors > 0);
        assert_eq!(r.pairing.pairings.len(), 1);
    }

    #[test]
    fn histograms_populated() {
        let mut engine = Engine::new(AnalysisConfig::default());
        let r = engine.analyze(&listing1_files());
        assert!(r.read_distance_histogram().total() > 0);
        assert!(r.write_distance_histogram().total() > 0);
    }

    #[test]
    fn window_sweep_monotone_until_plateau() {
        let files = listing1_files();
        let sweep = Engine::sweep_write_window(&files, &AnalysisConfig::default(), [1, 2, 5, 10]);
        assert_eq!(sweep.len(), 4);
        // Pairings never decrease with a larger window on this corpus.
        for w in sweep.windows(2) {
            assert!(w[1].1 >= w[0].1, "{sweep:?}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let files = listing1_files();
        let r1 = Engine::new(AnalysisConfig::default()).analyze(&files);
        let r2 = Engine::new(AnalysisConfig::default()).analyze(&files);
        assert_eq!(
            format!("{:?}", r1.pairing.pairings),
            format!("{:?}", r2.pairing.pairings)
        );
        assert_eq!(r1.deviations.len(), r2.deviations.len());
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;

    #[test]
    fn pair_with_atomics_end_to_end() {
        let files = vec![SourceFile::new(
            "refcount.c",
            r#"struct obj { int data; atomic_t refs; };
void producer(struct obj *p, int v) {
    p->data = v;
    smp_wmb();
    atomic_inc(&p->refs);
}
void consumer(struct obj *p) {
    if (atomic_dec_and_test(&p->refs))
        release(p->data);
}
"#,
        )];
        let off = Engine::new(AnalysisConfig::default()).analyze(&files);
        assert!(off.pairing.pairings.is_empty());
        assert_eq!(off.stats.barriers_total, 1);

        let on = Engine::new(AnalysisConfig {
            pair_with_atomics: true,
            ..Default::default()
        })
        .analyze(&files);
        assert_eq!(on.pairing.pairings.len(), 1);
        assert_eq!(on.stats.barriers_total, 2);
        assert!(on
            .stats
            .barriers_by_kind
            .contains_key("atomic-rmw (pair_with_atomics)"));
        // Promoted atomics must never be reported as removable barriers.
        assert!(on
            .deviations
            .iter()
            .all(|d| !matches!(d.kind, crate::DeviationKind::UnneededBarrier { .. })));
    }

    #[test]
    fn annotations_exposed_on_result() {
        let files = vec![SourceFile::new(
            "m.c",
            r#"struct m { int init; int y; };
void reader(struct m *a) { if (!a->init) return; smp_rmb(); f(a->y); }
void writer(struct m *b) { b->y = 1; smp_wmb(); b->init = 1; }
"#,
        )];
        let r = Engine::new(AnalysisConfig::default()).analyze(&files);
        assert_eq!(r.annotations.len(), 4); // init + y, both sides
        assert_eq!(r.annotation_patches.len(), 4);
        for p in &r.annotation_patches {
            assert!(p.diff.contains("ONCE("), "{}", p.diff);
        }
    }

    #[test]
    fn read_window_zero_sees_only_implied_accesses() {
        let files = vec![SourceFile::new(
            "m.c",
            r#"struct s { int data; int flag; };
void w(struct s *p) { p->data = 1; smp_store_release(&p->flag, 1); }
int r(struct s *p) { if (!smp_load_acquire(&p->flag)) return 0; return p->data; }
"#,
        )];
        let r = Engine::new(AnalysisConfig {
            read_window: 0,
            write_window: 0,
            ..Default::default()
        })
        .analyze(&files);
        // The primitives' own accesses (flag) remain; data is outside.
        for s in &r.sites {
            assert!(s
                .accesses
                .iter()
                .all(|a| a.object == crate::SharedObject::new("s", "flag")));
        }
        // One common object < 2 minimum: no pairing.
        assert!(r.pairing.pairings.is_empty());
    }
}
