//! Persistent work-stealing worker pool.
//!
//! The engine used to spawn a fresh `thread::scope` per run and feed
//! workers from a single atomic cursor, collecting results through one
//! contended `Mutex<Vec<_>>`. This module replaces that with a pool of
//! long-lived workers (reused across watch iterations and repeated
//! [`crate::engine::Engine`] runs) fed from per-worker deques:
//!
//! * each worker owns a deque seeded round-robin with the batch's tasks
//!   (the caller pre-sorts tasks largest-first, so the round-robin deal
//!   spreads the heavy head across workers);
//! * a worker pops from the **back** of its own deque and, when empty,
//!   steals from the **front** of a sibling's — stolen tasks are the
//!   ones their owner would reach last, which keeps the steal rate and
//!   the idle tail low;
//! * results never funnel through a shared vector: the job closure
//!   receives `(worker, task)` so callers keep per-worker result
//!   vectors, each locked only by its owning worker.
//!
//! Telemetry per batch, recorded into the caller's [`obs::Recorder`]:
//! `worker_busy_us` / `worker_idle_us` (idle = batch wall minus own busy
//! time, i.e. wake-up latency plus the queue-exhaustion tail),
//! `pool_steals`, and a `worker_files` histogram sample per worker.
//!
//! # Safety
//!
//! `run_batch` hands the workers a borrowed closure and recorder via
//! type-erased pointers. It does not return until every task has
//! finished **and** every worker has dropped out of the batch, so the
//! borrows strictly outlive all use — the classic scoped-pool contract,
//! enforced by the `remaining`/`active` accounting under the state lock.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Instant;

/// A batch job: type-erased borrowed closure plus the batch start time.
/// Only dereferenced while the owning `run_batch` call is blocked.
struct Job {
    run: *const (dyn Fn(usize, usize) + Sync),
    started: Instant,
}

// SAFETY: the pointer targets live on the `run_batch` caller's stack and
// are only dereferenced between batch publication and the final worker
// sign-off, both of which happen before `run_batch` returns.
unsafe impl Send for Job {}

struct State {
    /// Current batch, if any. `epoch` distinguishes batches so a worker
    /// never re-enters one it already finished.
    job: Option<Job>,
    epoch: u64,
    deques: Vec<VecDeque<usize>>,
    /// Tasks not yet completed in the current batch.
    remaining: usize,
    /// Workers still inside the current batch.
    active: usize,
    shutdown: bool,
}

struct PerWorker {
    busy_us: AtomicU64,
    idle_us: AtomicU64,
    tasks: AtomicU64,
}

struct Shared {
    state: Mutex<State>,
    /// Wakes workers when a batch is published (or on shutdown).
    work_ready: Condvar,
    /// Wakes the submitter when the last worker signs off.
    batch_done: Condvar,
    per_worker: Vec<PerWorker>,
    steals: AtomicU64,
}

/// Per-batch utilization, also flushed into the recorder by `run_batch`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    pub busy_us: u64,
    pub idle_us: u64,
    pub steals: u64,
}

/// A persistent pool of `n` workers. One global instance (sized to the
/// machine) is shared by every engine via [`global`]; tests build small
/// explicit pools to exercise stealing deterministically.
pub struct Pool {
    shared: &'static Shared,
    workers: usize,
    /// Serializes batches: the pool runs one batch at a time, so two
    /// engines analyzing concurrently take turns rather than interleave.
    submit: Mutex<()>,
}

impl Pool {
    /// Spawn a pool with `n` workers (at least 1). Workers park on a
    /// condvar between batches; an idle pool costs nothing but memory.
    pub fn new(n: usize) -> Pool {
        let n = n.max(1);
        // The pool's threads never terminate (workers of the global pool
        // outlive every engine), so the shared block is simply leaked —
        // one allocation per pool, and tests create only a handful.
        let shared: &'static Shared = Box::leak(Box::new(Shared {
            state: Mutex::new(State {
                job: None,
                epoch: 0,
                deques: (0..n).map(|_| VecDeque::new()).collect(),
                remaining: 0,
                active: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            batch_done: Condvar::new(),
            per_worker: (0..n)
                .map(|_| PerWorker {
                    busy_us: AtomicU64::new(0),
                    idle_us: AtomicU64::new(0),
                    tasks: AtomicU64::new(0),
                })
                .collect(),
            steals: AtomicU64::new(0),
        }));
        for w in 0..n {
            std::thread::Builder::new()
                .name(format!("ofence-pool-{w}"))
                .spawn(move || worker_loop(shared, w))
                .expect("spawn pool worker");
        }
        Pool {
            shared,
            workers: n,
            submit: Mutex::new(()),
        }
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run `f(worker, task)` for every task index in `tasks`, blocking
    /// until all complete. Tasks are dealt round-robin to the worker
    /// deques in the given order — pass them sorted by decreasing cost
    /// so the deal balances and stealing only has to trim the tail.
    ///
    /// Utilization counters and a `pool_steals` count for this batch are
    /// recorded into `rec`.
    pub fn run_batch(
        &self,
        tasks: &[usize],
        rec: &obs::Recorder,
        f: &(dyn Fn(usize, usize) + Sync),
    ) -> BatchStats {
        if tasks.is_empty() {
            return BatchStats::default();
        }
        let _turn = self.submit.lock().expect("pool submit");
        let shared = self.shared;
        for pw in &shared.per_worker {
            pw.busy_us.store(0, Ordering::Relaxed);
            pw.idle_us.store(0, Ordering::Relaxed);
            pw.tasks.store(0, Ordering::Relaxed);
        }
        shared.steals.store(0, Ordering::Relaxed);
        {
            let mut st = shared.state.lock().expect("pool state");
            for (k, &t) in tasks.iter().enumerate() {
                st.deques[k % self.workers].push_back(t);
            }
            st.remaining = tasks.len();
            st.active = self.workers;
            st.epoch += 1;
            // SAFETY: see module docs — cleared below before returning.
            st.job = Some(Job {
                run: unsafe {
                    std::mem::transmute::<
                        *const (dyn Fn(usize, usize) + Sync),
                        *const (dyn Fn(usize, usize) + Sync),
                    >(f as *const _)
                },
                started: Instant::now(),
            });
            shared.work_ready.notify_all();
            let mut st = shared
                .batch_done
                .wait_while(st, |st| st.remaining > 0 || st.active > 0)
                .expect("pool batch");
            st.job = None;
        }
        let mut stats = BatchStats::default();
        for pw in &shared.per_worker {
            let busy = pw.busy_us.load(Ordering::Relaxed);
            let idle = pw.idle_us.load(Ordering::Relaxed);
            stats.busy_us += busy;
            stats.idle_us += idle;
            rec.count("worker_busy_us", busy);
            rec.count("worker_idle_us", idle);
            rec.observe("worker_files", pw.tasks.load(Ordering::Relaxed));
        }
        stats.steals = shared.steals.load(Ordering::Relaxed);
        rec.count("pool_steals", stats.steals);
        stats
    }
}

/// The process-wide pool, sized to the machine, created on first use and
/// reused by every subsequent engine run.
pub fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        Pool::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        )
    })
}

fn worker_loop(shared: &'static Shared, w: usize) {
    let mut seen_epoch = 0u64;
    loop {
        // Park until a batch newer than the last one we worked appears.
        let (run, started, epoch) = {
            let mut st = shared.state.lock().expect("pool state");
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(job) = &st.job {
                    if st.epoch > seen_epoch {
                        break (job.run, job.started, st.epoch);
                    }
                }
                st = shared.work_ready.wait(st).expect("pool state");
            }
        };
        seen_epoch = epoch;
        let mut busy_us = 0u64;
        let mut tasks_done = 0u64;
        loop {
            // Own deque from the back; steal from a sibling's front.
            let task = {
                let mut st = shared.state.lock().expect("pool state");
                if st.epoch != epoch {
                    None
                } else if let Some(t) = st.deques[w].pop_back() {
                    Some(t)
                } else {
                    let n = st.deques.len();
                    let mut stolen = None;
                    for off in 1..n {
                        if let Some(t) = st.deques[(w + off) % n].pop_front() {
                            stolen = Some(t);
                            break;
                        }
                    }
                    if stolen.is_some() {
                        shared.steals.fetch_add(1, Ordering::Relaxed);
                    }
                    stolen
                }
            };
            let Some(task) = task else { break };
            let t0 = Instant::now();
            // SAFETY: `remaining > 0` (this task), so the submitter is
            // still blocked and the closure borrow is live.
            unsafe { (*run)(w, task) };
            busy_us += t0.elapsed().as_micros() as u64;
            tasks_done += 1;
            let mut st = shared.state.lock().expect("pool state");
            st.remaining -= 1;
        }
        // Publish this worker's utilization, then sign off. The slots
        // are written strictly before the last `active` decrement wakes
        // the submitter, which reads them after the condvar handoff.
        let wall_us = started.elapsed().as_micros() as u64;
        let pw = &shared.per_worker[w];
        pw.busy_us.store(busy_us, Ordering::Relaxed);
        pw.idle_us
            .store(wall_us.saturating_sub(busy_us), Ordering::Relaxed);
        pw.tasks.store(tasks_done, Ordering::Relaxed);
        let mut st = shared.state.lock().expect("pool state");
        st.active -= 1;
        if st.remaining == 0 && st.active == 0 {
            shared.batch_done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_every_task_once() {
        let pool = Pool::new(4);
        let rec = obs::Recorder::new();
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let tasks: Vec<usize> = (0..64).collect();
        pool.run_batch(&tasks, &rec, &|_w, t| {
            hits[t].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn reuse_across_batches() {
        let pool = Pool::new(2);
        let rec = obs::Recorder::new();
        let total = AtomicUsize::new(0);
        for round in 1..=5usize {
            let tasks: Vec<usize> = (0..round * 3).collect();
            pool.run_batch(&tasks, &rec, &|_w, _t| {
                total.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 3 + 6 + 9 + 12 + 15);
    }

    #[test]
    fn steals_close_the_idle_tail() {
        // One long task dealt to worker 0, many short ones to the rest:
        // with 4 workers and a round-robin deal every worker gets work,
        // and once the short queues drain the idle workers must steal
        // worker 0's remaining tasks for the batch to finish quickly.
        let pool = Pool::new(4);
        let rec = obs::Recorder::new();
        let tasks: Vec<usize> = (0..32).collect();
        let stats = pool.run_batch(&tasks, &rec, &|_w, t| {
            if t % 4 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        });
        // All of worker 0's tasks sleep; siblings finish early and steal.
        assert!(
            stats.steals > 0,
            "expected steals in an unbalanced batch, got {stats:?}"
        );
        assert_eq!(rec.snapshot().count_of("pool_steals"), stats.steals);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let pool = Pool::new(2);
        let rec = obs::Recorder::new();
        let stats = pool.run_batch(&[], &rec, &|_w, _t| panic!("no tasks"));
        assert_eq!(stats, BatchStats::default());
    }

    #[test]
    fn per_worker_slots_are_disjoint() {
        // The (worker, task) contract: per-worker result vectors need no
        // cross-worker synchronization beyond their own mutex.
        let pool = Pool::new(3);
        let rec = obs::Recorder::new();
        let slots: Vec<Mutex<Vec<usize>>> = (0..3).map(|_| Mutex::new(Vec::new())).collect();
        let tasks: Vec<usize> = (0..48).collect();
        pool.run_batch(&tasks, &rec, &|w, t| {
            slots[w].lock().unwrap().push(t);
        });
        let mut all: Vec<usize> = slots
            .iter()
            .flat_map(|s| s.lock().unwrap().clone())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..48).collect::<Vec<_>>());
    }
}
