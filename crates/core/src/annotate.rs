//! §7 extension: add missing `READ_ONCE`/`WRITE_ONCE` annotations.
//!
//! For barriers that correctly order reads and writes to shared objects,
//! the accesses to those concurrently-accessed objects should be
//! annotated to prevent compiler load/store tearing and fusing. This pass
//! finds unannotated accesses in paired windows and produces patches that
//! add the annotation (paper Patch 5).

use crate::deviation::{Deviation, DeviationKind};
use crate::ir::*;
use crate::pairing::PairingResult;
use crate::patch::{apply_edits, line_diff, Edit, Patch};
use crate::sites::FileAnalysis;
use ckit::ast::{AssignOp, ExprKind, Stmt, StmtKind};
use ckit::span::Span;
use kmodel::OnceKind;

/// Find unannotated concurrent accesses in paired barrier windows.
pub fn find_missing_annotations(sites: &[BarrierSite], pairing: &PairingResult) -> Vec<Deviation> {
    let mut out = Vec::new();
    let mut seen_spans: std::collections::HashSet<(usize, Span)> = Default::default();
    for p in &pairing.pairings {
        for &member in &p.members {
            let site = sites.iter().find(|s| s.id == member).expect("member site");
            for a in &site.accesses {
                if a.annotated || a.cross_function {
                    continue;
                }
                if !p.objects.contains(&a.object) {
                    continue;
                }
                // The barrier primitive's own access (store_release etc.)
                // is already tear-proof.
                if site.site.span.contains(a.span) {
                    continue;
                }
                // Seqcount counters are handled by the seqcount API.
                if site.counter.as_ref() == Some(&a.object) {
                    continue;
                }
                if !seen_spans.insert((site.site.file, a.span)) {
                    continue;
                }
                // Nested member chains (`l->fa->fb`) yield accesses with
                // overlapping spans; annotating both would produce
                // conflicting edits. Keep the first (outermost reported).
                let overlaps = seen_spans.iter().any(|&(f, s)| {
                    f == site.site.file && s != a.span && s.lo < a.span.hi && a.span.lo < s.hi
                });
                if overlaps {
                    continue;
                }
                let once = match a.kind {
                    AccessKind::Read => OnceKind::Read,
                    AccessKind::Write => OnceKind::Write,
                };
                out.push(Deviation {
                    kind: DeviationKind::MissingOnce { once },
                    barrier: site.id,
                    site: site.site.clone(),
                    object: Some(a.object.clone()),
                    access_span: Some(a.span),
                    explanation: format!(
                        "{} is accessed concurrently (the barrier in {}() is \
                         paired); annotate the {} with {}() to prevent \
                         compiler tearing/fusing",
                        a.object,
                        site.site.function,
                        match a.kind {
                            AccessKind::Read => "read",
                            AccessKind::Write => "write",
                        },
                        once.name(),
                    ),
                });
            }
        }
    }
    out
}

/// Produce the annotation patch for a `MissingOnce` deviation.
pub fn synthesize_annotation(dev: &Deviation, fa: &FileAnalysis) -> Option<Patch> {
    let DeviationKind::MissingOnce { once } = &dev.kind else {
        return None;
    };
    let access_span = dev.access_span?;
    let func = fa.functions.iter().find(|f| f.name == dev.site.function)?;
    let edits = match once {
        OnceKind::Read => {
            let text = access_span.slice(&fa.source);
            vec![Edit {
                span: access_span,
                replacement: format!("READ_ONCE({text})"),
            }]
        }
        OnceKind::Write => {
            // Rewrite the enclosing simple assignment `x = v;` as
            // `WRITE_ONCE(x, v);`. Compound assignments and increments
            // are not annotatable this way — skip them.
            let stmt = crate::patch::enclosing_stmt(&func.def.body, access_span)?;
            let (lhs_span, rhs_span, assign_span) = simple_assignment(stmt, access_span)?;
            let lhs = lhs_span.slice(&fa.source);
            let rhs = rhs_span.slice(&fa.source);
            vec![Edit {
                span: assign_span,
                replacement: format!("WRITE_ONCE({lhs}, {rhs})"),
            }]
        }
    };
    let new_source = apply_edits(&fa.source, &edits)?;
    Some(Patch {
        file: fa.name.clone(),
        title: format!(
            "{}: add {} in {}()",
            fa.name,
            once.name(),
            dev.site.function
        ),
        explanation: dev.explanation.clone(),
        edits,
        diff: line_diff(&fa.source, &new_source, &fa.name),
    })
}

/// Compose all annotation edits for one file into a single conflict-free
/// edit list.
///
/// A `WRITE_ONCE` rewrite replaces the whole assignment, so `READ_ONCE`
/// annotations on reads nested in its right-hand side must be folded into
/// the rewrite's replacement text instead of emitted as separate
/// (overlapping) edits.
pub fn file_annotation_edits(devs: &[&Deviation], fa: &FileAnalysis) -> Vec<Edit> {
    // Raw edits: (deviation, edits) — writes first so reads can fold in.
    let mut write_edits: Vec<Edit> = Vec::new();
    let mut read_edits: Vec<Edit> = Vec::new();
    for dev in devs {
        let Some(patch) = synthesize_annotation(dev, fa) else {
            continue;
        };
        for e in patch.edits {
            match dev.kind {
                DeviationKind::MissingOnce {
                    once: OnceKind::Write,
                } => write_edits.push(e),
                _ => read_edits.push(e),
            }
        }
    }
    let mut out: Vec<Edit> = Vec::new();
    let mut consumed = vec![false; read_edits.len()];
    for w in write_edits {
        // Fold nested reads into the write's replacement: re-derive the
        // replacement by applying the nested read edits to the original
        // slice first.
        let nested: Vec<&Edit> = read_edits
            .iter()
            .enumerate()
            .filter(|(i, r)| {
                let inside = w.span.contains(r.span);
                if inside {
                    consumed[*i] = true;
                }
                inside
            })
            .map(|(_, r)| r)
            .collect();
        if nested.is_empty() {
            out.push(w);
            continue;
        }
        // Apply the nested edits inside the original assignment text, then
        // rebuild the WRITE_ONCE rewrite around the result.
        let shifted: Vec<Edit> = nested
            .iter()
            .map(|r| Edit {
                span: Span::new(r.span.lo - w.span.lo, r.span.hi - w.span.lo),
                replacement: r.replacement.clone(),
            })
            .collect();
        let original = w.span.slice(&fa.source);
        if let Some(inner_annotated) = apply_edits(original, &shifted) {
            // The write replacement has shape `WRITE_ONCE(lhs, rhs)`;
            // regenerate it from the annotated assignment text.
            if let Some(eq) = split_assignment(&inner_annotated) {
                let (lhs, rhs) = eq;
                out.push(Edit {
                    span: w.span,
                    replacement: format!("WRITE_ONCE({}, {})", lhs.trim(), rhs.trim()),
                });
                continue;
            }
        }
        // Fallback: keep the write rewrite, drop the nested reads.
        out.push(w);
    }
    for (i, r) in read_edits.into_iter().enumerate() {
        if !consumed[i] {
            out.push(r);
        }
    }
    // Drop any residual overlaps conservatively (outermost first).
    out.sort_by_key(|e| (e.span.lo, e.span.hi));
    let mut kept: Vec<Edit> = Vec::new();
    for e in out {
        if kept
            .last()
            .map(|prev| e.span.lo >= prev.span.hi)
            .unwrap_or(true)
        {
            kept.push(e);
        }
    }
    kept
}

/// Split `lhs = rhs` at the top-level `=` (not `==`, `<=`, …).
fn split_assignment(text: &str) -> Option<(&str, &str)> {
    let bytes = text.as_bytes();
    let mut depth = 0usize;
    for i in 0..bytes.len() {
        match bytes[i] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth = depth.saturating_sub(1),
            b'=' if depth == 0 => {
                let prev = if i > 0 { bytes[i - 1] } else { 0 };
                let next = *bytes.get(i + 1).unwrap_or(&0);
                if next != b'='
                    && !matches!(
                        prev,
                        b'=' | b'!'
                            | b'<'
                            | b'>'
                            | b'+'
                            | b'-'
                            | b'*'
                            | b'/'
                            | b'%'
                            | b'&'
                            | b'|'
                            | b'^'
                    )
                {
                    return Some((&text[..i], &text[i + 1..]));
                }
            }
            _ => {}
        }
    }
    None
}

/// If `stmt` contains a simple assignment whose LHS is exactly the access,
/// return (lhs span, rhs span, whole-assignment span).
fn simple_assignment(stmt: &Stmt, access_span: Span) -> Option<(Span, Span, Span)> {
    let mut found = None;
    if let StmtKind::Expr(e) = &stmt.kind {
        e.walk(&mut |expr| {
            if found.is_none() {
                if let ExprKind::Assign(AssignOp::Assign, lhs, rhs) = &expr.kind {
                    if lhs.span == access_span {
                        found = Some((lhs.span, rhs.span, expr.span));
                    }
                }
            }
        });
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalysisConfig;
    use crate::pairing::pair_barriers;
    use crate::sites::analyze_file;

    fn annotations(src: &str) -> (FileAnalysis, Vec<Deviation>, Vec<Patch>) {
        let config = AnalysisConfig::default();
        let parsed = ckit::parse_string("t.c", src).unwrap();
        assert!(parsed.errors.is_empty(), "{:?}", parsed.errors);
        let mut fa = analyze_file(0, &parsed, &config);
        for (i, s) in fa.sites.iter_mut().enumerate() {
            s.id = BarrierId(i as u32);
        }
        let pairing = pair_barriers(&fa.sites, &config);
        let devs = find_missing_annotations(&fa.sites, &pairing);
        let patches = devs
            .iter()
            .filter_map(|d| synthesize_annotation(d, &fa))
            .collect();
        (fa, devs, patches)
    }

    const LISTING1: &str = r#"struct my_struct { int init; int y; };
void reader(struct my_struct *a) {
    if (!a->init)
        return;
    smp_rmb();
    f(a->y);
}
void writer(struct my_struct *b) {
    b->y = 1;
    smp_wmb();
    b->init = 1;
}
"#;

    #[test]
    fn finds_all_unannotated_accesses() {
        let (_, devs, _) = annotations(LISTING1);
        // init + y on both sides: 4 accesses, none annotated.
        assert_eq!(devs.len(), 4, "{devs:?}");
    }

    #[test]
    fn read_annotation_wraps_access() {
        let (fa, _, patches) = annotations(LISTING1);
        let read_patch = patches
            .iter()
            .find(|p| p.title.contains("READ_ONCE") && p.explanation.contains("init"))
            .expect("read patch");
        let patched = apply_edits(&fa.source, &read_patch.edits).unwrap();
        assert!(patched.contains("READ_ONCE(a->init)"), "{patched}");
    }

    #[test]
    fn write_annotation_rewrites_assignment() {
        let (fa, _, patches) = annotations(LISTING1);
        let write_patch = patches
            .iter()
            .find(|p| p.title.contains("WRITE_ONCE") && p.explanation.contains("init"))
            .expect("write patch");
        let patched = apply_edits(&fa.source, &write_patch.edits).unwrap();
        assert!(patched.contains("WRITE_ONCE(b->init, 1)"), "{patched}");
    }

    #[test]
    fn annotated_accesses_are_skipped() {
        let src = r#"struct my_struct { int init; int y; };
void reader(struct my_struct *a) {
    if (!READ_ONCE(a->init))
        return;
    smp_rmb();
    f(READ_ONCE(a->y));
}
void writer(struct my_struct *b) {
    WRITE_ONCE(b->y, 1);
    smp_wmb();
    WRITE_ONCE(b->init, 1);
}
"#;
        let (_, devs, _) = annotations(src);
        assert!(devs.is_empty(), "{devs:?}");
    }

    #[test]
    fn store_release_target_not_flagged() {
        let src = r#"struct s { int data; int flag; };
void writer(struct s *p) {
    WRITE_ONCE(p->data, 1);
    smp_store_release(&p->flag, 1);
}
int reader(struct s *p) {
    if (!smp_load_acquire(&p->flag))
        return 0;
    return READ_ONCE(p->data);
}
"#;
        let (_, devs, _) = annotations(src);
        assert!(devs.is_empty(), "{devs:?}");
    }

    #[test]
    fn unpaired_barriers_not_annotated() {
        // Without a pairing there is no inferred concurrency, so no
        // annotations are proposed.
        let src = r#"struct s { int a; int b; };
void lonely(struct s *p) {
    p->a = 1;
    smp_wmb();
    p->b = 2;
}
"#;
        let (_, devs, _) = annotations(src);
        assert!(devs.is_empty(), "{devs:?}");
    }

    #[test]
    fn annotation_patches_apply_cleanly_together() {
        let (fa, _, patches) = annotations(LISTING1);
        // All edits combined must be non-overlapping and yield valid C.
        let all: Vec<Edit> = patches.iter().flat_map(|p| p.edits.clone()).collect();
        let patched = apply_edits(&fa.source, &all).expect("non-overlapping");
        let reparsed = ckit::parse_string("t.c", &patched).unwrap();
        assert!(
            reparsed.errors.is_empty(),
            "{:?}\n{patched}",
            reparsed.errors
        );
    }
}
