//! Deviation checkers — paper §5.
//!
//! Three cases cover all barrier usages: unpaired barriers (§5.1, unneeded
//! barrier elimination), a write barrier paired with one read barrier
//! (§5.2, deviations #1-#3), and multi-barrier pairings (§5.3, checked per
//! duo of barriers).

use crate::config::AnalysisConfig;
use crate::ir::*;
use crate::pairing::PairingResult;
use crate::sites::FileAnalysis;
use cfgir::{Cfg, NodeId, NodeKind};
use ckit::span::Span;
use kmodel::{BarrierKind, OnceKind, SeqcountOp};
use serde::{Deserialize, Serialize};

/// What kind of deviation was found.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviationKind {
    /// Deviation #1: a shared object accessed on the same side of both
    /// barriers of a pairing; the access must move to `correct_side`.
    Misplaced { correct_side: Side },
    /// Deviation #2: the barrier orders only the other kind of access.
    WrongBarrierType { replacement: BarrierKind },
    /// Deviation #3: a variable correctly read before the read barrier is
    /// racily re-read after it; the patch reuses the first read.
    RepeatedRead { first_read_span: Span },
    /// §5.1: the barrier is adjacent to an operation that already provides
    /// its ordering; it can be removed.
    UnneededBarrier { provided_by: String },
    /// §7 extension: a correctly ordered concurrent access lacks
    /// `READ_ONCE`/`WRITE_ONCE`.
    MissingOnce { once: OnceKind },
    /// Dataflow extension: a fence-less reader consumes objects published
    /// by a write barrier Algorithm 1 left unpaired — the read-side fence
    /// is missing entirely. The site points into the reader; the patch
    /// inserts `fence` between the guard load and the dependent loads.
    MissingBarrier {
        /// Function containing the unpaired write barrier.
        writer_function: String,
        /// Fence to insert (`smp_rmb`, or `smp_load_acquire` when the
        /// writer publishes via a release store).
        fence: String,
    },
}

/// One finding, self-contained enough to render a report and synthesize a
/// patch.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Deviation {
    pub kind: DeviationKind,
    /// The barrier at fault (for `Misplaced`/`RepeatedRead`, the barrier
    /// on whose side the bad access sits — biased to readers, §5.2).
    pub barrier: BarrierId,
    pub site: SiteRef,
    /// The shared object involved, when one is.
    pub object: Option<SharedObject>,
    /// Span of the offending access in the barrier's file.
    pub access_span: Option<Span>,
    /// Paper-style human explanation, embedded in the generated patch.
    pub explanation: String,
}

impl Deviation {
    /// Render a compiler-style diagnostic with the offending source line
    /// and a caret under the access (or the barrier, for barrier-level
    /// findings).
    pub fn render(&self, source: &str) -> String {
        let map = ckit::SourceMap::new(self.site.file_name.clone(), source);
        let span = self.access_span.unwrap_or(self.site.span);
        let pos = map.lookup(span.lo);
        let mut out = format!(
            "{}:{}:{}: warning: {}\n",
            self.site.file_name,
            pos.line,
            pos.col,
            crate::report::deviation_class(&self.kind)
        );
        if let Some(line_span) = map.line_span(pos.line) {
            let line_text = line_span.slice(source);
            out.push_str(&format!("  {line_text}\n"));
            let caret_col = (pos.col as usize).saturating_sub(1);
            let width =
                (span.len() as usize).clamp(1, line_text.len().saturating_sub(caret_col).max(1));
            // Reproduce tabs so the caret aligns under the code.
            let lead: String = line_text
                .chars()
                .take(caret_col)
                .map(|c| if c == '\t' { '\t' } else { ' ' })
                .collect();
            out.push_str(&format!("  {lead}{}\n", "^".repeat(width)));
        }
        out.push_str(&format!("  note: {}\n", self.explanation));
        out
    }
}

/// Per-run context threaded through the duo checkers: the per-file
/// analyses give the checkers CFG access for dataflow evidence.
pub(crate) struct CheckCtx<'a> {
    pub files: &'a [std::sync::Arc<FileAnalysis>],
    pub config: &'a AnalysisConfig,
}

/// [`check_all`] with a `check` phase span and per-class counters.
pub fn check_all_traced(
    sites: &[BarrierSite],
    pairing: &PairingResult,
    files: &[std::sync::Arc<FileAnalysis>],
    config: &AnalysisConfig,
    rec: &obs::Recorder,
) -> Vec<Deviation> {
    let _span = rec.span("check");
    let out = check_all(sites, pairing, files, config);
    rec.count("check_deviations_emitted", out.len() as u64);
    for d in &out {
        rec.count(
            &format!("check_{}", crate::report::deviation_class(&d.kind)),
            1,
        );
    }
    out
}

/// Run every checker over the pairing results.
pub fn check_all(
    sites: &[BarrierSite],
    pairing: &PairingResult,
    files: &[std::sync::Arc<FileAnalysis>],
    config: &AnalysisConfig,
) -> Vec<Deviation> {
    let ctx = CheckCtx { files, config };
    let mut out = Vec::new();
    let by_id = |id: BarrierId| sites.iter().find(|s| s.id == id).expect("site by id");

    // §5.1 — unpaired barriers: unneeded-barrier elimination.
    for (id, _reason) in &pairing.unpaired {
        let site = by_id(*id);
        check_unneeded(site, &mut out);
    }

    // §5.3 — seqcount protocols, grouped by their counter object (the
    // pairing may split the four Figure 5 barriers into two pairs when
    // data accesses sit outside one barrier's window — precisely the
    // buggy case — so group by counter, not by pairing membership).
    let mut handled: std::collections::HashSet<BarrierId> = Default::default();
    let mut counters: Vec<&SharedObject> =
        sites.iter().filter_map(|s| s.counter.as_ref()).collect();
    counters.sort();
    counters.dedup();
    for counter in counters {
        let group: Vec<&BarrierSite> = sites
            .iter()
            .filter(|s| s.counter.as_ref() == Some(counter))
            .collect();
        // Only check groups that participate in at least one pairing —
        // otherwise we have no evidence of concurrency.
        let in_pairing = group.iter().any(|s| pairing.pairing_of(s.id).is_some());
        if !in_pairing {
            continue;
        }
        if check_seqcount_protocol(counter, &group, &ctx, &mut out) {
            for s in &group {
                handled.insert(s.id);
            }
        }
    }

    // §5.2 — remaining paired barriers.
    for p in &pairing.pairings {
        if p.members.iter().all(|m| handled.contains(m)) {
            continue;
        }
        let members: Vec<&BarrierSite> = p.members.iter().map(|&m| by_id(m)).collect();
        check_plain_pairing(p, &members, &ctx, &mut out);
    }

    // Deduplicate: symmetric duo checks can report the same finding from
    // both directions.
    let mut seen: std::collections::HashSet<(String, Option<Span>, BarrierId)> = Default::default();
    out.retain(|d| {
        seen.insert((
            format!("{:?}", std::mem::discriminant(&d.kind)),
            d.access_span,
            d.barrier,
        ))
    });

    out
}

/// §5.1: a barrier immediately adjacent to another barrier or to a
/// function with barrier semantics that covers its ordering is unneeded.
fn check_unneeded(site: &BarrierSite, out: &mut Vec<Deviation>) {
    if site.seqcount.is_some() || site.from_atomic.is_some() {
        // seqcount calls and promoted atomics are not removable barriers.
        return;
    }
    let Some(adj) = &site.adjacent_full_barrier else {
        return;
    };
    // Ordering provided by the adjacent operation.
    let (adj_reads, adj_writes) = match kmodel::classify_call(&adj.callee) {
        kmodel::CallSemantics::Barrier(k) => (k.orders_reads(), k.orders_writes()),
        kmodel::CallSemantics::WakeUp => (true, true),
        kmodel::CallSemantics::Atomic(sem) => {
            let full = sem.strength == kmodel::BarrierStrength::Full;
            (full, full)
        }
        _ => (false, false),
    };
    if (site.kind.orders_reads() && !adj_reads) || (site.kind.orders_writes() && !adj_writes) {
        return;
    }
    out.push(Deviation {
        kind: DeviationKind::UnneededBarrier {
            provided_by: adj.callee.clone(),
        },
        barrier: site.id,
        site: site.site.clone(),
        object: None,
        access_span: None,
        explanation: format!(
            "{}() at {}:{} is unneeded: the adjacent call to {}() already \
             provides the ordering",
            site.kind.name(),
            site.site.file_name,
            site.site.line,
            adj.callee
        ),
    });
}

/// §5.2: single write barrier + read barrier(s). For pairings with more
/// than one reader, each (writer, reader) pair is checked independently.
/// Handshake protocols (sleep/wake) have *two* write barriers; every
/// member that writes a pairing object takes the writer role in turn.
fn check_plain_pairing(
    p: &Pairing,
    members: &[&BarrierSite],
    ctx: &CheckCtx,
    out: &mut Vec<Deviation>,
) {
    let mut writers: Vec<&BarrierSite> = members
        .iter()
        .filter(|m| m.is_write_barrier() && writes_objects(m, &p.objects))
        .copied()
        .collect();
    if writers.is_empty() {
        // Salvage: fall back to the pairing's designated anchor.
        if let Some(w) = members.iter().find(|m| m.id == p.writer) {
            writers.push(w);
        }
    }
    for writer in &writers {
        for reader in members.iter().filter(|m| m.id != writer.id) {
            check_duo(writer, reader, &p.objects, ctx, out);
        }
    }
    // Deviation #2 — wrong barrier type, per member.
    for m in members {
        check_wrong_type(m, &p.objects, out);
    }
}

fn writes_objects(site: &BarrierSite, objects: &[SharedObject]) -> bool {
    site.accesses
        .iter()
        .any(|a| a.kind == AccessKind::Write && objects.contains(&a.object))
}

/// Check one writer/reader duo for misplaced accesses (#1) and repeated
/// reads (#3).
fn check_duo(
    writer: &BarrierSite,
    reader: &BarrierSite,
    objects: &[SharedObject],
    ctx: &CheckCtx,
    out: &mut Vec<Deviation>,
) {
    for obj in objects {
        let writes: Vec<&Access> = writer
            .accesses
            .iter()
            .filter(|a| &a.object == obj && a.kind == AccessKind::Write)
            .collect();
        let write_sides: std::collections::HashSet<Side> = writes.iter().map(|a| a.side).collect();
        // Written on *both* sides of the write barrier: this breaks the
        // "accessed either before or after a barrier" assumption. The
        // reader's (single-sided) reads decide the intended side, and the
        // writer's other-side write is flagged — reproducing the paper's
        // documented bnx2x-style false positive (Listing 4) rather than
        // silently skipping.
        if write_sides.len() == 2 {
            let read_sides: std::collections::HashSet<Side> = reader
                .accesses
                .iter()
                .filter(|a| &a.object == obj && a.kind == AccessKind::Read)
                .map(|a| a.side)
                .collect();
            if read_sides.len() == 1 {
                let r_side = *read_sides.iter().next().unwrap();
                let correct_write_side = r_side.flip();
                let bad_write = writes
                    .iter()
                    .filter(|a| a.side == r_side)
                    .min_by_key(|a| a.distance)
                    .unwrap();
                out.push(Deviation {
                    kind: DeviationKind::Misplaced {
                        correct_side: correct_write_side,
                    },
                    barrier: writer.id,
                    site: writer.site.clone(),
                    object: Some(obj.clone()),
                    access_span: Some(bad_write.span),
                    explanation: format!(
                        "{} is written on both sides of the write barrier in \
                         {}() while {}() reads it {} its barrier; move the \
                         write {} the barrier",
                        obj,
                        writer.site.function,
                        reader.site.function,
                        side_word(r_side),
                        side_word(correct_write_side),
                    ),
                });
            }
            continue;
        }
        // Side the writer writes this object on (closest write wins).
        let write_side = writes.iter().min_by_key(|a| a.distance).map(|a| a.side);
        let Some(write_side) = write_side else {
            continue;
        };
        let correct_read_side = write_side.flip();

        let reads: Vec<&Access> = reader
            .accesses
            .iter()
            .filter(|a| &a.object == obj && a.kind == AccessKind::Read)
            .collect();
        if reads.is_empty() {
            continue;
        }
        let good: Vec<&&Access> = reads
            .iter()
            .filter(|a| a.side == correct_read_side)
            .collect();
        let bad: Vec<&&Access> = reads.iter().filter(|a| a.side == write_side).collect();
        if bad.is_empty() {
            continue;
        }
        let bad_access = bad.iter().min_by_key(|a| a.distance).map(|a| **a).unwrap();
        if !good.is_empty() {
            // Read on both sides: the wrong-side read is a racy re-read
            // (deviation #3) — reuse the correctly read value.
            let first: &Access = good.iter().min_by_key(|a| a.distance).unwrap();
            if !reread_is_live(ctx, reader, obj, first, bad_access) {
                continue;
            }
            out.push(Deviation {
                kind: DeviationKind::RepeatedRead {
                    first_read_span: first.span,
                },
                barrier: reader.id,
                site: reader.site.clone(),
                object: Some(obj.clone()),
                access_span: Some(bad_access.span),
                explanation: format!(
                    "{} was correctly read {} the barrier in {}() and is \
                     racily re-read {} it; reuse the previously read value",
                    obj,
                    side_word(correct_read_side),
                    reader.site.function,
                    side_word(write_side),
                ),
            });
        } else {
            // Read only on the wrong side: misplaced memory access
            // (deviation #1) — move the read (bias towards the writer's
            // correctness, §5.2).
            out.push(Deviation {
                kind: DeviationKind::Misplaced {
                    correct_side: correct_read_side,
                },
                barrier: reader.id,
                site: reader.site.clone(),
                object: Some(obj.clone()),
                access_span: Some(bad_access.span),
                explanation: format!(
                    "{} is written {} the write barrier in {}() but read {} \
                     the read barrier in {}(): the barriers provide no \
                     ordering; move the read {} the barrier",
                    obj,
                    side_word(write_side),
                    writer.site.function,
                    side_word(write_side),
                    reader.site.function,
                    side_word(correct_read_side),
                ),
            });
        }
    }
}

/// Dataflow refinement for deviation #3: a wrong-side load only counts as
/// a racy re-read when the first (correct-side) load is still live at it —
/// i.e. the pseudo-definition made by the first load reaches the second
/// along some path with no intervening store to the same object, and the
/// two loads are not on mutually unreachable branches. Any failure to map
/// spans onto the reader's CFG keeps the flag (conservative: the window
/// heuristic's answer). Returns `true` when the finding should be kept.
fn reread_is_live(
    ctx: &CheckCtx,
    reader: &BarrierSite,
    obj: &SharedObject,
    first: &Access,
    second: &Access,
) -> bool {
    if !ctx.config.dataflow_reread {
        return true;
    }
    if first.cross_function || second.cross_function {
        return true;
    }
    let Some(fa) = ctx.files.iter().find(|f| f.file == reader.site.file) else {
        return true;
    };
    let Some(func) = fa.functions.iter().find(|f| f.name == reader.site.function) else {
        return true;
    };
    let cfg = &func.cfg;
    let (Some(n_first), Some(n_second)) = (
        node_of_span(cfg, first.span),
        node_of_span(cfg, second.span),
    ) else {
        return true;
    };
    if n_first == n_second {
        return true;
    }
    // Order the two loads by control flow.
    let (from, to) = if cfg_reaches(cfg, n_first, n_second) {
        (n_first, n_second)
    } else if cfg_reaches(cfg, n_second, n_first) {
        (n_second, n_first)
    } else {
        // Loads on disjoint branches never observe each other: at most one
        // executes per run, so there is no held value being re-read.
        return false;
    };
    // Definitions: the pseudo-def made by the first load, plus every
    // same-function store to the object in the reader's window.
    let mut defs = vec![cfgir::Def {
        node: from,
        key: 0usize,
    }];
    for a in &reader.accesses {
        if a.kind == AccessKind::Write && &a.object == obj && !a.cross_function {
            if let Some(n) = node_of_span(cfg, a.span) {
                if n != from {
                    defs.push(cfgir::Def {
                        node: n,
                        key: 0usize,
                    });
                }
            }
        }
    }
    let rd = cfgir::reaching_definitions(cfg, &defs);
    rd.reaches(0, to)
}

/// Smallest real CFG node whose span contains `span`.
fn node_of_span(cfg: &Cfg, span: Span) -> Option<NodeId> {
    cfg.ids()
        .filter(|&i| {
            let n = cfg.node(i);
            !matches!(n.kind, NodeKind::Entry | NodeKind::Exit)
                && n.span.lo <= span.lo
                && span.hi <= n.span.hi
        })
        .min_by_key(|&i| cfg.node(i).span.len())
}

/// Forward reachability `from` → `to` along CFG edges (excluding the empty
/// path: `from` reaches itself only through a cycle).
fn cfg_reaches(cfg: &Cfg, from: NodeId, to: NodeId) -> bool {
    let mut seen = vec![false; cfg.nodes.len()];
    let mut stack = vec![from];
    while let Some(n) = stack.pop() {
        for &s in &cfg.node(n).succs {
            if !seen[s] {
                seen[s] = true;
                if s == to {
                    return true;
                }
                stack.push(s);
            }
        }
    }
    false
}

/// Deviation #2: a barrier whose ordered accesses are all of the other
/// kind.
fn check_wrong_type(site: &BarrierSite, objects: &[SharedObject], out: &mut Vec<Deviation>) {
    if site.seqcount.is_some() {
        return;
    }
    // Only the pure single-direction primitives can be "the wrong one".
    if !matches!(site.kind, BarrierKind::Rmb | BarrierKind::Wmb) {
        return;
    }
    let relevant: Vec<&Access> = site
        .accesses
        .iter()
        .filter(|a| objects.contains(&a.object))
        .collect();
    if relevant.is_empty() {
        return;
    }
    let all_reads = relevant.iter().all(|a| a.kind == AccessKind::Read);
    let all_writes = relevant.iter().all(|a| a.kind == AccessKind::Write);
    let replacement = match (site.kind, all_reads, all_writes) {
        (BarrierKind::Rmb, false, true) => BarrierKind::Wmb,
        (BarrierKind::Wmb, true, false) => BarrierKind::Rmb,
        _ => return,
    };
    out.push(Deviation {
        kind: DeviationKind::WrongBarrierType { replacement },
        barrier: site.id,
        site: site.site.clone(),
        object: None,
        access_span: None,
        explanation: format!(
            "{}() in {}() only orders {}; replace it with {}()",
            site.kind.name(),
            site.site.function,
            if replacement == BarrierKind::Wmb {
                "writes"
            } else {
                "reads"
            },
            replacement.name(),
        ),
    });
}

/// §5.3: seqcount-style double pairing, checked per duo of barriers: the
/// first write barrier pairs with the second read barrier and vice versa
/// (Figure 5). Returns `true` when the group formed a complete protocol
/// and was checked (so the plain §5.2 checks skip its pairings).
fn check_seqcount_protocol(
    counter: &SharedObject,
    group: &[&BarrierSite],
    ctx: &CheckCtx,
    out: &mut Vec<Deviation>,
) -> bool {
    // Writer functions: have WriteBegin + WriteEnd; readers: ReadBegin +
    // ReadRetry. Several functions may serve either role.
    let in_fn =
        |s: &&BarrierSite, op: SeqcountOp, f: &str| s.seqcount == Some(op) && s.site.function == f;
    let mut functions: Vec<&str> = group.iter().map(|s| s.site.function.as_str()).collect();
    functions.sort_unstable();
    functions.dedup();
    let mut writers: Vec<(&BarrierSite, &BarrierSite)> = Vec::new();
    let mut readers: Vec<(&BarrierSite, &BarrierSite)> = Vec::new();
    for f in &functions {
        let find = |op| group.iter().find(|s| in_fn(s, op, f)).copied();
        if let (Some(b), Some(e)) = (find(SeqcountOp::WriteBegin), find(SeqcountOp::WriteEnd)) {
            writers.push((b, e));
        }
        if let (Some(b), Some(r)) = (find(SeqcountOp::ReadBegin), find(SeqcountOp::ReadRetry)) {
            readers.push((b, r));
        }
    }
    if writers.is_empty() || readers.is_empty() {
        return false;
    }
    for (wb1, wb2) in &writers {
        for (rb1, rb2) in &readers {
            // Data objects: everything the duo endpoints share, minus the
            // counter itself.
            let mut data = common_objects(wb1, rb2);
            data.extend(common_objects(wb2, rb1));
            data.sort();
            data.dedup();
            data.retain(|o| o != counter);
            // Duo 1: writes after WriteBegin ↔ reads before ReadRetry.
            check_duo(wb1, rb2, &data, ctx, out);
            // Duo 2: writes before WriteEnd ↔ reads after ReadBegin.
            check_duo(wb2, rb1, &data, ctx, out);
        }
    }
    true
}

fn common_objects(a: &BarrierSite, b: &BarrierSite) -> Vec<SharedObject> {
    let bo: std::collections::HashSet<SharedObject> =
        b.objects().into_iter().map(|(o, _)| o).collect();
    a.objects()
        .into_iter()
        .map(|(o, _)| o)
        .filter(|o| bo.contains(o))
        .collect()
}

fn side_word(side: Side) -> &'static str {
    match side {
        Side::Before => "before",
        Side::After => "after",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairing::pair_barriers;
    use crate::sites::analyze_file;

    fn run(src: &str) -> Vec<Deviation> {
        run_with(src, AnalysisConfig::default())
    }

    fn run_with(src: &str, config: AnalysisConfig) -> Vec<Deviation> {
        let parsed = ckit::parse_string("t.c", src).unwrap();
        assert!(parsed.errors.is_empty(), "{:?}", parsed.errors);
        let mut fa = analyze_file(0, &parsed, &config);
        for (i, s) in fa.sites.iter_mut().enumerate() {
            s.id = BarrierId(i as u32);
        }
        let pairing = pair_barriers(&fa.sites, &config);
        check_all(
            &fa.sites,
            &pairing,
            &[std::sync::Arc::new(fa.clone())],
            &config,
        )
    }

    #[test]
    fn correct_listing1_is_clean() {
        let src = r#"
struct my_struct { int init; int y; };
void reader(struct my_struct *a) {
    if (!a->init)
        return;
    smp_rmb();
    f(a->y);
}
void writer(struct my_struct *b) {
    b->y = 1;
    smp_wmb();
    b->init = 1;
}
"#;
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn misplaced_read_detected() {
        // Patch 1 shape: the flag is read *after* the read barrier.
        let src = r#"
struct rpc { int len; int recd; int out; };
void complete(struct rpc *req) {
    req->len = 4;
    smp_wmb();
    req->recd = 1;
}
void decode(struct rpc *req) {
    smp_rmb();
    if (!req->recd)
        return;
    req->out = req->len;
}
"#;
        let devs = run(src);
        let mis: Vec<_> = devs
            .iter()
            .filter(|d| matches!(d.kind, DeviationKind::Misplaced { .. }))
            .collect();
        assert_eq!(mis.len(), 1, "{devs:?}");
        let d = mis[0];
        assert_eq!(d.object, Some(SharedObject::new("rpc", "recd")));
        assert_eq!(d.site.function, "decode");
        assert!(matches!(
            d.kind,
            DeviationKind::Misplaced {
                correct_side: Side::Before
            }
        ));
        assert!(d.explanation.contains("recd"));
    }

    #[test]
    fn repeated_read_detected() {
        // Patch 3 shape: num read before the barrier (guard) and re-read
        // after it.
        let src = r#"
struct reuse { int num; struct sock *socks[8]; int len; };
void add_sock(struct reuse *r, struct sock *sk) {
    r->socks[r->num] = sk;
    r->len = 1;
    smp_wmb();
    r->num++;
}
void select_sock(struct reuse *r) {
    int n = r->num;
    int l = r->len;
    smp_rmb();
    if (n) {
        pick(r->socks[r->num]);
    }
}
"#;
        let devs = run(src);
        let rr: Vec<_> = devs
            .iter()
            .filter(|d| matches!(d.kind, DeviationKind::RepeatedRead { .. }))
            .collect();
        assert_eq!(rr.len(), 1, "{devs:?}");
        assert_eq!(rr[0].object, Some(SharedObject::new("reuse", "num")));
        assert_eq!(rr[0].site.function, "select_sock");
    }

    #[test]
    fn benign_reread_after_own_store_suppressed() {
        // The value read before the barrier is overwritten by the reader's
        // own store before the second load: the second load observes the
        // local store, not a racy re-read of the held value. Reaching
        // definitions kill the pseudo-def, so the finding is suppressed.
        let src = r#"
struct q { int num; int data; };
void writer(struct q *p) {
    p->data = 1;
    smp_wmb();
    p->num = 2;
}
void reader(struct q *p) {
    int n = p->num;
    smp_rmb();
    if (n) {
        p->num = 0;
        g(p->num, p->data);
    }
}
"#;
        let devs = run(src);
        assert!(
            devs.iter()
                .all(|d| !matches!(d.kind, DeviationKind::RepeatedRead { .. })),
            "{devs:?}"
        );
    }

    #[test]
    fn window_heuristic_flags_benign_reread() {
        // Ablation: with the window heuristic, the same shape is a false
        // positive — any read on both sides is flagged.
        let src = r#"
struct q { int num; int data; };
void writer(struct q *p) {
    p->data = 1;
    smp_wmb();
    p->num = 2;
}
void reader(struct q *p) {
    int n = p->num;
    smp_rmb();
    if (n) {
        p->num = 0;
        g(p->num, p->data);
    }
}
"#;
        let config = AnalysisConfig {
            dataflow_reread: false,
            ..AnalysisConfig::default()
        };
        let devs = run_with(src, config);
        assert!(
            devs.iter()
                .any(|d| matches!(d.kind, DeviationKind::RepeatedRead { .. })),
            "{devs:?}"
        );
    }

    #[test]
    fn wrong_barrier_type_detected() {
        // A "read barrier" in the writer that only orders writes.
        let src = r#"
struct s { int data; int flag; };
void writer(struct s *p) {
    p->data = 1;
    smp_rmb();
    p->flag = 1;
}
void reader(struct s *p) {
    if (!p->flag)
        return;
    smp_rmb();
    g(p->data);
}
"#;
        let devs = run(src);
        let wt: Vec<_> = devs
            .iter()
            .filter(|d| matches!(d.kind, DeviationKind::WrongBarrierType { .. }))
            .collect();
        assert_eq!(wt.len(), 1, "{devs:?}");
        assert_eq!(wt[0].site.function, "writer");
        assert!(matches!(
            wt[0].kind,
            DeviationKind::WrongBarrierType {
                replacement: BarrierKind::Wmb
            }
        ));
    }

    #[test]
    fn unneeded_barrier_before_wakeup() {
        // Patch 4 shape.
        let src = r#"
struct d { int got_token; struct task *task; };
void rq_qos_wake(struct d *data) {
    data->got_token = 1;
    smp_wmb();
    wake_up_process(data->task);
}
"#;
        let devs = run(src);
        let un: Vec<_> = devs
            .iter()
            .filter(|d| matches!(d.kind, DeviationKind::UnneededBarrier { .. }))
            .collect();
        assert_eq!(un.len(), 1, "{devs:?}");
        match &un[0].kind {
            DeviationKind::UnneededBarrier { provided_by } => {
                assert_eq!(provided_by, "wake_up_process")
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn unneeded_double_barrier() {
        let src = r#"
struct s { int a; int b; };
void f(struct s *p) {
    p->a = 1;
    smp_wmb();
    smp_mb();
    p->b = 2;
}
"#;
        let devs = run(src);
        assert!(
            devs.iter()
                .any(|d| matches!(d.kind, DeviationKind::UnneededBarrier { .. })),
            "{devs:?}"
        );
    }

    #[test]
    fn needed_barrier_not_flagged() {
        // wmb followed by a *relaxed* atomic provides no write ordering by
        // itself — the barrier is needed.
        let src = r#"
struct s { int a; atomic_t c; };
void f(struct s *p) {
    p->a = 1;
    smp_wmb();
    atomic_inc(&p->c);
}
"#;
        let devs = run(src);
        assert!(
            devs.iter()
                .all(|d| !matches!(d.kind, DeviationKind::UnneededBarrier { .. })),
            "{devs:?}"
        );
    }

    #[test]
    fn correct_seqcount_is_clean() {
        let src = r#"
static seqcount_t rs;
struct counters { long bcnt; long pcnt; };
void get_counters(struct counters *c, struct counters *tmp) {
    unsigned int v;
    do {
        v = read_seqcount_begin(&rs);
        c->bcnt = tmp->bcnt;
        c->pcnt = tmp->pcnt;
    } while (read_seqcount_retry(&rs, v));
}
void add_counters(struct counters *t, struct counters *paddc) {
    write_seqcount_begin(&rs);
    t->bcnt += paddc->bcnt;
    t->pcnt += paddc->pcnt;
    write_seqcount_end(&rs);
}
"#;
        let devs = run(src);
        assert!(devs.is_empty(), "{devs:?}");
    }

    #[test]
    fn seqcount_read_outside_window_detected() {
        // A data read AFTER the retry check — not protected by the
        // version re-check.
        let src = r#"
static seqcount_t rs;
struct counters { long bcnt; long pcnt; };
void get_counters(struct counters *c, struct counters *tmp) {
    unsigned int v;
    do {
        v = read_seqcount_begin(&rs);
        c->bcnt = tmp->bcnt;
    } while (read_seqcount_retry(&rs, v));
    c->pcnt = tmp->pcnt;
}
void add_counters(struct counters *t, struct counters *paddc) {
    write_seqcount_begin(&rs);
    t->bcnt += paddc->bcnt;
    t->pcnt += paddc->pcnt;
    write_seqcount_end(&rs);
}
"#;
        let devs = run(src);
        assert!(
            devs.iter().any(|d| {
                d.object == Some(SharedObject::new("counters", "pcnt"))
                    && matches!(
                        d.kind,
                        DeviationKind::Misplaced { .. } | DeviationKind::RepeatedRead { .. }
                    )
            }),
            "{devs:?}"
        );
    }

    #[test]
    fn multi_reader_pairing_checks_each_reader() {
        let src = r#"
struct s { int flag; int data; };
void ok_reader(struct s *p) {
    if (!p->flag) return;
    smp_rmb();
    g(p->data);
}
void bad_reader(struct s *p) {
    smp_rmb();
    if (!p->flag) return;
    h(p->data);
}
void writer(struct s *p) {
    p->data = 1;
    smp_wmb();
    p->flag = 1;
}
"#;
        let devs = run(src);
        let mis: Vec<_> = devs
            .iter()
            .filter(|d| matches!(d.kind, DeviationKind::Misplaced { .. }))
            .collect();
        assert_eq!(mis.len(), 1, "{devs:?}");
        assert_eq!(mis[0].site.function, "bad_reader");
    }

    #[test]
    fn write_both_sides_still_produces_finding() {
        // The bnx2x-style pattern the paper documents as its main false
        // positive source: the same field written on both sides of the
        // barrier. OFence is *expected* to produce a (wrong) patch here.
        let src = r#"
struct bp { unsigned long sp_state; int other; };
void sp_event(struct bp *b) {
    set_bit(1, &b->sp_state);
    b->other = 2;
    smp_wmb();
    clear_bit(2, &b->sp_state);
}
void sp_reader(struct bp *b) {
    if (b->sp_state)
        return;
    smp_rmb();
    g(b->other);
}
"#;
        let devs = run(src);
        assert!(
            devs.iter()
                .any(|d| d.object == Some(SharedObject::new("bp", "sp_state"))),
            "expected the documented false positive to be produced: {devs:?}"
        );
    }
}

#[cfg(test)]
mod render_tests {
    use super::*;
    use crate::pairing::pair_barriers;
    use crate::sites::analyze_file;

    #[test]
    fn render_points_at_the_access() {
        let src = r#"struct rpc { int len; int recd; int out; };
void complete(struct rpc *req) {
	req->len = 4;
	smp_wmb();
	req->recd = 1;
}
void decode(struct rpc *req) {
	smp_rmb();
	if (!req->recd)
		return;
	req->out = req->len;
}
"#;
        let config = AnalysisConfig::default();
        let parsed = ckit::parse_string("xprt.c", src).unwrap();
        let mut fa = analyze_file(0, &parsed, &config);
        for (i, s) in fa.sites.iter_mut().enumerate() {
            s.id = BarrierId(i as u32);
        }
        let pairing = pair_barriers(&fa.sites, &config);
        let devs = check_all(
            &fa.sites,
            &pairing,
            &[std::sync::Arc::new(fa.clone())],
            &config,
        );
        assert!(!devs.is_empty());
        let text = devs[0].render(src);
        assert!(text.contains("xprt.c:9:"), "{text}");
        assert!(text.contains("warning: misplaced memory access"), "{text}");
        assert!(text.contains("if (!req->recd)"), "{text}");
        assert!(text.contains('^'), "{text}");
        assert!(text.contains("note:"), "{text}");
    }
}

#[cfg(test)]
mod more_unneeded_tests {
    use super::*;
    use crate::pairing::pair_barriers;
    use crate::sites::analyze_file;

    fn run(src: &str) -> Vec<Deviation> {
        let config = AnalysisConfig::default();
        let parsed = ckit::parse_string("t.c", src).unwrap();
        assert!(parsed.errors.is_empty(), "{:?}", parsed.errors);
        let mut fa = analyze_file(0, &parsed, &config);
        for (i, s) in fa.sites.iter_mut().enumerate() {
            s.id = BarrierId(i as u32);
        }
        let pairing = pair_barriers(&fa.sites, &config);
        check_all(
            &fa.sites,
            &pairing,
            &[std::sync::Arc::new(fa.clone())],
            &config,
        )
    }

    #[test]
    fn barrier_right_after_full_atomic_is_unneeded() {
        let src = r#"
struct s { unsigned long bits; int x; };
void f(struct s *p) {
    test_and_set_bit(1, &p->bits);
    smp_mb();
    p->x = 2;
}
"#;
        let devs = run(src);
        let un: Vec<_> = devs
            .iter()
            .filter(|d| matches!(d.kind, DeviationKind::UnneededBarrier { .. }))
            .collect();
        assert_eq!(un.len(), 1, "{devs:?}");
        match &un[0].kind {
            DeviationKind::UnneededBarrier { provided_by } => {
                assert_eq!(provided_by, "test_and_set_bit")
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn wmb_after_relaxed_bitop_is_needed() {
        // set_bit has no barrier semantics: the wmb stays.
        let src = r#"
struct s { unsigned long bits; int x; };
void f(struct s *p) {
    set_bit(1, &p->bits);
    smp_wmb();
    p->x = 2;
}
"#;
        let devs = run(src);
        assert!(
            devs.iter()
                .all(|d| !matches!(d.kind, DeviationKind::UnneededBarrier { .. })),
            "{devs:?}"
        );
    }

    #[test]
    fn rmb_before_full_barrier_not_covered_by_wmb() {
        // smp_rmb adjacent to smp_wmb: the wmb does NOT order reads, so
        // the rmb is not redundant.
        let src = r#"
struct s { int a; int b; };
void f(struct s *p) {
    int x = p->a;
    smp_rmb();
    smp_wmb();
    p->b = x;
}
"#;
        let devs = run(src);
        assert!(
            devs.iter().all(|d| {
                !matches!(&d.kind, DeviationKind::UnneededBarrier { provided_by } if provided_by == "smp_wmb")
            }),
            "{devs:?}"
        );
    }

    #[test]
    fn spin_lock_does_not_make_barrier_unneeded() {
        // Lock acquire is not a full barrier.
        let src = r#"
struct s { int a; int b; };
void f(struct s *p) {
    p->a = 1;
    smp_wmb();
    spin_lock(&lock);
    p->b = 2;
    spin_unlock(&lock);
}
"#;
        let devs = run(src);
        assert!(
            devs.iter()
                .all(|d| !matches!(d.kind, DeviationKind::UnneededBarrier { .. })),
            "{devs:?}"
        );
    }
}
