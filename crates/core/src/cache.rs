//! Persistent on-disk incremental cache (`.ofence-cache/`).
//!
//! The engine's per-file cache maps a path to `(content hash,
//! FileAnalysis)`. This module makes that map survive the process: it is
//! flushed to `<dir>/cache.json` after a run and re-hydrated before the
//! next one, so a second `ofence analyze` (or every iteration of
//! `ofence watch`) only re-parses the files that actually changed.
//!
//! ## Format
//!
//! A single JSON document with a header and an entry list:
//!
//! ```json
//! {
//!   "format_version": 1,
//!   "tool_version": "0.1.0",
//!   "config_fingerprint": 1234567890,
//!   "entries": [ { "path": "...", "hash": 42, "analysis": { ... } } ]
//! }
//! ```
//!
//! ## Invalidation rules
//!
//! A cache is **never trusted blindly**. The whole file is discarded
//! (and the run proceeds cold) when any of these mismatch:
//!
//! * `format_version` — bumped whenever the serialized shape changes;
//! * `tool_version` — a different build may analyze differently;
//! * `config_fingerprint` — a hash of the full [`AnalysisConfig`], so a
//!   run with different windows/toggles never reuses results computed
//!   under other settings;
//! * any parse/decode failure — a truncated or hand-edited cache file is
//!   treated as absent, not as an error.
//!
//! Per entry, the engine additionally compares the stored content hash
//! against the current file content, so stale entries are simply misses.
//!
//! ## What is (and isn't) stored
//!
//! Entries do not store the file's source text: an entry is only ever
//! used when its content hash matches the file on disk, so the engine
//! restores `FileAnalysis::source` from the live corpus. Functions of
//! files with no barrier sites are stored as name/span stubs without
//! their CFG or AST: every downstream consumer of `FileAnalysis::
//! functions` (re-read dataflow gate, patch synthesis, annotation
//! synthesis) reaches a function only through a barrier site in the same
//! file, and the missing-barrier detector re-lowers from source. This
//! keeps warm loads cheap on realistic trees, where most files have no
//! barriers at all.

use crate::config::AnalysisConfig;
use crate::ir::BarrierSite;
use crate::sites::{FileAnalysis, FunctionInfo};
use ckit::ast::{FunctionDef, FunctionSig, Type};
use ckit::span::Span;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;

/// Bump on any change to the serialized cache shape.
pub const CACHE_FORMAT_VERSION: u32 = 2;

/// File name inside the cache directory.
pub const CACHE_FILE_NAME: &str = "cache.json";

/// Default cache directory name (relative to the working directory).
pub const DEFAULT_CACHE_DIR: &str = ".ofence-cache";

/// FNV-1a content hash — the cache key component for file contents.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Fingerprint of the analysis configuration: any config change must
/// invalidate the cache, because cached `FileAnalysis` values embed
/// config-dependent decisions (window sizes, expansions, promotions).
pub fn config_fingerprint(config: &AnalysisConfig) -> u64 {
    let text = serde_json::to_string(config).expect("config serializes");
    content_hash(text.as_bytes())
}

/// What `load` found on disk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LoadOutcome {
    /// A valid cache was hydrated with this many entries.
    Loaded { entries: usize },
    /// No cache file exists yet.
    Missing,
    /// A cache file exists but was stale or corrupt; it was ignored.
    Discarded { reason: String },
}

#[derive(Serialize, Deserialize)]
struct CacheDoc {
    format_version: u32,
    /// Version of the cached [`crate::summary::FnSummary`] shape and its
    /// extraction rules — tracked separately from `format_version` so
    /// summary-only changes invalidate warm caches without renumbering
    /// the container format.
    summary_version: u32,
    tool_version: String,
    config_fingerprint: u64,
    entries: Vec<CacheEntry>,
}

#[derive(Serialize, Deserialize)]
struct CacheEntry {
    path: String,
    hash: u64,
    analysis: CachedFile,
}

/// `FileAnalysis` minus the source text (restored from the live corpus
/// on a hash match), with site-free files' functions slimmed to stubs.
#[derive(Serialize, Deserialize)]
struct CachedFile {
    name: String,
    sites: Vec<BarrierSite>,
    functions: Vec<CachedFunction>,
    parse_error_count: usize,
    /// Per-function summaries for the inter-procedural composition pass;
    /// cached so a warm run composes without re-parsing unchanged files.
    summaries: Vec<crate::summary::FnSummary>,
    /// Window calls aligned with `sites` (see [`FileAnalysis`]).
    window_calls: Vec<Vec<crate::summary::WindowCall>>,
}

#[derive(Serialize, Deserialize)]
enum CachedFunction {
    Full(FunctionInfo),
    /// Function of a file with no barrier sites: downstream passes never
    /// consult its CFG or AST, only its existence (function counts).
    Stub {
        name: String,
        span: Span,
    },
}

impl CachedFile {
    fn from_analysis(fa: &FileAnalysis) -> CachedFile {
        let slim = fa.sites.is_empty();
        CachedFile {
            name: fa.name.clone(),
            sites: fa.sites.clone(),
            functions: fa
                .functions
                .iter()
                .map(|f| {
                    if slim {
                        CachedFunction::Stub {
                            name: f.name.clone(),
                            span: f.span,
                        }
                    } else {
                        CachedFunction::Full(f.clone())
                    }
                })
                .collect(),
            parse_error_count: fa.parse_error_count,
            summaries: fa.summaries.clone(),
            window_calls: fa.window_calls.clone(),
        }
    }

    fn into_analysis(self) -> FileAnalysis {
        FileAnalysis {
            file: 0, // re-indexed by the engine on every hit
            name: self.name,
            source: String::new(), // restored from the live corpus
            sites: self.sites,
            functions: self
                .functions
                .into_iter()
                .map(|f| match f {
                    CachedFunction::Full(info) => info,
                    CachedFunction::Stub { name, span } => FunctionInfo {
                        cfg: cfgir::Cfg {
                            name: name.clone(),
                            nodes: Vec::new(),
                            entry: 0,
                            exit: 0,
                        },
                        def: FunctionDef {
                            sig: FunctionSig {
                                name: name.clone(),
                                ret: Type::Void,
                                params: Vec::new(),
                                variadic: false,
                                is_static: false,
                                is_inline: false,
                                span,
                            },
                            body: Vec::new(),
                            span,
                        },
                        name,
                        span,
                    },
                })
                .collect(),
            parse_error_count: self.parse_error_count,
            summaries: self.summaries,
            window_calls: self.window_calls,
        }
    }
}

/// Load the cache from `dir`. Never fails: stale or corrupt caches are
/// reported in the outcome and treated as empty.
pub fn load(
    dir: &Path,
    config: &AnalysisConfig,
) -> (HashMap<String, (u64, FileAnalysis)>, LoadOutcome) {
    let path = dir.join(CACHE_FILE_NAME);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(_) => return (HashMap::new(), LoadOutcome::Missing),
    };
    let discard = |reason: String| (HashMap::new(), LoadOutcome::Discarded { reason });
    let doc: CacheDoc = match serde_json::from_str(&text) {
        Ok(d) => d,
        Err(e) => return discard(format!("unreadable cache: {e}")),
    };
    if doc.format_version != CACHE_FORMAT_VERSION {
        return discard(format!(
            "format version {} (expected {CACHE_FORMAT_VERSION})",
            doc.format_version
        ));
    }
    if doc.summary_version != crate::summary::SUMMARY_VERSION {
        return discard(format!(
            "summary version {} (expected {})",
            doc.summary_version,
            crate::summary::SUMMARY_VERSION
        ));
    }
    if doc.tool_version != env!("CARGO_PKG_VERSION") {
        return discard(format!(
            "written by ofence {} (this is {})",
            doc.tool_version,
            env!("CARGO_PKG_VERSION")
        ));
    }
    let fp = config_fingerprint(config);
    if doc.config_fingerprint != fp {
        return discard("analysis configuration changed".to_string());
    }
    let entries = doc.entries.len();
    let mut map = HashMap::with_capacity(entries);
    for e in doc.entries {
        map.insert(e.path, (e.hash, e.analysis.into_analysis()));
    }
    (map, LoadOutcome::Loaded { entries })
}

/// Write the cache to `dir` (created if needed). Writes to a temporary
/// file first and renames, so a crashed writer never leaves a truncated
/// cache behind.
pub fn save(
    dir: &Path,
    config: &AnalysisConfig,
    cache: &HashMap<String, (u64, FileAnalysis)>,
) -> Result<usize, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut entries: Vec<CacheEntry> = cache
        .iter()
        .map(|(path, (hash, fa))| CacheEntry {
            path: path.clone(),
            hash: *hash,
            analysis: CachedFile::from_analysis(fa),
        })
        .collect();
    entries.sort_by(|a, b| a.path.cmp(&b.path));
    let n = entries.len();
    let doc = CacheDoc {
        format_version: CACHE_FORMAT_VERSION,
        summary_version: crate::summary::SUMMARY_VERSION,
        tool_version: env!("CARGO_PKG_VERSION").to_string(),
        config_fingerprint: config_fingerprint(config),
        entries,
    };
    let text = serde_json::to_string(&doc).expect("cache serializes");
    let tmp = dir.join(format!("{CACHE_FILE_NAME}.tmp.{}", std::process::id()));
    let path = dir.join(CACHE_FILE_NAME);
    std::fs::write(&tmp, text).map_err(|e| format!("{}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, &path).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, SourceFile};

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ofence-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn demo_files() -> Vec<SourceFile> {
        vec![
            SourceFile::new(
                "m.c",
                r#"struct m { int init; int y; };
void reader(struct m *a) { if (!a->init) return; smp_rmb(); f(a->y); }
void writer(struct m *b) { b->y = 1; smp_wmb(); b->init = 1; }
"#,
            ),
            SourceFile::new("plain.c", "int helper(int x) { return x + 1; }\n"),
        ]
    }

    #[test]
    fn roundtrip_preserves_results() {
        let dir = tempdir("roundtrip");
        let config = AnalysisConfig::default();
        let files = demo_files();

        let mut e1 = Engine::new(config.clone());
        let r1 = e1.analyze(&files);
        e1.save_disk_cache(&dir).unwrap();

        let mut e2 = Engine::new(config.clone());
        let outcome = e2.load_disk_cache(&dir);
        assert_eq!(outcome, LoadOutcome::Loaded { entries: 2 });
        let r2 = e2.analyze(&files);
        assert_eq!(r2.obs.count_of("engine_cache_hits"), 2);
        assert_eq!(r2.obs.count_of("cache_loads"), 2);
        assert_eq!(r1.sites.len(), r2.sites.len());
        assert_eq!(r1.pairing.pairings.len(), r2.pairing.pairings.len());
        assert_eq!(r1.deviations.len(), r2.deviations.len());
        assert_eq!(r1.annotations.len(), r2.annotations.len());
        // Sources are restored from the live corpus, not the cache file.
        for (a, b) in r1.files.iter().zip(&r2.files) {
            assert_eq!(a.source, b.source);
            assert_eq!(a.functions.len(), b.functions.len());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_cache_reported() {
        let dir = tempdir("missing");
        let (map, outcome) = load(&dir.join("nope"), &AnalysisConfig::default());
        assert!(map.is_empty());
        assert_eq!(outcome, LoadOutcome::Missing);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_discarded() {
        let dir = tempdir("corrupt");
        std::fs::write(dir.join(CACHE_FILE_NAME), "{ not json").unwrap();
        let (map, outcome) = load(&dir, &AnalysisConfig::default());
        assert!(map.is_empty());
        assert!(
            matches!(outcome, LoadOutcome::Discarded { .. }),
            "{outcome:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn format_version_mismatch_discarded() {
        let dir = tempdir("version");
        let config = AnalysisConfig::default();
        let mut e = Engine::new(config.clone());
        e.analyze(&demo_files());
        e.save_disk_cache(&dir).unwrap();
        let path = dir.join(CACHE_FILE_NAME);
        let text = std::fs::read_to_string(&path).unwrap().replacen(
            &format!("\"format_version\":{CACHE_FORMAT_VERSION}"),
            "\"format_version\":999",
            1,
        );
        std::fs::write(&path, text).unwrap();
        let (map, outcome) = load(&dir, &config);
        assert!(map.is_empty());
        match outcome {
            LoadOutcome::Discarded { reason } => assert!(reason.contains("format version")),
            other => panic!("{other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_change_discards_cache() {
        let dir = tempdir("config");
        let mut e = Engine::new(AnalysisConfig::default());
        e.analyze(&demo_files());
        e.save_disk_cache(&dir).unwrap();
        let other = AnalysisConfig {
            write_window: 9,
            ..Default::default()
        };
        let (map, outcome) = load(&dir, &other);
        assert!(map.is_empty());
        match outcome {
            LoadOutcome::Discarded { reason } => assert!(reason.contains("configuration")),
            other => panic!("{other:?}"),
        }
        // The original config still loads.
        let (map, outcome) = load(&dir, &AnalysisConfig::default());
        assert_eq!(map.len(), 2);
        assert_eq!(outcome, LoadOutcome::Loaded { entries: 2 });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_depends_on_config() {
        let a = config_fingerprint(&AnalysisConfig::default());
        let b = config_fingerprint(&AnalysisConfig {
            read_window: 7,
            ..Default::default()
        });
        assert_ne!(a, b);
    }

    /// A warm cache written at one `--ipa-depth` must not be silently
    /// reused at another: summaries are depth-independent but the
    /// composed accesses derived from them are not, so the fingerprint
    /// has to cover the depth.
    #[test]
    fn ipa_depth_change_discards_cache() {
        let dir = tempdir("ipa-depth");
        let mut e = Engine::new(AnalysisConfig::default());
        e.analyze(&demo_files());
        e.save_disk_cache(&dir).unwrap();
        let deep = AnalysisConfig {
            ipa_depth: 2,
            ..Default::default()
        };
        assert_ne!(
            config_fingerprint(&AnalysisConfig::default()),
            config_fingerprint(&deep)
        );
        let (map, outcome) = load(&dir, &deep);
        assert!(map.is_empty());
        match outcome {
            LoadOutcome::Discarded { reason } => assert!(reason.contains("configuration")),
            other => panic!("{other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn site_free_files_are_slimmed() {
        let dir = tempdir("slim");
        let config = AnalysisConfig::default();
        let mut e = Engine::new(config.clone());
        e.analyze(&demo_files());
        e.save_disk_cache(&dir).unwrap();
        let text = std::fs::read_to_string(dir.join(CACHE_FILE_NAME)).unwrap();
        // plain.c has no barriers: its helper is a stub, not a full AST.
        assert!(text.contains("Stub"), "expected slim entry");
        let (map, _) = load(&dir, &config);
        let (_, fa) = &map["plain.c"];
        assert_eq!(fa.functions.len(), 1);
        assert_eq!(fa.functions[0].name, "helper");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
