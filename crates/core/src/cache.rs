//! Persistent on-disk incremental cache (`.ofence-cache/`).
//!
//! The engine's per-file cache maps a path to `(content hash,
//! FileAnalysis)`. This module makes that map survive the process: it is
//! flushed to disk after a run and re-hydrated before the next one, so a
//! second `ofence analyze` (or every iteration of `ofence watch`) only
//! re-parses the files that actually changed.
//!
//! ## Format
//!
//! The cache is **sharded**: entries are distributed across
//! [`SHARD_COUNT`] files (`shard-00.json` … `shard-15.json`) by a hash
//! of the entry's path. Each shard is a self-contained JSON document
//! with its own header and entry list:
//!
//! ```json
//! {
//!   "format_version": 3,
//!   "tool_version": "0.1.0",
//!   "config_fingerprint": 1234567890,
//!   "entries": [ { "path": "...", "hash": 42, "analysis": { ... } } ]
//! }
//! ```
//!
//! Sharding buys two things on monorepo-scale corpora: shards are
//! written and loaded **in parallel** (serialization of a 100k-file
//! cache is the save-path bottleneck, and JSON encoding cost grows
//! superlinearly with single-document size), and corruption is
//! **isolated** — a truncated or hand-edited shard only drops its own
//! entries (they become cold misses) instead of poisoning the whole
//! cache.
//!
//! ## Invalidation rules
//!
//! A shard is **never trusted blindly**. The whole shard is discarded
//! (its entries simply re-analyzed cold) when any of these mismatch:
//!
//! * `format_version` — bumped whenever the serialized shape changes;
//! * `tool_version` — a different build may analyze differently;
//! * `config_fingerprint` — a hash of the full [`AnalysisConfig`], so a
//!   run with different windows/toggles never reuses results computed
//!   under other settings;
//! * any parse/decode failure — a truncated or hand-edited shard is
//!   treated as absent, not as an error.
//!
//! Per entry, the engine additionally compares the stored content hash
//! against the current file content, so stale entries are simply misses.
//!
//! ## What is (and isn't) stored
//!
//! Entries do not store the file's source text: an entry is only ever
//! used when its content hash matches the file on disk, so the engine
//! restores `FileAnalysis::source` from the live corpus. Functions of
//! files with no barrier sites are stored as name/span stubs without
//! their CFG or AST: every downstream consumer of `FileAnalysis::
//! functions` (re-read dataflow gate, patch synthesis, annotation
//! synthesis) reaches a function only through a barrier site in the same
//! file, and the missing-barrier detector re-lowers from source. This
//! keeps warm loads cheap on realistic trees, where most files have no
//! barriers at all.

use crate::config::AnalysisConfig;
use crate::ir::BarrierSite;
use crate::sites::{FileAnalysis, FunctionInfo};
use ckit::ast::{FunctionDef, FunctionSig, Type};
use ckit::span::Span;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// Bump on any change to the serialized cache shape.
/// v3: sharded container (`shard-NN.json` per path-hash bucket) replaced
/// the single monolithic `cache.json`.
pub const CACHE_FORMAT_VERSION: u32 = 3;

/// Number of shard files the cache is split into. Path-hash modulo; a
/// power of two so the bucket spread is uniform under FNV.
pub const SHARD_COUNT: usize = 16;

/// Per-shard load result: `None` = file absent, `Ok` = decoded entries,
/// `Err` = corruption/version reason.
type ShardOutcome = std::sync::Mutex<Option<Result<Vec<CacheEntry>, String>>>;

/// Legacy (format < 3) monolithic cache file name, recognized only to
/// report a clean "stale cache" outcome instead of "missing".
pub const CACHE_FILE_NAME: &str = "cache.json";

/// Default cache directory name (relative to the working directory).
pub const DEFAULT_CACHE_DIR: &str = ".ofence-cache";

/// FNV-1a content hash — the cache key component for file contents.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Which shard a path's entry lives in.
pub fn shard_of(path: &str) -> usize {
    (content_hash(path.as_bytes()) % SHARD_COUNT as u64) as usize
}

/// File name of shard `i` inside the cache directory.
pub fn shard_file_name(i: usize) -> String {
    format!("shard-{i:02}.json")
}

/// How many threads load/save shards concurrently: one per core, at
/// most one per shard.
fn shard_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(SHARD_COUNT)
}

/// Fingerprint of the analysis configuration: any config change must
/// invalidate the cache, because cached `FileAnalysis` values embed
/// config-dependent decisions (window sizes, expansions, promotions).
pub fn config_fingerprint(config: &AnalysisConfig) -> u64 {
    let text = serde_json::to_string(config).expect("config serializes");
    content_hash(text.as_bytes())
}

/// What `load` found on disk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LoadOutcome {
    /// At least one valid shard was hydrated, `entries` total. Corrupt
    /// or stale sibling shards (if any) were dropped without poisoning
    /// the healthy ones — their entries just re-analyze cold.
    Loaded { entries: usize },
    /// No cache exists yet.
    Missing,
    /// A cache exists but nothing in it was usable; it was ignored.
    Discarded { reason: String },
}

#[derive(Serialize, Deserialize)]
struct CacheDoc {
    format_version: u32,
    /// Version of the cached [`crate::summary::FnSummary`] shape and its
    /// extraction rules — tracked separately from `format_version` so
    /// summary-only changes invalidate warm caches without renumbering
    /// the container format.
    summary_version: u32,
    tool_version: String,
    config_fingerprint: u64,
    entries: Vec<CacheEntry>,
}

#[derive(Serialize, Deserialize)]
struct CacheEntry {
    path: String,
    hash: u64,
    analysis: CachedFile,
}

/// `FileAnalysis` minus the source text (restored from the live corpus
/// on a hash match), with site-free files' functions slimmed to stubs.
#[derive(Serialize, Deserialize)]
struct CachedFile {
    name: String,
    sites: Vec<BarrierSite>,
    functions: Vec<CachedFunction>,
    parse_error_count: usize,
    /// Per-function summaries for the inter-procedural composition pass;
    /// cached so a warm run composes without re-parsing unchanged files.
    summaries: Vec<crate::summary::FnSummary>,
    /// Window calls aligned with `sites` (see [`FileAnalysis`]).
    window_calls: Vec<Vec<crate::summary::WindowCall>>,
}

#[derive(Serialize, Deserialize)]
enum CachedFunction {
    Full(FunctionInfo),
    /// Function of a file with no barrier sites: downstream passes never
    /// consult its CFG or AST, only its existence (function counts).
    Stub {
        name: String,
        span: Span,
    },
}

impl CachedFile {
    fn from_analysis(fa: &FileAnalysis) -> CachedFile {
        let slim = fa.sites.is_empty();
        CachedFile {
            name: fa.name.clone(),
            sites: fa.sites.clone(),
            functions: fa
                .functions
                .iter()
                .map(|f| {
                    if slim {
                        CachedFunction::Stub {
                            name: f.name.clone(),
                            span: f.span,
                        }
                    } else {
                        CachedFunction::Full(f.clone())
                    }
                })
                .collect(),
            parse_error_count: fa.parse_error_count,
            summaries: fa.summaries.clone(),
            window_calls: fa.window_calls.clone(),
        }
    }

    fn into_analysis(self) -> FileAnalysis {
        FileAnalysis {
            file: 0, // re-indexed by the engine on every hit
            name: self.name,
            source: "".into(), // restored from the live corpus
            sites: self.sites,
            functions: self
                .functions
                .into_iter()
                .map(|f| match f {
                    CachedFunction::Full(info) => info,
                    CachedFunction::Stub { name, span } => FunctionInfo {
                        cfg: cfgir::Cfg {
                            name: name.clone(),
                            nodes: Vec::new(),
                            entry: 0,
                            exit: 0,
                        },
                        def: FunctionDef {
                            sig: FunctionSig {
                                name: name.as_str().into(),
                                ret: Type::Void,
                                params: Vec::new(),
                                variadic: false,
                                is_static: false,
                                is_inline: false,
                                span,
                            },
                            body: Vec::new(),
                            span,
                        },
                        name,
                        span,
                    },
                })
                .collect(),
            parse_error_count: self.parse_error_count,
            summaries: self.summaries,
            window_calls: self.window_calls,
        }
    }
}

fn doc_header_error(doc: &CacheDoc, fp: u64) -> Option<String> {
    if doc.format_version != CACHE_FORMAT_VERSION {
        return Some(format!(
            "format version {} (expected {CACHE_FORMAT_VERSION})",
            doc.format_version
        ));
    }
    if doc.summary_version != crate::summary::SUMMARY_VERSION {
        return Some(format!(
            "summary version {} (expected {})",
            doc.summary_version,
            crate::summary::SUMMARY_VERSION
        ));
    }
    if doc.tool_version != env!("CARGO_PKG_VERSION") {
        return Some(format!(
            "written by ofence {} (this is {})",
            doc.tool_version,
            env!("CARGO_PKG_VERSION")
        ));
    }
    if doc.config_fingerprint != fp {
        return Some("analysis configuration changed".to_string());
    }
    None
}

/// Decode one shard's text into its entries, or the reason it is
/// unusable. Each shard carries a full header, so a stale or truncated
/// shard invalidates only itself.
fn decode_shard(text: &str, fp: u64) -> Result<Vec<CacheEntry>, String> {
    let doc: CacheDoc = serde_json::from_str(text).map_err(|e| format!("unreadable cache: {e}"))?;
    match doc_header_error(&doc, fp) {
        Some(reason) => Err(reason),
        None => Ok(doc.entries),
    }
}

fn encode_doc(mut entries: Vec<CacheEntry>, fp: u64) -> String {
    entries.sort_by(|a, b| a.path.cmp(&b.path));
    let doc = CacheDoc {
        format_version: CACHE_FORMAT_VERSION,
        summary_version: crate::summary::SUMMARY_VERSION,
        tool_version: env!("CARGO_PKG_VERSION").to_string(),
        config_fingerprint: fp,
        entries,
    };
    serde_json::to_string(&doc).expect("cache serializes")
}

/// Load the cache from `dir`. Never fails: stale or corrupt shards are
/// dropped (reported in the outcome only when *nothing* was usable) and
/// treated as empty. Shards are read and decoded in parallel.
pub fn load(
    dir: &Path,
    config: &AnalysisConfig,
) -> (HashMap<String, (u64, Arc<FileAnalysis>)>, LoadOutcome) {
    let fp = config_fingerprint(config);
    // Per-shard results: None = file absent, Ok = decoded, Err = reason.
    // Decoding is allocation-heavy, so the worker count is bounded by
    // the core count: more threads than cores just serialize on the
    // allocator (measured 5-8x slower at 16 threads on one core).
    let outcomes: Vec<ShardOutcome> = (0..SHARD_COUNT)
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..shard_workers() {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= SHARD_COUNT {
                    return;
                }
                let path = dir.join(shard_file_name(i));
                let text = match std::fs::read_to_string(&path) {
                    Ok(t) => t,
                    Err(_) => continue,
                };
                *outcomes[i].lock().expect("shard slot") = Some(decode_shard(&text, fp));
            });
        }
    });
    let outcomes: Vec<_> = outcomes
        .into_iter()
        .map(|m| m.into_inner().expect("shard slot"))
        .collect();
    let mut map = HashMap::new();
    let mut entries = 0usize;
    let mut present = 0usize;
    let mut first_reason: Option<String> = None;
    for outcome in outcomes {
        let Some(result) = outcome else { continue };
        present += 1;
        match result {
            Ok(shard_entries) => {
                entries += shard_entries.len();
                for e in shard_entries {
                    map.insert(e.path, (e.hash, Arc::new(e.analysis.into_analysis())));
                }
            }
            Err(reason) => {
                if first_reason.is_none() {
                    first_reason = Some(reason);
                }
            }
        }
    }
    if present == 0 {
        // Recognize a pre-v3 monolithic cache so the caller sees a clean
        // "stale, discarded" instead of "missing".
        if dir.join(CACHE_FILE_NAME).exists() {
            return (
                map,
                LoadOutcome::Discarded {
                    reason: format!("monolithic cache from format < {CACHE_FORMAT_VERSION}"),
                },
            );
        }
        return (map, LoadOutcome::Missing);
    }
    match first_reason {
        // Some shards were unusable but others loaded: partial hydration.
        Some(_) if entries > 0 => (map, LoadOutcome::Loaded { entries }),
        Some(reason) => (map, LoadOutcome::Discarded { reason }),
        None => (map, LoadOutcome::Loaded { entries }),
    }
}

/// Write the cache to `dir` (created if needed). Every shard is written
/// in parallel, each to a temporary file first and renamed, so a crashed
/// writer never leaves a truncated shard behind. All [`SHARD_COUNT`]
/// shards are always (re)written — an entry that moved out of a shard
/// can never linger in a stale file.
pub fn save(
    dir: &Path,
    config: &AnalysisConfig,
    cache: &HashMap<String, (u64, Arc<FileAnalysis>)>,
) -> Result<usize, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let fp = config_fingerprint(config);
    let mut shards: Vec<Vec<CacheEntry>> = (0..SHARD_COUNT).map(|_| Vec::new()).collect();
    let mut n = 0usize;
    for (path, (hash, fa)) in cache {
        shards[shard_of(path)].push(CacheEntry {
            path: path.clone(),
            hash: *hash,
            analysis: CachedFile::from_analysis(fa),
        });
        n += 1;
    }
    // Same bounded-worker rule as `load`: encoding builds large value
    // trees, and oversubscribing the allocator is slower than queueing.
    let shards: Vec<std::sync::Mutex<Option<Vec<CacheEntry>>>> = shards
        .into_iter()
        .map(|v| std::sync::Mutex::new(Some(v)))
        .collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let errors = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..shard_workers() {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= SHARD_COUNT {
                    return;
                }
                let entries = shards[i]
                    .lock()
                    .expect("shard slot")
                    .take()
                    .expect("taken once");
                let text = encode_doc(entries, fp);
                let name = shard_file_name(i);
                let tmp = dir.join(format!("{name}.tmp.{}", std::process::id()));
                let path = dir.join(&name);
                let result = std::fs::write(&tmp, text)
                    .map_err(|e| format!("{}: {e}", tmp.display()))
                    .and_then(|()| {
                        std::fs::rename(&tmp, &path).map_err(|e| format!("{}: {e}", path.display()))
                    });
                if let Err(e) = result {
                    errors.lock().expect("error list").push(e);
                }
            });
        }
    });
    let errors = errors.into_inner().expect("error list");
    if let Some(e) = errors.into_iter().next() {
        return Err(e);
    }
    // Drop a leftover pre-v3 monolithic file so it can't shadow the
    // sharded cache in external tooling.
    let _ = std::fs::remove_file(dir.join(CACHE_FILE_NAME));
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, SourceFile};

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ofence-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn demo_files() -> Vec<SourceFile> {
        vec![
            SourceFile::new(
                "m.c",
                r#"struct m { int init; int y; };
void reader(struct m *a) { if (!a->init) return; smp_rmb(); f(a->y); }
void writer(struct m *b) { b->y = 1; smp_wmb(); b->init = 1; }
"#,
            ),
            SourceFile::new("plain.c", "int helper(int x) { return x + 1; }\n"),
        ]
    }

    /// The shard file holding `path`'s entry for the current layout.
    fn shard_path(dir: &Path, path: &str) -> std::path::PathBuf {
        dir.join(shard_file_name(shard_of(path)))
    }

    #[test]
    fn roundtrip_preserves_results() {
        let dir = tempdir("roundtrip");
        let config = AnalysisConfig::default();
        let files = demo_files();

        let mut e1 = Engine::new(config.clone());
        let r1 = e1.analyze(&files);
        e1.save_disk_cache(&dir).unwrap();

        let mut e2 = Engine::new(config.clone());
        let outcome = e2.load_disk_cache(&dir);
        assert_eq!(outcome, LoadOutcome::Loaded { entries: 2 });
        let r2 = e2.analyze(&files);
        assert_eq!(r2.obs.count_of("engine_cache_hits"), 2);
        assert_eq!(r2.obs.count_of("cache_loads"), 2);
        assert_eq!(r1.sites.len(), r2.sites.len());
        assert_eq!(r1.pairing.pairings.len(), r2.pairing.pairings.len());
        assert_eq!(r1.deviations.len(), r2.deviations.len());
        assert_eq!(r1.annotations.len(), r2.annotations.len());
        // Sources are restored from the live corpus, not the cache file.
        for (a, b) in r1.files.iter().zip(&r2.files) {
            assert_eq!(a.source, b.source);
            assert_eq!(a.functions.len(), b.functions.len());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The sharded on-disk layout is an implementation detail: a save →
    /// load cycle hydrates exactly the map a single-document round-trip
    /// through the same entry codec would produce.
    #[test]
    fn sharded_roundtrip_equals_monolithic() {
        let dir = tempdir("shard-eq-mono");
        let config = AnalysisConfig::default();
        let mut e = Engine::new(config.clone());
        e.analyze(&demo_files());
        e.save_disk_cache(&dir).unwrap();
        let (sharded, outcome) = load(&dir, &config);
        assert_eq!(outcome, LoadOutcome::Loaded { entries: 2 });

        // Monolithic reference: all entries through one CacheDoc.
        let fp = config_fingerprint(&config);
        let entries: Vec<CacheEntry> = sharded
            .iter()
            .map(|(path, (hash, fa))| CacheEntry {
                path: path.clone(),
                hash: *hash,
                analysis: CachedFile::from_analysis(fa),
            })
            .collect();
        let mono = decode_shard(&encode_doc(entries, fp), fp).unwrap();
        assert_eq!(mono.len(), sharded.len());
        for e in mono {
            let (hash, fa) = &sharded[&e.path];
            assert_eq!(e.hash, *hash);
            let rebuilt = e.analysis.into_analysis();
            assert_eq!(rebuilt.name, fa.name);
            assert_eq!(
                serde_json::to_string(&rebuilt.sites).unwrap(),
                serde_json::to_string(&fa.sites).unwrap()
            );
            assert_eq!(rebuilt.parse_error_count, fa.parse_error_count);
            assert_eq!(rebuilt.summaries.len(), fa.summaries.len());
            assert_eq!(
                serde_json::to_string(&rebuilt.window_calls).unwrap(),
                serde_json::to_string(&fa.window_calls).unwrap()
            );
            assert_eq!(rebuilt.functions.len(), fa.functions.len());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Corrupting one shard drops only its entries; sibling shards stay
    /// hydrated, and the engine's counters match what an undamaged cache
    /// would produce for the surviving entries.
    #[test]
    fn corrupt_shard_does_not_poison_siblings() {
        let dir = tempdir("shard-isolate");
        let config = AnalysisConfig::default();
        let files = demo_files();
        // The two demo paths must land in different shards for the test
        // to mean anything.
        assert_ne!(shard_of("m.c"), shard_of("plain.c"));

        let mut e = Engine::new(config.clone());
        e.analyze(&files);
        e.save_disk_cache(&dir).unwrap();

        std::fs::write(shard_path(&dir, "m.c"), "{ truncated").unwrap();
        let (map, outcome) = load(&dir, &config);
        assert_eq!(outcome, LoadOutcome::Loaded { entries: 1 });
        assert!(map.contains_key("plain.c"));
        assert!(!map.contains_key("m.c"));

        // A warm engine over the damaged cache: one hit, one re-analysis.
        let mut warm = Engine::new(config.clone());
        warm.load_disk_cache(&dir);
        let r = warm.analyze(&files);
        assert_eq!(r.obs.count_of("engine_cache_hits"), 1);
        assert_eq!(r.obs.count_of("engine_files_analyzed"), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Eviction and hit counters behave identically whether the cache
    /// came from a sharded disk load or was built in-process — sharding
    /// must be invisible to the engine's accounting.
    #[test]
    fn shard_load_matches_in_process_counters() {
        let dir = tempdir("shard-counters");
        let config = AnalysisConfig::default();
        let files = demo_files();

        // Baseline: warm run against the in-process cache.
        let mut live = Engine::new(config.clone());
        live.analyze(&files);
        let live_warm = live.analyze(&files);

        // Same corpus, warm run against a disk-hydrated cache.
        let mut writer = Engine::new(config.clone());
        writer.analyze(&files);
        writer.save_disk_cache(&dir).unwrap();
        let mut loaded = Engine::new(config.clone());
        loaded.load_disk_cache(&dir);
        let loaded_warm = loaded.analyze(&files);

        for counter in [
            "engine_cache_hits",
            "cache_evictions",
            "engine_files_analyzed",
        ] {
            assert_eq!(
                live_warm.obs.count_of(counter),
                loaded_warm.obs.count_of(counter),
                "{counter} diverged between in-process and sharded-load caches"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_cache_reported() {
        let dir = tempdir("missing");
        let (map, outcome) = load(&dir.join("nope"), &AnalysisConfig::default());
        assert!(map.is_empty());
        assert_eq!(outcome, LoadOutcome::Missing);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_discarded() {
        let dir = tempdir("corrupt");
        for i in 0..SHARD_COUNT {
            std::fs::write(dir.join(shard_file_name(i)), "{ not json").unwrap();
        }
        let (map, outcome) = load(&dir, &AnalysisConfig::default());
        assert!(map.is_empty());
        assert!(
            matches!(outcome, LoadOutcome::Discarded { .. }),
            "{outcome:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A pre-v3 monolithic `cache.json` is recognized and reported as
    /// discarded (stale format), not as a missing cache.
    #[test]
    fn legacy_monolithic_cache_discarded() {
        let dir = tempdir("legacy");
        std::fs::write(dir.join(CACHE_FILE_NAME), "{\"format_version\":2}").unwrap();
        let (map, outcome) = load(&dir, &AnalysisConfig::default());
        assert!(map.is_empty());
        match outcome {
            LoadOutcome::Discarded { reason } => assert!(reason.contains("monolithic")),
            other => panic!("{other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn format_version_mismatch_discarded() {
        let dir = tempdir("version");
        let config = AnalysisConfig::default();
        let mut e = Engine::new(config.clone());
        e.analyze(&demo_files());
        e.save_disk_cache(&dir).unwrap();
        for i in 0..SHARD_COUNT {
            let path = dir.join(shard_file_name(i));
            let text = std::fs::read_to_string(&path).unwrap().replacen(
                &format!("\"format_version\":{CACHE_FORMAT_VERSION}"),
                "\"format_version\":999",
                1,
            );
            std::fs::write(&path, text).unwrap();
        }
        let (map, outcome) = load(&dir, &config);
        assert!(map.is_empty());
        match outcome {
            LoadOutcome::Discarded { reason } => assert!(reason.contains("format version")),
            other => panic!("{other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_change_discards_cache() {
        let dir = tempdir("config");
        let mut e = Engine::new(AnalysisConfig::default());
        e.analyze(&demo_files());
        e.save_disk_cache(&dir).unwrap();
        let other = AnalysisConfig {
            write_window: 9,
            ..Default::default()
        };
        let (map, outcome) = load(&dir, &other);
        assert!(map.is_empty());
        match outcome {
            LoadOutcome::Discarded { reason } => assert!(reason.contains("configuration")),
            other => panic!("{other:?}"),
        }
        // The original config still loads.
        let (map, outcome) = load(&dir, &AnalysisConfig::default());
        assert_eq!(map.len(), 2);
        assert_eq!(outcome, LoadOutcome::Loaded { entries: 2 });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_depends_on_config() {
        let a = config_fingerprint(&AnalysisConfig::default());
        let b = config_fingerprint(&AnalysisConfig {
            read_window: 7,
            ..Default::default()
        });
        assert_ne!(a, b);
    }

    /// A warm cache written at one `--ipa-depth` must not be silently
    /// reused at another: summaries are depth-independent but the
    /// composed accesses derived from them are not, so the fingerprint
    /// has to cover the depth.
    #[test]
    fn ipa_depth_change_discards_cache() {
        let dir = tempdir("ipa-depth");
        let mut e = Engine::new(AnalysisConfig::default());
        e.analyze(&demo_files());
        e.save_disk_cache(&dir).unwrap();
        let deep = AnalysisConfig {
            ipa_depth: 2,
            ..Default::default()
        };
        assert_ne!(
            config_fingerprint(&AnalysisConfig::default()),
            config_fingerprint(&deep)
        );
        let (map, outcome) = load(&dir, &deep);
        assert!(map.is_empty());
        match outcome {
            LoadOutcome::Discarded { reason } => assert!(reason.contains("configuration")),
            other => panic!("{other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn site_free_files_are_slimmed() {
        let dir = tempdir("slim");
        let config = AnalysisConfig::default();
        let mut e = Engine::new(config.clone());
        e.analyze(&demo_files());
        e.save_disk_cache(&dir).unwrap();
        let text = std::fs::read_to_string(shard_path(&dir, "plain.c")).unwrap();
        // plain.c has no barriers: its helper is a stub, not a full AST.
        assert!(text.contains("Stub"), "expected slim entry");
        let (map, _) = load(&dir, &config);
        let (_, fa) = &map["plain.c"];
        assert_eq!(fa.functions.len(), 1);
        assert_eq!(fa.functions[0].name, "helper");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
