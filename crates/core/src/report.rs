//! Analysis statistics and reporting — the numbers §6 of the paper is
//! built from.

use crate::deviation::{Deviation, DeviationKind};
use crate::ir::*;
use crate::pairing::PairingResult;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Corpus-level statistics of one analysis run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Stats {
    pub files_total: usize,
    /// Files containing at least one barrier (the paper's "669 files that
    /// contain memory barriers" denominator).
    pub files_with_barriers: usize,
    pub functions_total: usize,
    /// Functions containing at least one barrier.
    pub functions_with_barriers: usize,
    pub parse_errors: usize,

    /// Barrier occurrences by primitive (Table 1 shape).
    pub barriers_by_kind: BTreeMap<String, usize>,
    pub barriers_total: usize,

    pub pairings: usize,
    pub multi_pairings: usize,
    pub paired_barriers: usize,
    pub unpaired_implicit_ipc: usize,
    pub unpaired_no_match: usize,
    /// Fraction of barriers in a pairing (the paper's ~50% coverage).
    pub coverage: f64,

    /// Deviations by class (Table 3 shape).
    pub deviations_by_kind: BTreeMap<String, usize>,
    pub deviations_total: usize,
    pub patches_generated: usize,

    /// Wall-clock analysis time in milliseconds (duration of the run's
    /// root `analyze` span).
    pub elapsed_ms: u64,
    /// Per-phase wall-clock breakdown in microseconds, summed over all
    /// spans of each phase (parse / cfg / extract / pair / check /
    /// missing / patch / annotate). Parallel phases can sum to more than
    /// `elapsed_ms`.
    pub phase_us: BTreeMap<String, u64>,
    /// Top-N slowest files by per-file analysis time (parse + cfg +
    /// extract spans), `(file, microseconds)` sorted descending. N is 5
    /// by default and `--slow-files N` from the CLI.
    pub slowest_files: Vec<(String, u64)>,

    /// Worker threads the parallel per-file phase ran with.
    pub workers: usize,
    /// Summed per-file work time across all workers, in microseconds.
    pub worker_busy_us: u64,
    /// Summed non-work time inside worker lifetimes (queue exhaustion
    /// tail, lock waits), in microseconds.
    pub worker_idle_us: u64,
    /// busy / (busy + idle); 0 when no per-file work ran.
    pub worker_utilization: f64,
}

/// Span names that make up the per-phase breakdown. The nested ckit
/// sub-spans (`lex`/`pp`/`parse-tokens`) and per-function `cfg-build`
/// spans are deliberately excluded — their time is already inside their
/// parents and would double-count.
pub const PHASES: [&str; 9] = [
    "parse", "cfg", "extract", "compose", "pair", "check", "missing", "patch", "annotate",
];

/// Span names carrying per-file attribution; their summed durations give
/// the per-file cost used for the "slowest files" ranking.
const PER_FILE_PHASES: [&str; 3] = ["parse", "cfg", "extract"];

/// Short human-readable class name for a deviation (used in rendered
/// reports and by `ofence watch` to key its deviation delta).
pub fn deviation_class(kind: &DeviationKind) -> &'static str {
    match kind {
        DeviationKind::Misplaced { .. } => "misplaced memory access",
        DeviationKind::WrongBarrierType { .. } => "wrong barrier type",
        DeviationKind::RepeatedRead { .. } => "racy variable re-read",
        DeviationKind::UnneededBarrier { .. } => "unneeded barrier",
        DeviationKind::MissingOnce { .. } => "missing READ_ONCE/WRITE_ONCE",
        DeviationKind::MissingBarrier { .. } => "missing memory barrier",
    }
}

impl Stats {
    pub(crate) fn compute(
        files: &[std::sync::Arc<crate::sites::FileAnalysis>],
        sites: &[BarrierSite],
        pairing: &PairingResult,
        deviations: &[Deviation],
        patches_generated: usize,
        obs: &obs::Snapshot,
        slow_files: usize,
    ) -> Stats {
        let elapsed_ms = obs
            .spans_named("analyze")
            .map(|sp| sp.dur_us)
            .max()
            .unwrap_or(0)
            / 1000;
        let mut s = Stats {
            files_total: files.len(),
            elapsed_ms,
            patches_generated,
            ..Default::default()
        };
        for phase in PHASES {
            let total = obs.total_us_of(phase);
            if total > 0 {
                s.phase_us.insert(phase.to_string(), total);
            }
        }
        let mut per_file: BTreeMap<String, u64> = BTreeMap::new();
        for sp in &obs.spans {
            if !PER_FILE_PHASES.contains(&sp.name.as_str()) {
                continue;
            }
            if let Some(file) = sp.attr("file") {
                *per_file.entry(file.to_string()).or_default() += sp.dur_us;
            }
        }
        let mut ranked: Vec<(String, u64)> = per_file.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        ranked.truncate(slow_files);
        s.slowest_files = ranked;
        s.workers = obs.count_of("workers") as usize;
        s.worker_busy_us = obs.count_of("worker_busy_us");
        s.worker_idle_us = obs.count_of("worker_idle_us");
        let worker_wall = s.worker_busy_us + s.worker_idle_us;
        s.worker_utilization = if worker_wall > 0 {
            s.worker_busy_us as f64 / worker_wall as f64
        } else {
            0.0
        };
        for fa in files {
            s.functions_total += fa.functions.len();
            s.parse_errors += fa.parse_error_count;
            if !fa.sites.is_empty() {
                s.files_with_barriers += 1;
            }
            let mut fns: Vec<&str> = fa
                .sites
                .iter()
                .map(|site| site.site.function.as_str())
                .collect();
            fns.sort_unstable();
            fns.dedup();
            s.functions_with_barriers += fns.len();
        }
        for site in sites {
            let key = if site.from_atomic.is_some() {
                "atomic-rmw (pair_with_atomics)".to_string()
            } else {
                site.kind.name().to_string()
            };
            *s.barriers_by_kind.entry(key).or_default() += 1;
            s.barriers_total += 1;
        }
        s.pairings = pairing.pairings.len();
        s.multi_pairings = pairing
            .pairings
            .iter()
            .filter(|p| p.shape == PairingShape::Multi)
            .count();
        s.paired_barriers = pairing.pairings.iter().map(|p| p.members.len()).sum();
        s.unpaired_implicit_ipc = pairing
            .unpaired
            .iter()
            .filter(|(_, r)| *r == UnpairedReason::ImplicitIpc)
            .count();
        s.unpaired_no_match = pairing
            .unpaired
            .iter()
            .filter(|(_, r)| *r == UnpairedReason::NoMatch)
            .count();
        s.coverage = if s.barriers_total > 0 {
            s.paired_barriers as f64 / s.barriers_total as f64
        } else {
            0.0
        };
        for d in deviations {
            *s.deviations_by_kind
                .entry(deviation_class(&d.kind).to_string())
                .or_default() += 1;
            s.deviations_total += 1;
        }
        s
    }

    /// Human-readable one-screen summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "files analyzed:        {} ({} with barriers)\n",
            self.files_total, self.files_with_barriers
        ));
        out.push_str(&format!(
            "functions:             {} ({} with barriers)\n",
            self.functions_total, self.functions_with_barriers
        ));
        out.push_str(&format!("barriers found:        {}\n", self.barriers_total));
        for (kind, count) in &self.barriers_by_kind {
            out.push_str(&format!("  {kind:<24} {count}\n"));
        }
        out.push_str(&format!(
            "pairings:              {} ({} multi-barrier)\n",
            self.pairings, self.multi_pairings
        ));
        out.push_str(&format!(
            "barrier coverage:      {:.1}% paired, {} implicit-IPC, {} unmatched\n",
            self.coverage * 100.0,
            self.unpaired_implicit_ipc,
            self.unpaired_no_match
        ));
        out.push_str(&format!(
            "deviations:            {} ({} patches)\n",
            self.deviations_total, self.patches_generated
        ));
        for (kind, count) in &self.deviations_by_kind {
            out.push_str(&format!("  {kind:<24} {count}\n"));
        }
        out.push_str(&format!("analysis time:         {} ms\n", self.elapsed_ms));
        if self.workers > 0 {
            out.push_str(&format!(
                "workers:               {} ({:.1}% busy, {:.1} ms busy / {:.1} ms idle)\n",
                self.workers,
                self.worker_utilization * 100.0,
                self.worker_busy_us as f64 / 1000.0,
                self.worker_idle_us as f64 / 1000.0
            ));
        }
        if !self.phase_us.is_empty() {
            // Fixed pipeline order, not BTreeMap (alphabetical) order.
            for phase in PHASES {
                if let Some(us) = self.phase_us.get(phase) {
                    out.push_str(&format!("  {phase:<24} {:.1} ms\n", *us as f64 / 1000.0));
                }
            }
        }
        if !self.slowest_files.is_empty() {
            let list = self
                .slowest_files
                .iter()
                .map(|(f, us)| format!("{f} ({:.1} ms)", *us as f64 / 1000.0))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "top {} slowest files:   {list}\n",
                self.slowest_files.len()
            ));
        }
        out
    }
}

/// Distance histogram data for Figures 6/7.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DistanceHistogram {
    /// `counts[d]` = number of accesses at distance `d` (index 0 unused).
    pub counts: Vec<usize>,
}

impl DistanceHistogram {
    pub fn record(&mut self, distance: u32) {
        let d = distance as usize;
        if self.counts.len() <= d {
            self.counts.resize(d + 1, 0);
        }
        self.counts[d] += 1;
    }

    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Cumulative fraction of accesses within `d` statements.
    pub fn cumulative_at(&self, d: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let within: usize = self.counts.iter().take(d + 1).sum();
        within as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_records_and_accumulates() {
        let mut h = DistanceHistogram::default();
        h.record(1);
        h.record(1);
        h.record(3);
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts[1], 2);
        assert!((h.cumulative_at(1) - 2.0 / 3.0).abs() < 1e-9);
        assert!((h.cumulative_at(3) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stats_render_is_complete() {
        let s = Stats {
            files_total: 3,
            barriers_total: 5,
            coverage: 0.5,
            ..Default::default()
        };
        let text = s.render();
        assert!(text.contains("files analyzed:        3"));
        assert!(text.contains("50.0% paired"));
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    #[test]
    fn stats_json_roundtrip() {
        let mut s = Stats {
            files_total: 10,
            barriers_total: 4,
            coverage: 0.5,
            ..Default::default()
        };
        s.barriers_by_kind.insert("smp_wmb".into(), 2);
        s.deviations_by_kind.insert("unneeded barrier".into(), 1);
        let json = serde_json::to_string(&s).unwrap();
        let back: Stats = serde_json::from_str(&json).unwrap();
        assert_eq!(back.files_total, 10);
        assert_eq!(back.barriers_by_kind["smp_wmb"], 2);
        assert!((back.coverage - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_json_roundtrip() {
        let mut h = DistanceHistogram::default();
        h.record(3);
        h.record(7);
        let json = serde_json::to_string(&h).unwrap();
        let back: DistanceHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back.total(), 2);
        assert_eq!(back.counts[7], 1);
    }
}
