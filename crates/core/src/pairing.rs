//! The barrier pairing algorithm — paper §4.2, Algorithm 1.
//!
//! Pairing is performed from the point of view of write barriers: a write
//! barrier pairs with the barrier that shares at least two shared objects
//! with it, where at least one of the two barriers *orders* the object
//! pair (one object before it, the other after). Among multiple
//! candidates, the one whose shared objects sit closest to both barriers
//! (lowest product of distances) wins. Pairings are then extended with
//! other barriers that cover the same object set (the seqcount "double
//! pairing" of §5.3), and write barriers followed immediately by a
//! wake-up/IPC call are deliberately left unpaired (§4.2).

use crate::config::AnalysisConfig;
use crate::ir::*;
use std::collections::{HashMap, HashSet};

/// Outcome of the global pairing pass.
#[derive(Clone, Debug, Default)]
pub struct PairingResult {
    pub pairings: Vec<Pairing>,
    /// Barriers not in any pairing, with the reason.
    pub unpaired: Vec<(BarrierId, UnpairedReason)>,
}

impl PairingResult {
    /// The pairing containing a given barrier, if any.
    pub fn pairing_of(&self, id: BarrierId) -> Option<&Pairing> {
        self.pairings.iter().find(|p| p.members.contains(&id))
    }
}

/// Candidate pairing of one write barrier.
struct Candidate {
    partner: usize,
    weight: u64,
    objects: [SharedObject; 2],
}

/// Pairing counters, accumulated locally and flushed once per run so the
/// candidate loops stay lock-free.
#[derive(Default)]
pub(crate) struct PairCounters {
    pub object_pairs_scanned: u64,
    pub candidates_considered: u64,
    pub rejected_same_function: u64,
    pub rejected_missing_object: u64,
    pub rejected_worse_weight: u64,
    pub rejected_unordered: u64,
    pub arbitration_losers: u64,
    pub dropped_min_objects: u64,
    pub extended_members: u64,
}

/// Run Algorithm 1 over all barrier sites of the corpus.
pub fn pair_barriers(sites: &[BarrierSite], config: &AnalysisConfig) -> PairingResult {
    let rec = obs::Recorder::new();
    pair_barriers_traced(sites, config, &rec)
}

/// Run Algorithm 1, recording a `pair` span and the candidate-decision
/// counters (pairs considered, rejection reasons, pairings formed) into
/// the given recorder.
pub fn pair_barriers_traced(
    sites: &[BarrierSite],
    config: &AnalysisConfig,
    rec: &obs::Recorder,
) -> PairingResult {
    let _span = rec.span("pair");
    let mut ctr = PairCounters::default();
    let result = pair_barriers_counted(sites, config, &mut ctr);
    rec.count("pair_object_pairs_scanned", ctr.object_pairs_scanned);
    rec.count("pair_candidates_considered", ctr.candidates_considered);
    rec.count("pair_rejected_same_function", ctr.rejected_same_function);
    rec.count("pair_rejected_missing_object", ctr.rejected_missing_object);
    rec.count("pair_rejected_worse_weight", ctr.rejected_worse_weight);
    rec.count("pair_rejected_unordered", ctr.rejected_unordered);
    rec.count("pair_arbitration_losers", ctr.arbitration_losers);
    rec.count("pair_dropped_min_objects", ctr.dropped_min_objects);
    rec.count("pair_extended_members", ctr.extended_members);
    rec.count("pairings_formed", result.pairings.len() as u64);
    // Pairings that only exist because the summary pass spliced a callee
    // access into a member's window (the object is summary-only there):
    // the paper's ±1 view could not have formed them.
    rec.count(
        "pair_ipa_assisted",
        result
            .pairings
            .iter()
            .filter(|p| {
                p.objects.iter().any(|o| {
                    p.members
                        .iter()
                        .any(|&m| sites.get(m.0 as usize).and_then(|s| s.via_of(o)).is_some())
                })
            })
            .count() as u64,
    );
    rec.count(
        "barriers_implicit_ipc",
        result
            .unpaired
            .iter()
            .filter(|(_, r)| *r == UnpairedReason::ImplicitIpc)
            .count() as u64,
    );
    result
}

fn pair_barriers_counted(
    sites: &[BarrierSite],
    config: &AnalysisConfig,
    ctr: &mut PairCounters,
) -> PairingResult {
    // Line 2-8: shared object -> barriers that access it.
    let mut obj_to_barriers: HashMap<&SharedObject, Vec<usize>> = HashMap::new();
    let objects: Vec<Vec<(SharedObject, u32)>> = sites.iter().map(|s| s.objects()).collect();
    // O(1) distance lookup per (site, object) for the hot pairing loop.
    let object_maps: Vec<HashMap<&SharedObject, u32>> = objects
        .iter()
        .map(|objs| objs.iter().map(|(o, d)| (o, *d)).collect())
        .collect();
    for (i, objs) in objects.iter().enumerate() {
        for (o, _) in objs {
            obj_to_barriers.entry(o).or_default().push(i);
        }
    }

    // Line 10-27: per write barrier, find the lowest-weight candidate.
    // `proposals[i]` collects (partner, weight) edges touching barrier i.
    let mut proposals: Vec<Vec<(usize, u64, [SharedObject; 2])>> = vec![Vec::new(); sites.len()];
    let mut implicit_ipc: HashSet<usize> = HashSet::new();

    for (bi, b) in sites.iter().enumerate() {
        // Anchor on write barriers — plus the salvage case: a read barrier
        // whose window contains only writes is a *miswritten* write
        // barrier (deviation #2) and must still pair to be detected.
        let all_writes =
            !b.accesses.is_empty() && b.accesses.iter().all(|a| a.kind == AccessKind::Write);
        if !b.is_write_barrier() && !all_writes {
            continue;
        }
        let mut best: Option<Candidate> = None;
        for (i1, (o1, d1)) in objects[bi].iter().enumerate() {
            for (o2, d2) in objects[bi].iter().skip(i1 + 1) {
                if o1 == o2 {
                    continue;
                }
                ctr.object_pairs_scanned += 1;
                let my_weight = u64::from(*d1) * u64::from(*d2);
                let Some((pi, pair_weight)) =
                    get_pair(bi, o1, o2, sites, &object_maps, &obj_to_barriers, ctr)
                else {
                    continue;
                };
                let weight = if config.distance_weighting {
                    my_weight.saturating_mul(pair_weight)
                } else {
                    1
                };
                // Line 19-20: the object pair must be ordered by b or by
                // the candidate.
                if !(b.orders(o1, o2) || sites[pi].orders(o1, o2)) {
                    ctr.rejected_unordered += 1;
                    continue;
                }
                let better = match &best {
                    None => true,
                    Some(c) => weight < c.weight,
                };
                if better {
                    best = Some(Candidate {
                        partner: pi,
                        weight,
                        objects: [o1.clone(), o2.clone()],
                    });
                }
            }
        }
        let Some(c) = best else {
            // No candidate at all: if a wake-up follows, the barrier
            // orders the wake-up — an intentionally unpaired writer.
            if config.implicit_ipc && b.wakeup_after.is_some() {
                implicit_ipc.insert(bi);
            }
            continue;
        };
        // §4.2 implicit barriers: a wake-up call closer than the pairing
        // objects means the barrier orders the wake-up, not a reader.
        if config.implicit_ipc {
            if let Some(wd) = b.wakeup_after {
                let min_obj_dist = c
                    .objects
                    .iter()
                    .filter_map(|o| b.distance_of(o))
                    .min()
                    .unwrap_or(u32::MAX);
                if wd <= min_obj_dist {
                    implicit_ipc.insert(bi);
                    continue;
                }
            }
        }
        proposals[bi].push((c.partner, c.weight, c.objects.clone()));
        proposals[c.partner].push((bi, c.weight, c.objects));
    }

    // Line 29-37: if a barrier is in multiple pairings, keep the lowest
    // weight; remove it from the losers' lists.
    for bi in 0..sites.len() {
        if proposals[bi].len() <= 1 {
            continue;
        }
        proposals[bi].sort_by_key(|&(_, w, _)| w);
        let losers: Vec<(usize, u64, [SharedObject; 2])> = proposals[bi].split_off(1);
        ctr.arbitration_losers += losers.len() as u64;
        for (other, _, _) in losers {
            proposals[other].retain(|&(p, _, _)| p != bi);
        }
    }

    // Line 39-44: build the pairings array.
    let mut paired: vec::BitVec = vec::BitVec::new(sites.len());
    let mut pairings: Vec<(usize, usize, u64, [SharedObject; 2])> = Vec::new();
    for (bi, props) in proposals.iter().enumerate() {
        if paired.get(bi) {
            continue;
        }
        if let Some(&(partner, weight, ref objs)) = props.first() {
            if paired.get(partner) {
                continue;
            }
            paired.set(bi);
            paired.set(partner);
            pairings.push((bi, partner, weight, objs.clone()));
        }
    }

    // Line 46-54: extend pairings with unpaired barriers that cover the
    // common object set.
    let mut result = Vec::new();
    for (b1, b2, weight, seed) in pairings {
        let set1: HashSet<&SharedObject> = objects[b1].iter().map(|(o, _)| o).collect();
        let common: Vec<SharedObject> = objects[b2]
            .iter()
            .map(|(o, _)| o.clone())
            .filter(|o| set1.contains(o))
            .collect();
        let mut members = vec![b1, b2];
        for (bi, objs) in objects.iter().enumerate() {
            if paired.get(bi) || implicit_ipc.contains(&bi) {
                continue;
            }
            let objset: HashSet<&SharedObject> = objs.iter().map(|(o, _)| o).collect();
            let covers = common.iter().all(|o| objset.contains(o)) && !common.is_empty();
            if covers {
                members.push(bi);
                paired.set(bi);
                ctr.extended_members += 1;
            }
        }
        // Enforce the minimum common-object requirement.
        let mut objects_for_pairing = common;
        for o in seed {
            if !objects_for_pairing.contains(&o) {
                objects_for_pairing.push(o);
            }
        }
        if objects_for_pairing.len() < config.min_shared_objects {
            // Un-pair: too few shared objects.
            ctr.dropped_min_objects += 1;
            for &m in &members {
                paired.unset(m);
            }
            continue;
        }
        let writer = if sites[b1].is_write_barrier() { b1 } else { b2 };
        let shape = if members.len() > 2 {
            PairingShape::Multi
        } else {
            PairingShape::Single
        };
        result.push(Pairing {
            writer: sites[writer].id,
            members: members.iter().map(|&m| sites[m].id).collect(),
            objects: objects_for_pairing,
            weight,
            shape,
        });
    }

    // Merge pairings over the same object set: four seqcount barriers form
    // two base pairs (begin/retry, end/begin) on identical objects — they
    // are one concurrency group (§5.3, Figure 5).
    let result = merge_equal_object_sets(result);

    let unpaired = sites
        .iter()
        .enumerate()
        .filter(|(i, _)| !paired.get(*i))
        .map(|(i, s)| {
            let reason = if implicit_ipc.contains(&i) {
                UnpairedReason::ImplicitIpc
            } else {
                UnpairedReason::NoMatch
            };
            (s.id, reason)
        })
        .collect();

    PairingResult {
        pairings: result,
        unpaired,
    }
}

/// Merge pairings whose shared-object sets are equal (as sets).
fn merge_equal_object_sets(pairings: Vec<Pairing>) -> Vec<Pairing> {
    let mut out: Vec<Pairing> = Vec::new();
    for p in pairings {
        let pset: HashSet<&SharedObject> = p.objects.iter().collect();
        if let Some(existing) = out.iter_mut().find(|e| {
            e.objects.len() == p.objects.len() && e.objects.iter().all(|o| pset.contains(o))
        }) {
            for m in p.members {
                if !existing.members.contains(&m) {
                    existing.members.push(m);
                }
            }
            existing.weight = existing.weight.min(p.weight);
            existing.shape = if existing.members.len() > 2 {
                PairingShape::Multi
            } else {
                PairingShape::Single
            };
        } else {
            out.push(p);
        }
    }
    out
}

/// Paper Algorithm 1, `get_pair`: the best other barrier that accesses
/// both `o1` and `o2`, weighted by its distances to them.
#[allow(clippy::too_many_arguments)]
fn get_pair(
    bi: usize,
    o1: &SharedObject,
    o2: &SharedObject,
    sites: &[BarrierSite],
    object_maps: &[HashMap<&SharedObject, u32>],
    obj_to_barriers: &HashMap<&SharedObject, Vec<usize>>,
    ctr: &mut PairCounters,
) -> Option<(usize, u64)> {
    let l1 = obj_to_barriers.get(o1)?;
    let l2 = obj_to_barriers.get(o2)?;
    // Iterate the shorter list; membership of the other object is an O(1)
    // lookup in the candidate's own object map.
    let shorter = if l1.len() <= l2.len() { l1 } else { l2 };
    let mut best: Option<(usize, u64)> = None;
    for &cand in shorter {
        if cand == bi {
            continue;
        }
        ctr.candidates_considered += 1;
        // Pairing infers concurrency between functions: a barrier does not
        // pair with another barrier of the same function (those are added
        // later by the multi-pairing extension).
        if sites[cand].site.function == sites[bi].site.function
            && sites[cand].site.file == sites[bi].site.file
        {
            ctr.rejected_same_function += 1;
            continue;
        }
        let (Some(&d1), Some(&d2)) = (object_maps[cand].get(o1), object_maps[cand].get(o2)) else {
            ctr.rejected_missing_object += 1;
            continue;
        };
        let w = u64::from(d1) * u64::from(d2);
        if best.is_none_or(|(_, bw)| w < bw) {
            best = Some((cand, w));
        } else {
            ctr.rejected_worse_weight += 1;
        }
    }
    best
}

/// Tiny growable bit set (keeps the hot loop allocation-free).
mod vec {
    pub struct BitVec(Vec<bool>);

    impl BitVec {
        pub fn new(n: usize) -> Self {
            BitVec(vec![false; n])
        }
        pub fn get(&self, i: usize) -> bool {
            self.0[i]
        }
        pub fn set(&mut self, i: usize) {
            self.0[i] = true;
        }
        pub fn unset(&mut self, i: usize) {
            self.0[i] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sites::analyze_file;

    fn pair_src(src: &str) -> (Vec<BarrierSite>, PairingResult) {
        pair_src_with(src, &AnalysisConfig::default())
    }

    fn pair_src_with(src: &str, config: &AnalysisConfig) -> (Vec<BarrierSite>, PairingResult) {
        let parsed = ckit::parse_string("t.c", src).unwrap();
        assert!(parsed.errors.is_empty(), "{:?}", parsed.errors);
        let mut fa = analyze_file(0, &parsed, config);
        for (i, s) in fa.sites.iter_mut().enumerate() {
            s.id = BarrierId(i as u32);
        }
        let result = pair_barriers(&fa.sites, config);
        (fa.sites, result)
    }

    const LISTING1: &str = r#"
struct my_struct { int init; int y; };
void reader(struct my_struct *a) {
    if (!a->init)
        return;
    smp_rmb();
    f(a->y);
}
void writer(struct my_struct *b) {
    b->y = 1;
    smp_wmb();
    b->init = 1;
}
"#;

    #[test]
    fn listing1_pairs() {
        let (sites, result) = pair_src(LISTING1);
        assert_eq!(result.pairings.len(), 1, "{result:?}");
        let p = &result.pairings[0];
        assert_eq!(p.members.len(), 2);
        assert_eq!(p.shape, PairingShape::Single);
        // Writer anchor is the wmb.
        let writer_site = sites.iter().find(|s| s.id == p.writer).unwrap();
        assert_eq!(writer_site.site.function, "writer");
        // Matched on both objects.
        assert!(p.objects.contains(&SharedObject::new("my_struct", "init")));
        assert!(p.objects.contains(&SharedObject::new("my_struct", "y")));
    }

    #[test]
    fn single_common_object_does_not_pair() {
        let src = r#"
struct a { int x; int y; };
struct b { int u; int v; };
void reader(struct a *p, struct b *q) {
    if (!p->x)
        return;
    smp_rmb();
    f(q->u);
}
void writer(struct a *p, struct b *q) {
    p->x = 1;
    smp_wmb();
    q->v = 2;
}
"#;
        let (_, result) = pair_src(src);
        assert!(result.pairings.is_empty(), "{result:?}");
        assert_eq!(result.unpaired.len(), 2);
    }

    #[test]
    fn unordered_objects_do_not_pair() {
        // Both objects on the same side of both barriers: no ordering.
        let src = r#"
struct s { int a; int b; int c; int d; };
void f1(struct s *p) {
    p->a = 1;
    p->b = 2;
    smp_wmb();
    p->c = 3;
}
void f2(struct s *p) {
    g(p->a + p->b);
    smp_rmb();
    g(p->d);
}
"#;
        let (_, result) = pair_src(src);
        // (a, b) are before both barriers — provides no ordering. The only
        // ordered pairs involve c (f1) or d (f2), which the other side
        // doesn't access. But wait: (a, c) is ordered by f1 and f2 doesn't
        // access c; (a, d): f1 doesn't order it, f2 orders it but f1
        // doesn't access d. So no pairing.
        assert!(result.pairings.is_empty(), "{result:?}");
    }

    #[test]
    fn closest_candidate_wins() {
        // Two readers; the one whose accesses hug the barrier should win.
        let src = r#"
struct s { int flag; int data; };
void reader_far(struct s *p) {
    if (!p->flag)
        return;
    smp_rmb();
    g(1);
    g(2);
    g(3);
    g(p->data);
}
void reader_near(struct s *p) {
    if (!p->flag)
        return;
    smp_rmb();
    g(p->data);
}
void writer(struct s *p) {
    p->data = 1;
    smp_wmb();
    p->flag = 1;
}
"#;
        let (sites, result) = pair_src(src);
        let p = result
            .pairings
            .iter()
            .find(|p| {
                sites
                    .iter()
                    .any(|s| s.id == p.writer && s.site.function == "writer")
            })
            .expect("writer paired");
        let partner_fns: Vec<_> = p
            .members
            .iter()
            .map(|&m| {
                sites
                    .iter()
                    .find(|s| s.id == m)
                    .unwrap()
                    .site
                    .function
                    .clone()
            })
            .collect();
        assert!(
            partner_fns.contains(&"reader_near".to_string()),
            "{partner_fns:?}"
        );
    }

    #[test]
    fn wakeup_leaves_writer_unpaired() {
        let src = r#"
struct d { int token; int extra; struct task *t; };
void waker(struct d *p) {
    p->token = 1;
    p->extra = 2;
    smp_wmb();
    wake_up_process(p->t);
}
void reader(struct d *p) {
    if (!p->token)
        return;
    smp_rmb();
    g(p->extra);
}
"#;
        let (sites, result) = pair_src(src);
        let waker_site = sites.iter().find(|s| s.site.function == "waker").unwrap();
        assert!(
            result
                .unpaired
                .iter()
                .any(|(id, r)| *id == waker_site.id && *r == UnpairedReason::ImplicitIpc),
            "{result:?}"
        );
    }

    #[test]
    fn wakeup_detection_disabled_by_config() {
        let src = r#"
struct d { int token; int extra; struct task *t; };
void waker(struct d *p) {
    p->token = 1;
    p->extra = 2;
    smp_wmb();
    wake_up_process(p->t);
}
void reader(struct d *p) {
    if (!p->token)
        return;
    smp_rmb();
    g(p->extra);
}
"#;
        let config = AnalysisConfig {
            implicit_ipc: false,
            ..Default::default()
        };
        let (_, result) = pair_src_with(src, &config);
        assert_eq!(result.pairings.len(), 1);
    }

    #[test]
    fn seqcount_forms_multi_pairing() {
        let src = r#"
static seqcount_t rs;
struct counters { long bcnt; long pcnt; };
void get_counters(struct counters *c, struct counters *tmp) {
    unsigned int v;
    do {
        v = read_seqcount_begin(&rs);
        c->bcnt = tmp->bcnt;
        c->pcnt = tmp->pcnt;
    } while (read_seqcount_retry(&rs, v));
}
void add_counters(struct counters *t, struct counters *paddc) {
    write_seqcount_begin(&rs);
    t->bcnt += paddc->bcnt;
    t->pcnt += paddc->pcnt;
    write_seqcount_end(&rs);
}
"#;
        let (sites, result) = pair_src(src);
        assert_eq!(sites.len(), 4);
        assert_eq!(result.pairings.len(), 1, "{result:?}");
        let p = &result.pairings[0];
        assert_eq!(p.members.len(), 4, "{p:?}");
        assert_eq!(p.shape, PairingShape::Multi);
    }

    #[test]
    fn one_writer_multiple_readers() {
        let src = r#"
struct s { int flag; int data; };
void reader1(struct s *p) {
    if (!p->flag) return;
    smp_rmb();
    g(p->data);
}
void reader2(struct s *p) {
    if (!p->flag) return;
    smp_rmb();
    h(p->data);
}
void writer(struct s *p) {
    p->data = 1;
    smp_wmb();
    p->flag = 1;
}
"#;
        let (sites, result) = pair_src(src);
        assert_eq!(result.pairings.len(), 1, "{result:?}");
        let p = &result.pairings[0];
        assert_eq!(p.members.len(), 3, "both readers join the pairing");
        assert_eq!(p.shape, PairingShape::Multi);
        let _ = sites;
    }

    #[test]
    fn min_shared_objects_config() {
        let config = AnalysisConfig {
            min_shared_objects: 3,
            ..Default::default()
        };
        let (_, result) = pair_src_with(LISTING1, &config);
        // Listing 1 has only 2 common objects.
        assert!(result.pairings.is_empty());
    }

    #[test]
    fn same_function_barriers_do_not_base_pair() {
        let src = r#"
struct s { int a; int b; };
void f(struct s *p) {
    p->a = 1;
    smp_wmb();
    p->b = 2;
    smp_wmb();
    p->a = 3;
}
"#;
        let (_, result) = pair_src(src);
        assert!(result.pairings.is_empty(), "{result:?}");
        assert_eq!(result.unpaired.len(), 2);
    }

    #[test]
    fn pair_with_atomics_extension() {
        // §6.4: "The pairing heuristic of OFence could be extended to pair
        // barriers with atomic operations." A writer publishing under a
        // wmb whose reader synchronizes through atomic_dec_and_test only
        // pairs when the extension is on.
        let src = r#"
struct obj { int data; atomic_t refs; };
void producer(struct obj *p, int v) {
    p->data = v;
    smp_wmb();
    atomic_inc(&p->refs);
}
void consumer(struct obj *p) {
    if (atomic_dec_and_test(&p->refs))
        release(p->data);
}
"#;
        let (_, off) = pair_src(src);
        assert!(off.pairings.is_empty(), "extension off: {off:?}");

        let config = AnalysisConfig {
            pair_with_atomics: true,
            ..Default::default()
        };
        let (sites, on) = pair_src_with(src, &config);
        assert_eq!(on.pairings.len(), 1, "extension on: {on:?}");
        let p = &on.pairings[0];
        let fns: Vec<_> = p
            .members
            .iter()
            .map(|&m| {
                sites
                    .iter()
                    .find(|s| s.id == m)
                    .unwrap()
                    .site
                    .function
                    .clone()
            })
            .collect();
        assert!(fns.contains(&"producer".to_string()), "{fns:?}");
        assert!(fns.contains(&"consumer".to_string()), "{fns:?}");
        // The promoted site is marked as such.
        let atomic_site = sites
            .iter()
            .find(|s| s.from_atomic.is_some())
            .expect("promoted atomic site");
        assert_eq!(
            atomic_site.from_atomic.as_deref(),
            Some("atomic_dec_and_test")
        );
    }

    #[test]
    fn pairing_is_deterministic() {
        let (_, r1) = pair_src(LISTING1);
        let (_, r2) = pair_src(LISTING1);
        assert_eq!(format!("{r1:?}"), format!("{r2:?}"));
    }
}
